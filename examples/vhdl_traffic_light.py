#!/usr/bin/env python
"""Compile and simulate real VHDL source: a traffic-light controller.

Demonstrates the frontend pipeline the paper built for C (here:
Python): VHDL text -> lexer -> parser -> elaboration into a flattened
LP graph -> simulation.  The interpreted process state is plain data,
so the same design also runs under Time Warp on the parallel machine.

Run:  python examples/vhdl_traffic_light.py
"""

from repro.vhdl import simulate, simulate_parallel, vector_to_str
from repro.vhdl.frontend import elaborate

SOURCE = """
entity traffic is
  port (clk   : in  std_logic;
        rst   : in  std_logic;
        lights : out std_logic_vector(2 downto 0));  -- R, Y, G
end traffic;

architecture fsm of traffic is
  signal state : std_logic_vector(1 downto 0) := "00";
begin
  step : process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        state <= "00";
      else
        case state is
          when "00"   => state <= "01";  -- red    -> red+yellow
          when "01"   => state <= "10";  -- r+y    -> green
          when "10"   => state <= "11";  -- green  -> yellow
          when others => state <= "00";  -- yellow -> red
        end case;
      end if;
    end if;
  end process;

  decode : process(state)
  begin
    case state is
      when "00"   => lights <= "100";
      when "01"   => lights <= "110";
      when "10"   => lights <= "001";
      when others => lights <= "010";
    end case;
  end process;
end fsm;

entity tb is end tb;

architecture sim of tb is
  component traffic
    port (clk : in std_logic; rst : in std_logic;
          lights : out std_logic_vector(2 downto 0));
  end component;
  signal clk, rst : std_logic := '0';
  signal lights : std_logic_vector(2 downto 0);
begin
  dut : traffic port map (clk => clk, rst => rst, lights => lights);

  clocking : process
  begin
    for i in 1 to 10 loop
      clk <= '0'; wait for 10 ns;
      clk <= '1'; wait for 10 ns;
    end loop;
    wait;
  end process;

  reset : process
  begin
    rst <= '1';
    wait for 25 ns;
    rst <= '0';
    wait;
  end process;
end sim;
"""

NAMES = {"100": "RED", "110": "RED+YELLOW", "001": "GREEN",
         "010": "YELLOW"}


def main() -> None:
    design = elaborate(SOURCE, top="tb")
    print(f"elaborated {design.lp_count} LPs "
          f"({len(design.signals)} signals, "
          f"{len(design.processes)} processes)")

    result = simulate(design)
    print("\nlight sequence:")
    for time, value in result.trace("lights"):
        pattern = vector_to_str(value)
        print(f"  t={time.pt / 1e6:6.0f} ns  {pattern}  "
              f"{NAMES.get(pattern, '?')}")

    # The same compiled design runs under the mixed parallel protocol;
    # the elaborator tagged the clocked process conservative and the
    # decoder optimistic (the paper's heuristic).
    parallel = simulate_parallel(elaborate(SOURCE, top="tb"),
                                 processors=3, protocol="mixed")
    assert parallel.traces == result.traces
    print(f"\nparallel (mixed, 3 processors) matches: "
          f"makespan {parallel.parallel_time:.1f} units, "
          f"{parallel.stats.summary()}")


if __name__ == "__main__":
    main()
