#!/usr/bin/env python
"""Generate VHDL, compile it, simulate in parallel, export waveforms.

The full automatic-translation round trip the paper's conclusion calls
for: emit the FSM-ring benchmark as VHDL text (a ``for ... generate``
over LFSR cells), compile it with the frontend, simulate it on the
modelled multiprocessor under the dynamic protocol, check it against
the pure-Python reference machine, and write a VCD file any waveform
viewer can open.

Run:  python examples/generate_ring_waves.py
"""

from repro.analysis.vcd import write_vcd
from repro.circuits import build_fsm_from_vhdl, fsm_vhdl
from repro.circuits.fsm import reference_taps
from repro.vhdl import simulate, simulate_parallel

CELLS, CYCLES = 8, 16


def main() -> None:
    source = fsm_vhdl(CELLS, CYCLES)
    print(f"generated {len(source.splitlines())} lines of VHDL "
          f"({CELLS} cells via for...generate)")

    design = build_fsm_from_vhdl(CELLS, CYCLES)
    print(f"elaborated into {design.lp_count} LPs")

    reference = simulate(design)
    got = [1 if b.to_bool() else 0 for b in reference.finals["taps"]]
    expected = reference_taps(CELLS, CYCLES)
    assert got == expected, (got, expected)
    print(f"sequential run matches the reference machine: {got}")

    parallel = simulate_parallel(build_fsm_from_vhdl(CELLS, CYCLES),
                                 processors=4, protocol="dynamic")
    assert parallel.traces == reference.traces
    print(f"dynamic protocol on 4 processors matches "
          f"(makespan {parallel.parallel_time:.1f} units, "
          f"{parallel.stats.rollbacks} rollbacks, "
          f"{parallel.stats.mode_switches} mode switches)")

    write_vcd(reference, "fsm_ring.vcd")
    print("waveforms written to fsm_ring.vcd "
          "(open with any VCD viewer)")


if __name__ == "__main__":
    main()
