#!/usr/bin/env python
"""Quickstart: build a small VHDL design and simulate it four ways.

Builds a clocked 4-bit counter with the programmatic kernel API, runs
it on the sequential reference engine, then on the modelled parallel
machine under the optimistic, conservative and dynamic protocols, and
shows that every engine commits exactly the same waveforms — the
correctness property the whole paper rests on.

Run:  python examples/quickstart.py
"""

from repro.core import NS
from repro.vhdl import (ClockedBody, Design, SL_0, simulate,
                        simulate_parallel, sl)


def build_counter(bits: int = 4, cycles: int = 12) -> Design:
    """A free-running clocked counter, one LP per signal/process."""
    design = Design("quickstart_counter")
    clk = design.signal("clk", SL_0)
    q = [design.signal(f"q[{i}]", SL_0, traced=True) for i in range(bits)]
    design.clock("clkgen", clk, period_fs=10 * NS, cycles=cycles)
    q_ids = [w.lp_id for w in q]

    def count(state, inputs, api):
        state["n"] = (state["n"] + 1) % (1 << bits)
        return {q_ids[b]: sl((state["n"] >> b) & 1) for b in range(bits)}

    design.process("counter",
                   ClockedBody(clock=clk, inputs=[], outputs=q, fn=count,
                               initial_state={"n": 0}))
    return design


def value_of(result, bits: int = 4) -> int:
    return sum((1 if result.finals[f"q[{b}]"].to_bool() else 0) << b
               for b in range(bits))


def main() -> None:
    print("== sequential reference ==")
    reference = simulate(build_counter())
    print(f"  events committed : {reference.stats.events_committed}")
    print(f"  final count      : {value_of(reference)}")
    print(f"  q[0] waveform    : {reference.waveform_chars('q[0]')}")

    for protocol in ("optimistic", "conservative", "dynamic"):
        result = simulate_parallel(build_counter(), processors=4,
                                   protocol=protocol)
        match = result.traces == reference.traces
        print(f"== parallel, {protocol} on 4 processors ==")
        print(f"  identical waveforms : {match}")
        print(f"  modelled makespan   : {result.parallel_time:.1f} units")
        print(f"  {result.stats.summary()}")
        assert match, "protocols must agree with the reference!"

    print("\nAll engines committed identical results.")


if __name__ == "__main__":
    main()
