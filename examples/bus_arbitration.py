#!/usr/bin/env python
"""Multi-driver resolved signals: a shared bus with tri-state drivers.

Exercises the part of the VHDL semantics that motivates mapping signals
to their own LPs (paper Sec. 3.1): a resolved signal with several
sources, where the signal LP holds one driver per source and applies
the IEEE 1164 resolution function after *all* simultaneous transactions
— the Driving-value / Effective-value phase split of the distributed
VHDL cycle.

Three masters share a bus through 'Z'-driving tri-states; a simple
round-robin grant decides who drives.  Bus conflicts (two drivers at
once) resolve to 'X' — which the example also demonstrates.

Run:  python examples/bus_arbitration.py
"""

from repro.core import NS
from repro.vhdl import Design, SL_Z, Wait, simulate, sl


def main() -> None:
    design = Design("shared_bus")
    bus = design.signal("bus", SL_Z, traced=True)

    def master(index, schedule):
        """Drive `value` during [start, stop), 'Z' otherwise."""
        def gen(api):
            now = 0
            for start, stop, value in schedule:
                if start > now:
                    yield Wait(for_fs=start - now)
                    now = start
                api.assign(bus.lp_id, sl(value))
                yield Wait(for_fs=stop - now)
                now = stop
                api.assign(bus.lp_id, SL_Z)
        return gen

    # Masters take turns; masters 1 and 2 collide during 60-70 ns.
    design.stimulus("m0", master(0, [(10 * NS, 30 * NS, "1")]),
                    drives=[bus])
    design.stimulus("m1", master(1, [(40 * NS, 70 * NS, "0")]),
                    drives=[bus])
    design.stimulus("m2", master(2, [(60 * NS, 80 * NS, "1")]),
                    drives=[bus])

    result = simulate(design)
    print("bus waveform (time ns, value):")
    for time, value in result.trace("bus"):
        note = ""
        if value.char == "X":
            note = "   <-- drive conflict resolved to 'X'"
        if value.char == "Z":
            note = "   (released: bus floats)"
        print(f"  {time.pt / 1e6:6.0f}  '{value.char}'{note}")

    values = [v.char for _t, v in result.trace("bus")]
    assert "X" in values, "the 60-70 ns collision must surface as 'X'"
    print("\nthe signal LP resolved", len(design["bus"].drivers),
          "drivers per the IEEE 1164 resolution table.")


if __name__ == "__main__":
    main()
