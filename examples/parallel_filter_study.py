#!/usr/bin/env python
"""A small parallel-simulation study on the gate-level IIR filter.

Reproduces, at reduced scale, what the paper's evaluation does: sweep
processor counts and synchronization protocols over the Gray–Markel
lattice filter, print the speedup table, and look inside the protocol
statistics (rollbacks, deadlock recoveries, mode switches) to see *why*
each configuration behaves as it does.

Run:  python examples/parallel_filter_study.py
"""

from repro.analysis import (ascii_chart, measure_speedups, speedup_table,
                            sequential_baseline)
from repro.circuits import build_iir

SAMPLES = (32, 0, 0, 12, 0, 0, 0, 0)
SECTIONS, WIDTH = 1, 6
PROCESSORS = [1, 2, 4, 8]
PROTOCOLS = ["optimistic", "conservative", "mixed", "dynamic"]


def build():
    return build_iir(sections=SECTIONS, width=WIDTH,
                     coefficients=(5,), samples=SAMPLES,
                     extra_cycles=2).design


def main() -> None:
    circuit = build_iir(sections=SECTIONS, width=WIDTH,
                        coefficients=(5,), samples=(1,), extra_cycles=0)
    print(f"gate-level lattice IIR: {circuit.lp_count} LPs "
          f"({SECTIONS} section(s), {WIDTH}-bit datapath)")
    baseline = sequential_baseline(build)
    print(f"sequential baseline: {baseline:.0f} modelled units\n")

    curves = measure_speedups(build, PROTOCOLS, PROCESSORS,
                              max_steps=20_000_000)
    print(speedup_table(curves, "speedup vs processors"))
    print()
    print(ascii_chart(curves, "speedup (ASCII)"))
    print()

    print("what the protocols paid for synchronization (at max P):")
    for protocol in PROTOCOLS:
        stats = curves[protocol].points[-1].outcome.stats
        print(f"  {protocol:13s} rollbacks={stats.rollbacks:5d}  "
              f"antimessages={stats.antimessages:5d}  "
              f"recoveries={stats.deadlock_recoveries:4d}  "
              f"mode switches={stats.mode_switches:3d}  "
              f"efficiency={stats.efficiency:.2f}")

    best = max(PROTOCOLS,
               key=lambda p: curves[p].speedups()[-1])
    print(f"\nbest configuration at P={PROCESSORS[-1]}: {best} "
          f"({curves[best].speedups()[-1]:.2f}x)")
    print("the dynamic configuration self-adapts to "
          f"{curves['dynamic'].speedups()[-1]:.2f}x "
          "without being told which to use — the paper's headline.")


if __name__ == "__main__":
    main()
