"""A1 ablation — naive vs topology-aware partitioning.

The paper used naive round-robin partitioning ("equal number of LPs to
each processor"), blaming it for "occasional dips in the curves", and
notes (Sec. 3.4) that the bi-partite process/signal topology could be
exploited for "a faster and better solution".  This ablation quantifies
that: cut channels and speedup for round-robin vs contiguous blocks vs
BFS (topology-aware) placement on the gate-level IIR filter.
"""

from conftest import PAPER_P, emit

from repro.analysis import format_table
from repro.circuits import build_iir
from repro.parallel import cut_channels, PARTITIONERS, run_parallel

SAMPLES = (64, 0, 0, 0, 16, 240, 16, 0)


def build():
    return build_iir(samples=SAMPLES, extra_cycles=2).design


def run_all():
    baseline = None
    rows = []
    outcomes = {}
    for name in ("round_robin", "block", "bfs"):
        model = build().elaborate()
        placement = PARTITIONERS[name](model, PAPER_P)
        cuts = cut_channels(model, placement)
        outcome = run_parallel(model, processors=PAPER_P,
                               protocol="optimistic", partition=name,
                               max_steps=100_000_000)
        if baseline is None:
            baseline = outcome.stats.events_committed  # same everywhere
        rows.append([name, cuts, f"{outcome.makespan:.0f}",
                     f"{baseline / outcome.makespan:.2f}",
                     outcome.stats.rollbacks])
        outcomes[name] = outcome
    return rows, outcomes


def test_partitioning_ablation(benchmark):
    rows, outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        ["partitioner", "cut channels", "makespan",
         "speedup", "rollbacks"],
        rows, title=f"A1 — Partitioning ablation (IIR gate, "
                    f"{PAPER_P} processors, optimistic)")
    emit("a1_partitioning", table)

    cuts = {row[0]: row[1] for row in rows}
    # Topology-aware placement cuts fewer channels than the naive one.
    assert cuts["bfs"] < cuts["round_robin"]
    # Every placement commits identical work (correctness).
    committed = {o.stats.events_committed for o in outcomes.values()}
    assert len(committed) == 1
