"""Per-event cost of compiled vs interpreted VHDL process bodies.

ROADMAP item 3: the tree-walking interpreter dominates per-event cost,
so backend speedup numbers were latency-weighted rather than honest
compute-bound speedup.  This benchmark measures what
``repro.vhdl.compile`` buys on the two VHDL-text workloads whose
processes actually run through the frontend — the FSM ring and the
lattice IIR bank — under both execution modes, with identical
committed results enforced.

Two per-event figures are reported side by side:

* **process-execution cost per process event** — wall time spent
  inside ``ProcessBody.start/resume`` divided by the number of body
  invocations, measured by wrapping the body objects of the elaborated
  design.  This isolates exactly the cost the compiler attacks (the
  interpreter's share); kernel plumbing (event heap, signal-LP
  resolution, update fan-out) is identical in both modes and excluded.
* **end-to-end cost per committed event** — whole-run wall clock over
  ``events_committed``.  This includes the shared kernel cost, so it
  bounds how much of the body-level win survives in a full run (most
  committed events are signal-plumbing events that never touch a
  process body).

A third section reruns the compute-bound regime on the *procs* backend
(real ``multiprocessing`` workers): the deep-lattice IIR under
``exec_mode="interp"`` vs ``"compiled"``, demonstrating that the
per-event saving survives checkpointing, IPC batching and token-ring
GVT — the compiled frames are pickled into checkpoints along the way.
"""

import time

from conftest import emit

from repro.circuits.vhdl_text import (build_fsm_from_vhdl,
                                      build_iir_from_vhdl)
from repro.harness import wave_digest
from repro.vhdl import simulate, simulate_parallel
from repro.vhdl.compile import lower_design

#: The differential workloads: body-light ring vs body-heavy lattice.
WORKLOADS = {
    "fsm": lambda: build_fsm_from_vhdl(cells=8, cycles=256),
    "iir": lambda: build_iir_from_vhdl(chans=1, sections=64, width=8,
                                       cycles=128),
}

#: Required per-event (process-execution) speedup of compiled bodies.
REQUIRED_SPEEDUP = 2.0


def _instrument(design, acc):
    """Wrap every process body so acc accumulates [seconds, calls]."""
    for lp in design.processes:
        body = lp.body
        for name in ("start", "resume"):
            orig = getattr(body, name)

            def timed(api, _orig=orig, _acc=acc):
                t0 = time.perf_counter()
                try:
                    return _orig(api)
                finally:
                    _acc[0] += time.perf_counter() - t0
                    _acc[1] += 1

            setattr(body, name, timed)


def measure(build, mode: str):
    """One instrumented run: wall, events, body seconds, body calls."""
    design = build()
    if mode == "compiled":
        lower_design(design)  # idempotent under simulate's own lowering
    acc = [0.0, 0]
    _instrument(design, acc)
    t0 = time.perf_counter()
    result = simulate(design, exec_mode=mode)
    wall = time.perf_counter() - t0
    return {"wall": wall, "events": result.stats.events_committed,
            "body_s": acc[0], "body_calls": acc[1], "result": result}


def run_workload(name: str, build):
    interp = measure(build, "interp")
    compiled = measure(build, "compiled")
    # The differential guarantee, re-checked on the benchmark sizes.
    assert interp["result"].traces == compiled["result"].traces
    assert wave_digest(interp["result"]) == \
        wave_digest(compiled["result"])
    assert interp["events"] == compiled["events"]
    assert interp["body_calls"] == compiled["body_calls"]
    return interp, compiled


def _rows(name: str, interp, compiled) -> str:
    def per_event(m):
        return m["wall"] / m["events"] * 1e6

    def per_body(m):
        return m["body_s"] / m["body_calls"] * 1e6

    body_speedup = per_body(interp) / per_body(compiled)
    wall_speedup = per_event(interp) / per_event(compiled)
    lines = [
        f"{name}: {interp['events']} committed events, "
        f"{interp['body_calls']} process executions",
        f"  {'mode':10s} {'wall':>9s} {'us/event':>10s} "
        f"{'body us/exec':>13s}",
    ]
    for mode, m in (("interp", interp), ("compiled", compiled)):
        lines.append(f"  {mode:10s} {m['wall']:8.3f}s "
                     f"{per_event(m):9.1f}  {per_body(m):12.1f}")
    lines.append(f"  per-event process-execution speedup: "
                 f"{body_speedup:.2f}x   end-to-end: {wall_speedup:.2f}x")
    return "\n".join(lines), body_speedup, wall_speedup


def run_procs_section():
    """Compute-bound regime on real multiprocessing workers."""
    rows = []
    for mode in ("interp", "compiled"):
        design = WORKLOADS["iir"]()
        t0 = time.perf_counter()
        result = simulate_parallel(design, 2, protocol="optimistic",
                                   backend="procs", exec_mode=mode,
                                   timeout_s=300.0)
        wall = time.perf_counter() - t0
        rows.append((mode, wall, result.stats.events_committed,
                     wave_digest(result)))
    assert rows[0][2] == rows[1][2]
    assert rows[0][3] == rows[1][3], "procs modes diverged"
    return rows


def test_compile_speedup(benchmark):
    measured = benchmark.pedantic(
        lambda: {name: run_workload(name, build)
                 for name, build in WORKLOADS.items()},
        rounds=1, iterations=1)

    sections = ["compiled vs interpreted process bodies "
                "(repro.vhdl.compile)\n"
                "  identical traces/digests asserted for every pair "
                "of runs"]
    speedups = {}
    for name, (interp, compiled) in measured.items():
        text, body_speedup, wall_speedup = _rows(name, interp, compiled)
        sections.append(text)
        speedups[name] = (body_speedup, wall_speedup)

    procs_rows = run_procs_section()
    procs = {mode: wall for mode, wall, _e, _d in procs_rows}
    sections.append(
        "procs backend, deep-lattice iir (2 workers, optimistic,\n"
        "compiled frames pickled into every checkpoint):\n" +
        "\n".join(f"  {mode:10s} {wall:8.3f}s  "
                  f"{events} committed events"
                  for mode, wall, events, _d in procs_rows) +
        f"\n  compiled/interp wall ratio: "
        f"{procs['interp'] / procs['compiled']:.2f}x")

    sections.append(
        "reading the numbers:\n"
        "  * 'body us/exec' is the interpreter's share of per-event\n"
        "    cost — exactly what the lowering pass replaces.  The\n"
        "    compiled closures cut it well past 2x on both workloads.\n"
        "  * 'us/event' (end-to-end) dilutes that win with kernel\n"
        "    plumbing shared by both modes: most committed events are\n"
        "    signal assign/drive/resolve/update events that execute\n"
        "    no process code.  The body-heavy iir lattice keeps most\n"
        "    of the win end to end; the body-light fsm ring keeps\n"
        "    less.\n"
        "  * the procs rows show the same circuit on real workers:\n"
        "    the per-event saving survives pickled checkpoints and\n"
        "    rollback (bit-identical digests asserted).")
    emit("compile_speedup", "\n\n".join(sections))

    # The claims the transcript is committed for: >= 2x per-event
    # (process-execution) speedup on BOTH workloads...
    for name, (body_speedup, _wall) in speedups.items():
        assert body_speedup >= REQUIRED_SPEEDUP, (name, body_speedup)
    # ...a real end-to-end win on top (generous slack for CI noise)...
    for name, (_body, wall_speedup) in speedups.items():
        assert wall_speedup > 1.15, (name, wall_speedup)
    # ...and compiled at least matches interp under the procs backend.
    assert procs["compiled"] < procs["interp"] * 1.05, procs
