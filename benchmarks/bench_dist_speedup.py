"""Wall-clock speedup of the distributed backend (dist) — honestly.

Measures **real wall-clock time** of the dist backend (standalone
worker daemons over localhost TCP) against the sequential reference
engine and the multiprocess backend on the same circuits, with
identical committed results enforced.

Two regimes, because the honest story has two halves:

* **latency-weighted** — ``repro.circuits.build_pipeline_bank``: every
  stage event blocks for a few milliseconds, modelling external model
  evaluation (co-simulation, an RPC federate).  Blocking overlaps
  across workers, so both real backends beat sequential; dist pays TCP
  framing + the coordinator relay hop on top of what procs pays, and
  the gap between the procs and dist rows *is* that network tax.
* **fine-grained** — the paper's fsm circuit, where an event body is
  cheaper than the bookkeeping around it.  Here distribution can only
  lose on a single host: every event crosses the wire twice
  (worker -> coordinator -> worker) and the committed transcript
  records the slowdown rather than hiding it.  This regime is what
  the *modelled* benchmarks (bench_fsm_speedup etc.) are for; the row
  is here so nobody mistakes the dist backend for a free lunch.

The transcript lives at ``results/dist_speedup.txt``.
"""

import os
import time

from conftest import emit

from repro.circuits import build_fsm, build_pipeline_bank
from repro.core.sequential import SequentialSimulator
from repro.parallel.dist import run_dist
from repro.parallel.procs import run_procs
from repro.vhdl import simulate

#: Independent pipelines (the parallelism the backends can exploit).
CHAINS = 4
#: Weighted stages per pipeline.
STAGES = 3
#: Stimulus events injected per pipeline.
EVENTS = 60
#: Latency weight: blocking external-model wait per stage event (s).
WAIT_S = 0.004

TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT_S", "300"))


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _bank():
    return build_pipeline_bank(chains=CHAINS, stages=STAGES,
                               events=EVENTS, wait_s=WAIT_S)


def run_weighted():
    """sequential / procs-2 / dist-2 / dist-4 on the weighted bank."""
    t_seq, stats = _timed(lambda: SequentialSimulator(_bank()).run())
    rows = [("sequential", 1, t_seq, 1.0, stats.events_committed, 0)]
    runs = [
        ("procs", 2, lambda: run_procs(
            _bank(), 2, protocol="optimistic", partition="block",
            timeout_s=TIMEOUT_S)),
        ("dist", 2, lambda: run_dist(
            _bank(), 2, protocol="optimistic", partition="block",
            timeout_s=TIMEOUT_S)),
        ("dist", 4, lambda: run_dist(
            _bank(), 4, protocol="optimistic", partition="block",
            timeout_s=TIMEOUT_S)),
    ]
    for backend, workers, thunk in runs:
        dt, outcome = _timed(thunk)
        assert outcome.stats.events_committed == stats.events_committed, (
            backend, workers, outcome.stats.events_committed,
            stats.events_committed)
        net = getattr(outcome.stats, "net_bytes_tx", 0) \
            + getattr(outcome.stats, "net_bytes_rx", 0)
        rows.append((backend, workers, dt, t_seq / dt,
                     outcome.stats.events_committed, net))
    return rows


def run_fine_grained():
    """The paper's fsm circuit: fine-grained events over real TCP."""
    circuit = build_fsm(cells=6, cycles=12)
    t_seq, ref = _timed(lambda: simulate(circuit.design))
    rows = [("sequential", 1, t_seq, 1.0,
             ref.stats.events_committed, 0)]
    model = build_fsm(cells=6, cycles=12).design.elaborate()
    dt, outcome = _timed(lambda: run_dist(
        model, 2, protocol="optimistic", timeout_s=TIMEOUT_S))
    assert outcome.stats.events_committed == ref.stats.events_committed
    net = outcome.stats.net_bytes_tx + outcome.stats.net_bytes_rx
    rows.append(("dist", 2, dt, t_seq / dt,
                 outcome.stats.events_committed, net))
    return rows


def _table(title: str, rows) -> str:
    lines = [title,
             f"  {'backend':12s} {'workers':>7s} {'wall':>9s} "
             f"{'speedup':>8s} {'committed':>10s} {'wire-bytes':>11s}"]
    for backend, workers, dt, speedup, committed, net in rows:
        lines.append(f"  {backend:12s} {workers:7d} {dt:8.2f}s "
                     f"{speedup:7.2f}x {committed:10d} {net:11d}")
    return "\n".join(lines)


def test_dist_wall_clock_speedup(benchmark):
    cores = len(os.sched_getaffinity(0)) \
        if hasattr(os, "sched_getaffinity") else os.cpu_count()
    weighted_rows, fine_rows = benchmark.pedantic(
        lambda: (run_weighted(), run_fine_grained()),
        rounds=1, iterations=1)

    def row(rows, backend, workers):
        return next(r for r in rows if r[0] == backend
                    and r[1] == workers)

    events = CHAINS * STAGES * EVENTS
    text = "\n\n".join([
        f"dist wall-clock speedup - localhost TCP workers\n"
        f"  host: {cores} usable core(s); every run commits identical "
        f"results (asserted)\n"
        f"  dist worker daemons are auto-spawned subprocesses; their "
        f"startup,\n  the coordinator relay hop and pickle framing are "
        f"all inside the\n  measured wall time — nothing is amortized "
        f"away",
        _table(f"latency-weighted pipeline bank ({CHAINS} chains x "
               f"{STAGES} stages,\n{events} events, "
               f"{WAIT_S * 1000:.0f} ms blocking model-evaluation "
               f"wait each):", weighted_rows),
        _table("fine-grained fsm (cells=6, cycles=12; no event "
               "weight):", fine_rows),
        "reading the numbers:\n"
        "  * on latency-weighted events both real backends beat\n"
        "    sequential: the blocking waits overlap across workers.\n"
        "    procs vs dist at 2 workers isolates the network tax —\n"
        "    every remote event is framed, pickled and relayed\n"
        "    through the coordinator (two TCP hops).\n"
        "  * on fine-grained events single-host distribution LOSES:\n"
        "    the per-event wire cost dwarfs the microseconds of\n"
        "    event body.  That row is committed on purpose — the\n"
        "    dist backend buys host-spanning scale and process\n"
        "    isolation, not single-host latency.  Multi-host runs\n"
        "    (repro serve + --hosts) move the workers where the\n"
        "    cores are, which is the regime the paper's title is\n"
        "    about.",
    ])
    emit("dist_speedup", text)

    # The claims the transcript is committed for:
    dist2 = row(weighted_rows, "dist", 2)[3]
    procs2 = row(weighted_rows, "procs", 2)[3]
    # Real wall-clock speedup over TCP on weighted events.
    assert dist2 > 1.0, dist2
    # The network tax is real: dist must not beat procs by more than
    # noise on one host (if it does, something is being mismeasured).
    assert dist2 < procs2 * 1.25, (procs2, dist2)
    # Fine-grained dist moved real bytes.
    assert row(fine_rows, "dist", 2)[5] > 0
