"""A5 ablation — lazy vs aggressive cancellation.

The paper cites the "advanced optimistic approaches" line of work
(Schmerler et al., DATE'98); lazy cancellation is its canonical member:
withhold antimessages on rollback, and if the re-execution regenerates
an identical message, reuse the one the receiver already has.

This ablation quantifies both sides of the trade on our workloads:

* when re-execution mostly regenerates the same messages (timing-only
  rollbacks), lazy cancellation saves antimessage traffic;
* when re-execution produces *different* values, the withheld
  cancellations let receivers keep computing on stale inputs, and the
  delayed corrections cause deeper rollback cascades.
"""

from conftest import PAPER_P, emit

from repro.analysis import format_table
from repro.circuits import build_fsm, build_iir
from repro.parallel import run_parallel

SAMPLES = (64, 0, 0, 0, 16, 240, 16, 0)

CIRCUITS = [
    ("FSM", lambda: build_fsm(cycles=8).design),
    ("IIR", lambda: build_iir(samples=SAMPLES, extra_cycles=2).design),
]


def run_all():
    rows = []
    outcomes = {}
    for name, build in CIRCUITS:
        for label, lazy in (("eager", False), ("lazy", True)):
            model = build().elaborate()
            outcome = run_parallel(model, processors=PAPER_P,
                                   protocol="optimistic",
                                   lazy_cancellation=lazy,
                                   max_steps=200_000_000)
            stats = outcome.stats
            rows.append([f"{name} {label}",
                         f"{outcome.makespan:.0f}",
                         stats.rollbacks, stats.antimessages,
                         stats.lazy_reused,
                         f"{stats.efficiency:.3f}"])
            outcomes[(name, label)] = outcome
    return rows, outcomes


def test_lazy_cancellation_ablation(benchmark):
    rows, outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        ["config", "makespan", "rollbacks", "antimsgs", "reused",
         "efficiency"],
        rows,
        title=f"A5 — Lazy vs aggressive cancellation "
              f"({PAPER_P} processors, optimistic)")
    emit("a5_lazy_cancellation", table)

    for name, _build in CIRCUITS:
        eager = outcomes[(name, "eager")].stats
        lazy = outcomes[(name, "lazy")].stats
        # Correctness: identical committed work.
        assert lazy.events_committed == eager.events_committed
        assert eager.lazy_reused == 0
    # Reuse happens where rollbacks cancel cross-LP traffic (the FSM's
    # rollbacks mostly squash self-scheduled events, which are cancelled
    # eagerly by design — see docs/protocol.md).
    total_reused = sum(outcomes[(name, "lazy")].stats.lazy_reused
                       for name, _b in CIRCUITS)
    assert total_reused > 0
