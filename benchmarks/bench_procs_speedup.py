"""Wall-clock speedup of the multiprocess backend (procs).

Unlike every other benchmark in this directory — which reports the
*modelled* makespan of the paper's simulated multiprocessor — this one
measures **real wall-clock time**: the sequential reference engine
against the threaded backend and the multiprocess backend on the same
cost-weighted circuit, with identical committed results enforced.

The circuit is a bank of independent pipelines of ``FunctionLP``
stages; every stage event carries a configurable *model-evaluation
cost*.  Two cost regimes are measured:

* **compute-weighted** — the cost is pure Python arithmetic executed
  under the GIL.  This is the regime the threaded backend's docstring
  concedes: CPython serializes the compute, so OS threads can never
  exceed 1x no matter how many cores the host has (they pay GIL
  contention on top).  The procs backend runs each worker in its own
  interpreter, so its speedup is bounded only by *physical cores*,
  ``min(workers, cores)`` in the embarrassingly parallel limit.
* **latency-weighted** — the cost is a blocking wait, modelling the
  external model evaluation of co-simulation (an IP-block server, a
  disk-backed model, an RPC federate a la HLA).  Blocking releases the
  GIL, so both real backends can overlap it — but the threaded
  backend's stop-the-world GVT barrier re-synchronizes every round,
  while the procs token-ring GVT never stops the workers; procs
  reaches closer to the ideal ``min(workers, chains)x``.

The transcript (``results/procs_speedup.txt``) records the host's
core count next to the numbers: the compute-weighted procs rows scale
with cores, the threaded rows do not scale anywhere.
"""

import os
import time

from conftest import emit

from repro.core.event import EventKind
from repro.core.lp import FunctionLP
from repro.core.model import Model
from repro.core.sequential import SequentialSimulator
from repro.core.vtime import VirtualTime
from repro.parallel.procs import run_procs
from repro.parallel.threads import run_threaded

#: Independent pipelines (the parallelism the backends can exploit).
CHAINS = 4
#: Weighted stages per pipeline.
STAGES = 3
#: Stimulus events injected per pipeline.
EVENTS = 100
#: Compute weight: GIL-bound Python iterations per stage event.
BURN_ITERS = 4_000
#: Latency weight: blocking external-model wait per stage event (s).
WAIT_S = 0.002

TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT_S", "300"))


def build(mode: str) -> Model:
    """A bank of CHAINS independent STAGES-deep weighted pipelines."""
    model = Model()
    for chain in range(CHAINS):
        base = chain * (STAGES + 1)

        def on_init(lp, _n=EVENTS):
            for k in range(_n):
                lp.send(lp.lp_id + 1, VirtualTime(10 + 10 * k, 0),
                        EventKind.USER, k)

        source = FunctionLP(f"src{chain}", lambda lp, event: None,
                            on_init=on_init)
        model.add_lp(source)
        previous = source
        for stage in range(STAGES):
            nxt = None if stage == STAGES - 1 else base + stage + 2

            def body(lp, event, _nxt=nxt, _mode=mode):
                if _mode == "compute":
                    acc = 0
                    for i in range(BURN_ITERS):
                        acc += i * i
                    lp.memory["acc"] = acc
                else:
                    time.sleep(WAIT_S)
                if _nxt is not None:
                    lp.send(_nxt, VirtualTime(event.time.pt + 10, 0),
                            EventKind.USER, event.payload)

            stage_lp = FunctionLP(f"c{chain}s{stage}", body)
            model.add_lp(stage_lp)
            model.connect(previous, stage_lp)
            previous = stage_lp
    model.validate()
    return model


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def run_matrix(mode: str):
    """sequential / threads-4 / procs-2 / procs-4 on one cost regime."""
    t_seq, stats = _timed(lambda: SequentialSimulator(build(mode)).run())
    rows = [("sequential", 1, t_seq, 1.0, stats.events_committed)]
    runs = [
        ("threads", 4, lambda: run_threaded(
            build(mode), 4, protocol="optimistic", partition="block",
            timeout_s=TIMEOUT_S)),
        ("procs", 2, lambda: run_procs(
            build(mode), 2, protocol="optimistic", partition="block",
            timeout_s=TIMEOUT_S)),
        ("procs", 4, lambda: run_procs(
            build(mode), 4, protocol="optimistic", partition="block",
            timeout_s=TIMEOUT_S)),
    ]
    for backend, workers, thunk in runs:
        dt, outcome = _timed(thunk)
        assert outcome.stats.events_committed == stats.events_committed, (
            backend, workers, outcome.stats.events_committed,
            stats.events_committed)
        rows.append((backend, workers, dt, t_seq / dt,
                     outcome.stats.events_committed))
    return rows


def _table(title: str, rows) -> str:
    lines = [title,
             f"  {'backend':12s} {'workers':>7s} {'wall':>9s} "
             f"{'speedup':>8s} {'committed':>10s}"]
    for backend, workers, dt, speedup, committed in rows:
        lines.append(f"  {backend:12s} {workers:7d} {dt:8.2f}s "
                     f"{speedup:7.2f}x {committed:10d}")
    return "\n".join(lines)


def test_procs_wall_clock_speedup(benchmark):
    cores = len(os.sched_getaffinity(0)) \
        if hasattr(os, "sched_getaffinity") else os.cpu_count()
    compute_rows, latency_rows = benchmark.pedantic(
        lambda: (run_matrix("compute"), run_matrix("latency")),
        rounds=1, iterations=1)

    def row(rows, backend, workers):
        return next(r for r in rows if r[0] == backend
                    and r[1] == workers)

    events = CHAINS * STAGES * EVENTS
    text = "\n\n".join([
        f"procs wall-clock speedup - cost-weighted pipeline bank\n"
        f"  circuit: {CHAINS} independent chains x {STAGES} weighted "
        f"stages, {events} weighted events\n"
        f"  host: {cores} usable core(s); every run commits identical "
        f"results (asserted)",
        _table(f"compute-weighted ({BURN_ITERS} GIL-bound iterations "
               f"per event):", compute_rows),
        _table(f"latency-weighted ({WAIT_S * 1000:.0f} ms external "
               f"model-evaluation wait per event):", latency_rows),
        "reading the numbers:\n"
        "  * threads CANNOT speed up compute: the GIL serializes every\n"
        "    event body, so the threaded backend stays at or below 1x\n"
        "    on any host (above, it pays contention on top).  This is\n"
        "    the gap the procs backend exists to close.\n"
        "  * procs compute speedup is bounded by physical cores:\n"
        "    min(workers, cores)x in the embarrassingly parallel\n"
        "    limit.  A 1-core host pins it to ~1x; re-run on a\n"
        "    multi-core host to watch the 2- and 4-worker rows open\n"
        "    up while the threads row stays flat.\n"
        "  * latency-weighted cost (GIL-releasing, as in\n"
        "    co-simulation) parallelizes on any host.  procs at 4\n"
        "    workers beats threads at 4 workers: the token-ring GVT\n"
        "    never stops the world, while the threaded backend\n"
        "    re-barriers every GVT round and pays GIL contention on\n"
        "    the bookkeeping between waits.",
    ])
    emit("procs_speedup", text)

    # The claims the transcript is committed for:
    threads_compute = row(compute_rows, "threads", 4)[3]
    procs4_latency = row(latency_rows, "procs", 4)[3]
    procs2_latency = row(latency_rows, "procs", 2)[3]
    threads_latency = row(latency_rows, "threads", 4)[3]
    # Threads cannot speed up GIL-bound compute (generous slack for
    # timer noise: the true value sits well below 1).
    assert threads_compute < 1.1, threads_compute
    # Real wall-clock speedup > 1x at 4 workers on the cost-weighted
    # circuit, and more workers help (2 -> 4).
    assert procs4_latency > 1.0, procs4_latency
    assert procs4_latency > procs2_latency * 0.9, (
        procs2_latency, procs4_latency)
    # Side by side at 4 workers: procs >= threads (stop-the-world GVT
    # + GIL bookkeeping cap the threaded backend).
    assert procs4_latency > threads_latency * 0.9, (
        threads_latency, procs4_latency)
    if cores >= 2:
        procs4_compute = row(compute_rows, "procs", 4)[3]
        assert procs4_compute > 1.0, procs4_compute
