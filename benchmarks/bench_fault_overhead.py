"""Fault-tolerance overhead: what reliability costs on a lossy fabric.

Not a paper figure — the paper assumes a perfect MPI/shared-memory
fabric — but the natural robustness companion to its overhead studies:
sweep fault-plan severities over the FSM workload and measure how the
modelled makespan and the protocol counters degrade as the network gets
worse, while committed results stay sequential-identical throughout.

The sweep covers drops (retransmission latency), duplicates (dedup
work), reordering (receiver buffering), a combined "hostile" plan, and a
crash-recovery run (checkpoint + journal-replay cost).
"""

from conftest import emit

from repro.circuits import build_fsm
from repro.fabric import FaultPlan
from repro.vhdl import simulate, simulate_parallel

CYCLES = 6
PROCESSORS = 8
SEED = 1

PLANS = [
    ("baseline", None),
    ("drop 2%", FaultPlan(seed=SEED, drop=0.02)),
    ("drop 10%", FaultPlan(seed=SEED, drop=0.10)),
    ("dup 5%", FaultPlan(seed=SEED, duplicate=0.05)),
    ("reorder 20%", FaultPlan(seed=SEED, reorder=0.20)),
    ("hostile", FaultPlan(seed=SEED, drop=0.05, duplicate=0.02,
                          reorder=0.10, jitter=2.0)),
    ("2 crashes", FaultPlan(seed=SEED, crashes=((400, 1), (900, 3)))),
]


def run_sweep():
    reference = simulate(build_fsm(cycles=CYCLES).design)
    rows = []
    for label, plan in PLANS:
        result = simulate_parallel(
            build_fsm(cycles=CYCLES).design, processors=PROCESSORS,
            protocol="optimistic", fault_plan=plan,
            max_steps=100_000_000)
        assert result.traces == reference.traces, label
        rows.append((label, result))
    return rows


def render(rows):
    base = rows[0][1].parallel_time
    lines = [
        "Fault-tolerance overhead — FSM, "
        f"{PROCESSORS} processors, optimistic",
        f"{'plan':14s} {'makespan':>9s} {'slowdown':>8s} {'sent':>6s} "
        f"{'drop':>5s} {'retx':>5s} {'dedup':>5s} {'crash':>5s} "
        f"{'replay':>6s}",
    ]
    for label, result in rows:
        s = result.stats
        lines.append(
            f"{label:14s} {result.parallel_time:9.0f} "
            f"{result.parallel_time / base:7.2f}x {s.fabric_sent:6d} "
            f"{s.dropped:5d} {s.retransmitted:5d} {s.dedup_dropped:5d} "
            f"{s.crashes:5d} {s.replayed:6d}")
    return "\n".join(lines)


def test_fault_overhead(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("fault_overhead", render(rows))

    by_label = dict(rows)
    base = by_label["baseline"]
    # The perfect-fabric path pays nothing for the fabric abstraction.
    assert base.stats.fabric_sent == 0
    assert base.stats.retransmitted == 0
    # Faults cost model time, never correctness (asserted in run_sweep).
    hostile = by_label["hostile"]
    assert hostile.stats.dropped > 0
    assert hostile.stats.retransmitted >= hostile.stats.dropped
    assert hostile.parallel_time >= base.parallel_time
    crashed = by_label["2 crashes"]
    assert crashed.stats.crashes == 2
    assert crashed.stats.recoveries == 2
