"""E5 — Circuit size inventory (paper Sec. 4).

The paper reports the sizes of the simulated circuits (553 to ~1800
LPs).  This benchmark regenerates that inventory for our parameterized
reconstructions at both abstraction levels, plus the channel counts of
the bi-partite process/signal graphs.
"""

from conftest import emit

from repro.analysis import format_table
from repro.circuits import build_dct, build_fsm, build_iir


def collect():
    rows = []
    for name, builder in [
        ("FSM behavioral", lambda: build_fsm(level="behavioral",
                                             cycles=1)),
        ("FSM gate (0 delay)", lambda: build_fsm(cycles=1)),
        ("IIR behavioral", lambda: build_iir(level="behavioral",
                                             samples=(1,),
                                             extra_cycles=0)),
        ("IIR gate", lambda: build_iir(samples=(1,), extra_cycles=0)),
        ("DCT behavioral", lambda: build_dct(level="behavioral",
                                             extra_cycles=0)),
        ("DCT gate", lambda: build_dct(extra_cycles=0)),
    ]:
        circuit = builder()
        report = circuit.design.size_report()
        rows.append([name, report["signals"], report["processes"],
                     report["lps"], report["channels"]])
    return rows


def test_circuit_sizes(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = format_table(
        ["circuit", "signals", "processes", "LPs", "channels"], rows,
        title="Circuit sizes (paper Sec. 4: FSM 553, IIR ~1708, "
              "DCT ~1792 LPs)")
    emit("circuit_sizes", table)

    sizes = {row[0]: row[3] for row in rows}
    assert 550 <= sizes["FSM gate (0 delay)"] <= 560  # paper: 553
    assert 1300 <= sizes["IIR gate"] <= 2000          # paper: ~1708
    assert 1200 <= sizes["DCT gate"] <= 2000          # paper: ~1792
    # Behavioral models are 1-2 orders of magnitude smaller.
    assert sizes["FSM behavioral"] < sizes["FSM gate (0 delay)"] / 4
