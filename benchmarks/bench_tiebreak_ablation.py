"""A2 ablation — what breaks without the (pt, lt) tie-breaking.

The paper's central claim (Sec. 3.3): processing simultaneous events in
arbitrary order "may modify the semantics of the VHDL simulation,
leading to incorrect results in cases of delta cycles ... or processes
with multiple simultaneous input signals updates" — unless the extra
logical-time field causally orders the phases of the VHDL cycle.

This ablation simulates a kernel WITHOUT the scheme: events are ordered
by physical time only, ties broken at random.  On a delta-cycle-
sensitive circuit (out = a xor b with a == b by construction, so ``out``
must never glitch) the ablated kernel produces wrong results in a large
fraction of random orderings, while the full (pt, lt) kernel is correct
under *every* ordering.
"""

import random

from conftest import emit

from repro.analysis import format_table
from repro.core import NS
from repro.core.sequential import SequentialSimulator
from repro.vhdl import CombinationalBody, Design, SL_0, SL_1, Wait

TRIALS = 40


def build_glitch_probe():
    """out = fan1(src) xor fan2(src): must never publish a change."""
    design = Design("glitch")
    src = design.signal("src", SL_0)
    a = design.signal("a", SL_0)
    b = design.signal("b", SL_0)
    out = design.signal("out", SL_0, traced=True)
    design.process("fan1", CombinationalBody([src], [a], lambda v: v))
    design.process("fan2", CombinationalBody([src], [b], lambda v: v))
    design.process("xor", CombinationalBody([a, b], [out],
                                            lambda x, y: x ^ y))

    def stim(api):
        for step in range(4):
            yield Wait(for_fs=1 * NS)
            api.assign(src.lp_id, SL_1 if step % 2 == 0 else SL_0)

    design.stimulus("stim", stim, drives=[src])
    return design


def run_trials():
    correct_full = 0
    correct_ablated = 0
    for trial in range(TRIALS):
        rng = random.Random(trial)
        # Full kernel: shuffled order among equal (pt, lt) events.
        design = build_glitch_probe()
        sim = SequentialSimulator(design.elaborate(), shuffle_ties=rng)
        sim.run()
        if not design["out"].history:
            correct_full += 1
        # Ablated kernel: physical-time order only, ties random.
        rng2 = random.Random(trial)
        design2 = build_glitch_probe()
        sim2 = SequentialSimulator(
            design2.elaborate(),
            key_fn=lambda e, _r=rng2: (e.time.pt, _r.random()))
        sim2.run(max_events=100_000)
        if not design2["out"].history:
            correct_ablated += 1
    return correct_full, correct_ablated


def test_tiebreak_ablation(benchmark):
    correct_full, correct_ablated = benchmark.pedantic(
        run_trials, rounds=1, iterations=1)
    table = format_table(
        ["kernel", "correct runs", "trials"],
        [["with (pt, lt) tie-breaking", correct_full, TRIALS],
         ["physical time only (ablated)", correct_ablated, TRIALS]],
        title="A2 — Delta-cycle correctness without the logical clock")
    emit("a2_tiebreak_ablation", table)

    # The full kernel is correct under EVERY simultaneous-event order.
    assert correct_full == TRIALS
    # The ablated kernel glitches in a substantial fraction of orders.
    assert correct_ablated < TRIALS
