"""What the artifact layer buys: elaborate once, simulate N times.

ROADMAP item 2 (docs/architecture.md): a production fleet runs a few
distinct designs thousands of times, so elaboration — parse +
elaborate + lower, all run-independent — should be paid once per
design, not once per run.  This benchmark measures the three tiers of
that amortization on a body-heavy VHDL workload (the lattice IIR bank,
whose source is large enough that the frontend cost is an honest
fraction of a run):

* **per-operation cost** — cold elaboration (parse + elaborate +
  snapshot) vs an on-disk cache hit (read + integrity-check, no
  parsing) vs ``instantiate()`` (unpickle a fresh runtime);
* **batch throughput** — N sequential runs the pre-artifact way
  (re-elaborate every run) vs through ``RunService`` (resolve the
  artifact once, instantiate per run), identical committed waves
  asserted for every pair;
* the same comparison for the **programmatic** path (structural-hash
  artifacts of the built FSM ring; no parser involved, so the win is
  smaller — the floor of the technique).
"""

import tempfile
import time

from conftest import emit

from repro.circuits import build_fsm
from repro.circuits.vhdl_text import iir_vhdl
from repro.harness import wave_digest
from repro.service import BatchJob, RunService, RunSpec, VhdlJob
from repro.vhdl import (ElabCache, build_artifact, cached_elaborate,
                        simulate)
from repro.vhdl.frontend import elaborate

#: The VHDL workload: wide lattice bank, short run — elaboration-heavy.
IIR_KW = dict(chans=2, sections=24, width=8, cycles=8)
TOP = "iir_bank"
RUNS = 8


def timed(fn, repeat=3):
    """Best-of-``repeat`` wall time plus the last return value."""
    best, value = float("inf"), None
    for _ in range(repeat):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def per_operation(source, cache):
    cold_s, artifact = timed(
        lambda: build_artifact(source, TOP, traced=("y",)), repeat=1)
    cache.put(artifact)
    hit_s, (hit, was_hit) = timed(lambda: cached_elaborate(
        source, TOP, traced=("y",), cache=cache))
    assert was_hit and hit.content_hash == artifact.content_hash
    inst_s, design = timed(artifact.instantiate)
    assert design is not None
    return artifact, {"cold_s": cold_s, "hit_s": hit_s,
                      "inst_s": inst_s}


def batch_rebuild(source):
    """The pre-artifact discipline: every run re-elaborates."""
    t0 = time.perf_counter()
    digests = set()
    for _ in range(RUNS):
        result = simulate(elaborate(source, top=TOP, traced=("y",)))
        digests.add(wave_digest(result))
    return time.perf_counter() - t0, digests


def batch_service(source, cache):
    """The artifact discipline: resolve once, instantiate per run."""
    service = RunService(cache=cache, max_workers=1)
    job = BatchJob(design=VhdlJob(source=source, top=TOP,
                                  traced=("y",)),
                   runs=[RunSpec(backend="seq") for _ in range(RUNS)])
    t0 = time.perf_counter()
    batch = service.run_batch([job])
    wall = time.perf_counter() - t0
    assert batch.ok, [o.error for o in batch.failures]
    assert batch.elaborations + batch.cache_hits == 1
    return wall, {wave_digest(o.result) for o in batch.outcomes}


def programmatic_section():
    """The floor: builder circuits have no parser cost to amortize."""
    build = lambda: build_fsm(cells=8, cycles=8).design  # noqa: E731
    t0 = time.perf_counter()
    rebuild_digests = {wave_digest(simulate(build()))
                       for _ in range(RUNS)}
    rebuild_s = time.perf_counter() - t0

    artifact = build().artifact()
    t0 = time.perf_counter()
    artifact_digests = {wave_digest(simulate(artifact.instantiate()))
                        for _ in range(RUNS)}
    artifact_s = time.perf_counter() - t0
    assert rebuild_digests == artifact_digests
    assert len(artifact_digests) == 1
    return rebuild_s, artifact_s


def test_elab_amortization(benchmark):
    source = iir_vhdl(**IIR_KW)

    def run():
        with tempfile.TemporaryDirectory() as root:
            cache = ElabCache(root=root)
            artifact, ops = per_operation(source, cache)
            rebuild_s, rebuild_digests = batch_rebuild(source)
            service_s, service_digests = batch_service(source, cache)
            return artifact, ops, rebuild_s, rebuild_digests, \
                service_s, service_digests

    (artifact, ops, rebuild_s, rebuild_digests, service_s,
     service_digests) = benchmark.pedantic(run, rounds=1, iterations=1)
    prog_rebuild_s, prog_artifact_s = programmatic_section()

    # The acceptance criterion, on benchmark sizes: runs from the
    # cached artifact commit exactly the waves of cold rebuilds.
    assert rebuild_digests == service_digests
    assert len(service_digests) == 1

    sections = [
        "elaborate once, simulate N times (repro.vhdl.artifact + "
        "repro.service)\n"
        f"  workload: lattice iir bank {IIR_KW}, sequential engine,\n"
        f"  identical wave digests asserted across every path",
        (f"per-operation cost ({len(artifact.payload)}-byte artifact, "
         f"{artifact.meta['lps']} LPs):\n"
         f"  cold elaborate (parse+elaborate+snapshot) "
         f"{ops['cold_s'] * 1e3:9.1f} ms\n"
         f"  cache hit      (read+verify, no parsing)  "
         f"{ops['hit_s'] * 1e3:9.1f} ms   "
         f"({ops['cold_s'] / ops['hit_s']:.1f}x cheaper)\n"
         f"  instantiate    (fresh runtime)            "
         f"{ops['inst_s'] * 1e3:9.1f} ms   "
         f"({ops['cold_s'] / ops['inst_s']:.1f}x cheaper)"),
        (f"batch of {RUNS} runs, vhdl workload:\n"
         f"  re-elaborate per run   {rebuild_s:7.2f}s  "
         f"({rebuild_s / RUNS * 1e3:7.1f} ms/run)\n"
         f"  RunService (1 elab)    {service_s:7.2f}s  "
         f"({service_s / RUNS * 1e3:7.1f} ms/run)\n"
         f"  batch speedup: {rebuild_s / service_s:.2f}x"),
        (f"batch of {RUNS} runs, programmatic fsm (the floor — no "
         f"parser to skip):\n"
         f"  rebuild per run        {prog_rebuild_s:7.2f}s\n"
         f"  artifact instantiate   {prog_artifact_s:7.2f}s\n"
         f"  ratio: {prog_rebuild_s / prog_artifact_s:.2f}x"),
        ("reading the numbers:\n"
         "  * the cache hit skips the frontend entirely — its cost is\n"
         "    file read + sha256 + unpickle, independent of source\n"
         "    complexity; the gap vs cold widens with design size.\n"
         "  * the batch speedup is the service's whole value: run\n"
         "    time is unchanged, elaboration happens once instead of\n"
         "    N times.  Body-heavy circuits with short runs gain the\n"
         "    most; long simulations amortize elaboration anyway.\n"
         "  * the programmatic path has no parser cost, so its win\n"
         "    is just build-vs-unpickle — small but never negative."),
    ]
    emit("elab_amortization", "\n\n".join(sections))

    # The claims the transcript is committed for: a cache hit and an
    # instantiation are each well under cold elaboration cost, and the
    # batched service beats rebuild-per-run end to end.
    assert ops["hit_s"] < ops["cold_s"] / 2, ops
    assert ops["inst_s"] < ops["cold_s"] / 2, ops
    assert service_s < rebuild_s, (service_s, rebuild_s)
