"""E4 / Fig. 4 — Arbitrary vs. user-consistent simultaneous-event models.

Regenerates the paper's Fig. 4 table: modelled running times of all
three circuits on 14 processors under

* the paper's **arbitrary** model (the (pt, lt) tie-breaking makes any
  processing order of equal-time events correct): conservative without
  lookahead (null messages disabled, global-sync progress) and
  optimistic;
* the **user-consistent** comparison model, in which an LP must gather
  the complete simultaneous set before processing: conservative needs
  lookahead + null messages (it "will block without it"), and optimistic
  pays extra rollbacks on equal timestamps.

The paper's finding: the user model's own overhead is small, but for
light VHDL LPs the lookahead/null-message machinery it forces on the
conservative side is the real cost.
"""

from conftest import PAPER_P, emit

from repro.analysis import format_table
from repro.circuits import build_dct, build_fsm, build_iir
from repro.parallel import run_parallel

FSM_CYCLES = 8
IIR_SAMPLES = (64, 0, 0, 0, 16, 240, 16, 0)

CIRCUITS = [
    ("FSM", lambda: build_fsm(cycles=FSM_CYCLES).design),
    ("IIR", lambda: build_iir(samples=IIR_SAMPLES,
                              extra_cycles=2).design),
    ("DCT", lambda: build_dct().design),
]

CONFIGS = [
    # (column, protocol, user_consistent, lookahead)
    ("cons arb -la", "conservative", False, None),
    ("cons arb +la", "conservative", False, "vhdl"),
    ("cons user +la", "conservative", True, "vhdl"),
    ("opt arb", "optimistic", False, None),
    ("opt user", "optimistic", True, None),
]


def run_all():
    rows = []
    details = []
    for name, build in CIRCUITS:
        row = [name]
        for column, protocol, user, lookahead in CONFIGS:
            model = build().elaborate()
            outcome = run_parallel(model, processors=PAPER_P,
                                   protocol=protocol,
                                   user_consistent=user,
                                   lookahead=lookahead,
                                   max_steps=200_000_000)
            row.append(f"{outcome.makespan:.0f}")
            details.append((name, column, outcome))
        rows.append(row)
    return rows, details


def test_fig4_arbitrary_vs_user(benchmark):
    rows, details = benchmark.pedantic(run_all, rounds=1, iterations=1)
    headers = ["Circuit"] + [c[0] for c in CONFIGS]
    table = format_table(
        headers, rows,
        title=f"Fig. 4 — Arbitrary vs. User-Consistent "
              f"(modelled time units, {PAPER_P} processors)")
    lines = [table, "", "overheads:"]
    for name, column, outcome in details:
        stats = outcome.stats
        lines.append(
            f"  {name:4s} {column:14s} rollbacks={stats.rollbacks:6d} "
            f"nulls={stats.null_messages:7d} "
            f"recoveries={stats.deadlock_recoveries:5d}")
    emit("fig4_arbitrary_vs_user", "\n".join(lines))

    by = {(name, column): outcome
          for name, column, outcome in details}
    for name, _build in CIRCUITS:
        # The arbitrary model never loses to the user-consistent one on
        # the same synchronization flavour (the paper's headline).
        assert by[(name, "opt arb")].makespan <= \
            1.05 * by[(name, "opt user")].makespan
        assert by[(name, "cons arb -la")].makespan <= \
            1.2 * by[(name, "cons user +la")].makespan
        # The user-consistent conservative run leans on null messages.
        assert by[(name, "cons user +la")].stats.null_messages > 0
    # User-consistent optimism rolls back at least comparably overall
    # (per-circuit counts fluctuate with scheduling; the aggregate is
    # the meaningful signal).
    arb_total = sum(by[(n, "opt arb")].stats.rollbacks
                    for n, _b in CIRCUITS)
    user_total = sum(by[(n, "opt user")].stats.rollbacks
                     for n, _b in CIRCUITS)
    assert user_total >= 0.8 * arb_total
