"""Conformance-harness overhead: what the trace hooks cost when off.

docs/conformance.md claims the instrumentation is near-zero-cost when
disabled: every hook site is a single ``if self.tracer is not None``
attribute load.  This benchmark quantifies that claim on the FSM
workload across three configurations:

* **off** — no tracer, no scheduler, liveness layer disabled
  (``watchdog=0``): the bare engine;
* **watchdog** — the default configuration: GVT-progress watchdog plus
  virtual-time-surface sampling, still no tracing.  This is what every
  production run pays, and the liveness layer's claim is that it costs
  ≲2% (one marker comparison plus an O(LPs) min/max per GVT round);
* **tracer** — a ``Tracer`` attached, recording every protocol action;
* **tracer+sched** — tracer plus the ``DefaultScheduler``, which also
  routes every tie through the controlled choice points (the full
  conformance-run configuration).

All four must commit identical waves and identical event counters —
observation must never perturb the machine — and the "off" column is
the number the uninstrumented engine actually pays.
"""

import time

from conftest import emit

from repro.circuits import build_fsm
from repro.harness import DefaultScheduler, Tracer
from repro.vhdl import simulate, simulate_parallel

CYCLES = 6
PROCESSORS = 8
REPEATS = 3

CONFIGS = [
    ("off", lambda: {"watchdog": 0}),
    ("watchdog", lambda: {}),
    ("tracer", lambda: {"tracer": Tracer()}),
    ("tracer+sched", lambda: {"tracer": Tracer(),
                              "scheduler": DefaultScheduler()}),
]

#: Soft ceiling asserted on the watchdog row.  The documented claim is
#: ~2%; the asserted bound leaves headroom for shared-runner timing
#: noise on a sub-second workload while still catching a regression
#: that makes the liveness layer genuinely expensive.
WATCHDOG_OVERHEAD_CEILING = 1.15


def run_sweep():
    reference = simulate(build_fsm(cycles=CYCLES).design)
    rows = []
    for label, make_kwargs in CONFIGS:
        best = None
        result = None
        records = 0
        for _ in range(REPEATS):
            kwargs = make_kwargs()
            start = time.perf_counter()
            result = simulate_parallel(
                build_fsm(cycles=CYCLES).design, processors=PROCESSORS,
                protocol="dynamic", max_steps=100_000_000, **kwargs)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
            tracer = kwargs.get("tracer")
            records = len(tracer.records) if tracer is not None else 0
        assert result.traces == reference.traces, label
        rows.append((label, best, records, result))
    return rows


def render(rows):
    base = rows[0][1]
    lines = [
        "Conformance-harness overhead — FSM, "
        f"{PROCESSORS} processors, dynamic (best of {REPEATS})",
        f"{'config':14s} {'wall s':>8s} {'overhead':>8s} "
        f"{'records':>8s} {'committed':>9s} {'rollbacks':>9s}",
    ]
    for label, wall, records, result in rows:
        s = result.stats
        lines.append(
            f"{label:14s} {wall:8.3f} {wall / base:7.2f}x "
            f"{records:8d} {s.events_committed:9d} {s.rollbacks:9d}")
    return "\n".join(lines)


def test_harness_overhead(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("harness_overhead", render(rows))

    by_label = {label: (records, result)
                for label, _, records, result in rows}
    walls = {label: wall for label, wall, _, _ in rows}
    # Observation never perturbs the machine: identical counters.
    base_stats = by_label["off"][1].stats
    for label in ("watchdog", "tracer", "tracer+sched"):
        stats = by_label[label][1].stats
        assert stats.events_committed == base_stats.events_committed, label
        assert stats.events_executed == base_stats.events_executed, label
    # The uninstrumented path records nothing; the traced paths record
    # every protocol action (at least one per executed event).
    assert by_label["off"][0] == 0
    assert by_label["tracer"][0] >= base_stats.events_executed
    assert by_label["tracer+sched"][0] >= base_stats.events_executed
    # Liveness layer: off really is off, on really probes and samples,
    # and the probing stays within the soft overhead ceiling.
    watchdog_stats = by_label["watchdog"][1].stats
    assert base_stats.watchdog_probes == 0
    assert base_stats.vt_spread_samples == 0
    assert watchdog_stats.watchdog_probes > 0
    assert watchdog_stats.vt_spread_samples > 0
    assert watchdog_stats.watchdog_stalls == 0
    assert walls["watchdog"] / walls["off"] <= WATCHDOG_OVERHEAD_CEILING
