"""A6 ablation — delta-cycle density vs protocol behaviour.

The paper's Fig. 6 is explicitly captioned "FSM (0 Delay)": the
zero-delay configuration maximizes simultaneous events (every clock
edge spawns a cascade of delta cycles at one physical instant).  This
ablation runs the *same* FSM with unit gate delays, which spreads the
identical logical activity over physical time, and compares how each
protocol's overheads shift — quantifying the paper's claim that the
density of simultaneous events is what differentiates the
configurations.
"""

from conftest import PAPER_P, emit

from repro.analysis import format_table
from repro.circuits import build_fsm
from repro.core.vtime import NS
from repro.parallel import run_parallel

CYCLES = 8
PROTOCOLS = ["optimistic", "conservative", "dynamic"]


def run_all():
    rows = []
    outcomes = {}
    for label, delay in (("0 delay", 0), ("1 ns", 1 * NS)):
        for protocol in PROTOCOLS:
            model = build_fsm(cycles=CYCLES,
                              gate_delay_fs=delay).design.elaborate()
            outcome = run_parallel(model, processors=PAPER_P,
                                   protocol=protocol,
                                   max_steps=100_000_000)
            stats = outcome.stats
            baseline = stats.events_committed * 1.0
            rows.append([f"{label} {protocol}",
                         f"{baseline / outcome.makespan:.2f}",
                         stats.rollbacks,
                         stats.deadlock_recoveries,
                         stats.events_committed])
            outcomes[(label, protocol)] = outcome
    return rows, outcomes


def test_delta_density_ablation(benchmark):
    rows, outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        ["config", "speedup", "rollbacks", "recoveries", "events"],
        rows,
        title=f"A6 — Delta-cycle density (FSM, {PAPER_P} processors)")
    emit("a6_delta_density", table)

    # Same logical machine: both delay settings commit the same number
    # of register captures (total events differ only through timing
    # bookkeeping, so compare the committed counts loosely).
    for protocol in PROTOCOLS:
        dense = outcomes[("0 delay", protocol)].stats
        spread = outcomes[("1 ns", protocol)].stats
        assert dense.events_committed > 0
        assert spread.events_committed > 0
