"""A3 ablation — lookahead as an optional accelerator.

The paper's protocol is lookahead-free, but "if the lookahead is
available, it may be used to improve performance".  This ablation runs
the conservative configuration with and without the VHDL kernel's
structural one-phase lookahead (null messages enabled vs disabled) and
reports the trade: null-message traffic vs global deadlock-recovery
rounds vs makespan.
"""

from conftest import PAPER_P, emit

from repro.analysis import format_table
from repro.circuits import build_fsm, build_iir
from repro.parallel import run_parallel

SAMPLES = (64, 0, 0, 0, 16, 240, 16, 0)

CIRCUITS = [
    ("FSM", lambda: build_fsm(cycles=8).design),
    ("IIR", lambda: build_iir(samples=SAMPLES, extra_cycles=2).design),
]


def run_all():
    rows = []
    outcomes = {}
    for name, build in CIRCUITS:
        for la_label, lookahead in (("-la", None), ("+la", "vhdl")):
            model = build().elaborate()
            outcome = run_parallel(model, processors=PAPER_P,
                                   protocol="conservative",
                                   lookahead=lookahead,
                                   max_steps=100_000_000)
            stats = outcome.stats
            rows.append([f"{name} {la_label}",
                         f"{outcome.makespan:.0f}",
                         stats.null_messages,
                         stats.deadlock_recoveries,
                         stats.gvt_rounds,
                         stats.blocked_polls])
            outcomes[(name, la_label)] = outcome
    return rows, outcomes


def test_lookahead_ablation(benchmark):
    rows, outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        ["config", "makespan", "nulls", "recoveries", "gvt rounds",
         "blocked polls"],
        rows,
        title=f"A3 — Conservative with/without lookahead "
              f"({PAPER_P} processors)")
    emit("a3_lookahead", table)

    for name, _build in CIRCUITS:
        bare = outcomes[(name, "-la")]
        nulls = outcomes[(name, "+la")]
        # Null messages only exist when lookahead is on.
        assert bare.stats.null_messages == 0
        assert nulls.stats.null_messages > 0
        # Both commit identical work.
        assert bare.stats.events_committed == nulls.stats.events_committed
