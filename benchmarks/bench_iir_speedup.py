"""E2 / Fig. 8 — Speedup for the Gray–Markel lattice IIR filter (gate).

Regenerates the paper's Fig. 8: speedup vs processor count for the
gate-level cascaded-lattice IIR filter (~1.5k LPs in our
reconstruction; the paper reports ~1708).  Unlike the FSM, the
datapath's events spread over physical time (unit gate delays), the
regime where the paper's mixed heuristic calls the combinational cloud
"asynchronous ... usually safe" and maps it optimistic.
"""

from conftest import PROCESSOR_SWEEP, PROTOCOLS, emit

from repro.analysis import ascii_chart, measure_speedups, speedup_table
from repro.circuits import build_iir

SAMPLES = (64, 0, 0, 0, 16, 240, 16, 0)


def build():
    return build_iir(samples=SAMPLES, extra_cycles=2).design


def run_sweep():
    return measure_speedups(build, PROTOCOLS, PROCESSOR_SWEEP,
                            max_steps=100_000_000)


def test_fig8_iir_speedup(benchmark):
    curves = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lp_count = build_iir(samples=(1,), extra_cycles=0).lp_count
    table = speedup_table(
        curves, f"Fig. 8 — Speedup for IIR Filter (Gate), {lp_count} LPs")
    chart = ascii_chart(curves, "Fig. 8 (ASCII rendering)")
    stats_lines = ["", "protocol stats at max P:"]
    for protocol, curve in curves.items():
        outcome = curve.points[-1].outcome
        stats_lines.append(f"  {protocol:13s} {outcome.stats.summary()}")
    emit("fig8_iir_speedup", table + "\n\n" + chart
         + "\n".join(stats_lines))

    top = curves["optimistic"].speedups()[-1]
    assert top > 4.0  # strong scaling on the large datapath
    # Dynamic follows the best configuration.
    best_static = max(curves[p].speedups()[-1]
                      for p in ("optimistic", "conservative", "mixed"))
    assert curves["dynamic"].speedups()[-1] >= 0.8 * best_static
    # Time Warp actually worked for this speedup (rollbacks occurred but
    # stayed efficient).
    opt = curves["optimistic"].points[-1].outcome.stats
    assert opt.rollbacks > 0
    assert opt.efficiency > 0.5
