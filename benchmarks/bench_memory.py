"""A4 ablation — the memory cost of optimism (paper Sec. 4 remark).

"Unfortunately, it [the optimistic configuration] demands huge amounts
of memory, proportional to the number of processors."  This ablation
measures the peak speculative state (uncommitted event-log entries and
snapshots) of the optimistic configuration as the processor count
grows, and the classic counter-measure the kernel implements: interval
checkpointing (snapshot every k-th event, coast-forward on rollback),
trading replay time for snapshot memory.
"""

from conftest import emit

from repro.analysis import format_table
from repro.circuits import build_iir
from repro.parallel import run_parallel

SAMPLES = (64, 0, 0, 0, 16, 240, 16, 0)


def build():
    return build_iir(samples=SAMPLES, extra_cycles=2).design


def run_all():
    rows = []
    peaks = {}
    for processors in (2, 8, 14):
        for interval in (1, 8):
            model = build().elaborate()
            outcome = run_parallel(model, processors=processors,
                                   protocol="optimistic",
                                   checkpoint_interval=interval,
                                   max_steps=100_000_000)
            stats = outcome.stats
            rows.append([processors, interval,
                         stats.peak_speculative, stats.snapshots,
                         stats.coast_forward_events,
                         f"{outcome.makespan:.0f}"])
            peaks[(processors, interval)] = stats
    return rows, peaks


def test_memory_ablation(benchmark):
    rows, peaks = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        ["P", "ckpt every", "peak speculative", "snapshots",
         "coast-forward", "makespan"],
        rows,
        title="A4 — Memory of optimism vs processors "
              "(IIR gate, optimistic)")
    emit("a4_memory", table)

    # The paper's observation: speculative memory grows with P.
    assert peaks[(14, 1)].peak_speculative > \
        peaks[(2, 1)].peak_speculative
    # Interval checkpointing cuts snapshot traffic.
    assert peaks[(14, 8)].snapshots < peaks[(14, 1)].snapshots
