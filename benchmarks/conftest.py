"""Shared machinery for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index).  Results are printed
(visible with ``pytest -s``) *and* written to ``benchmarks/results/`` so
the artifacts survive output capturing.
"""

import os
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Paper platform: the SGI Challenge had (up to) 14 processors; sweeps
#: use these counts.  Override with REPRO_BENCH_FULL=0 for a quick pass.
FULL = os.environ.get("REPRO_BENCH_FULL", "1") != "0"
PROCESSOR_SWEEP = [1, 2, 4, 8, 12, 14] if FULL else [1, 4, 14]
PAPER_P = 14
PROTOCOLS = ["optimistic", "conservative", "mixed", "dynamic"]


def emit(name: str, text: str) -> None:
    """Print a result artifact and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}", file=sys.stderr)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
