"""E3 / Fig. 10 — Speedup for the DCT processor (gate level).

Regenerates the paper's Fig. 10: speedup vs processor count for the
gate-level DCT MAC array.  This is the workload where the paper reports
its most impressive dynamic-configuration result ("the speedup for the
self-adapting dynamic configuration is twice the speedup of other
configurations"); our machine reproduces the weaker but robust form of
that claim — dynamic matches the best configuration — and the near-
linear scaling of the array (its cells are almost independent, coupled
only through the sample/coefficient broadcasts).
"""

from conftest import PROCESSOR_SWEEP, PROTOCOLS, emit

from repro.analysis import ascii_chart, measure_speedups, speedup_table
from repro.circuits import build_dct


def build():
    return build_dct().design


def run_sweep():
    return measure_speedups(build, PROTOCOLS, PROCESSOR_SWEEP,
                            max_steps=100_000_000)


def test_fig10_dct_speedup(benchmark):
    curves = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lp_count = build_dct(extra_cycles=0).lp_count
    table = speedup_table(
        curves, f"Fig. 10 — Speedup for DCT Processor (Gate), "
                f"{lp_count} LPs")
    chart = ascii_chart(curves, "Fig. 10 (ASCII rendering)")
    stats_lines = ["", "protocol stats at max P:"]
    for protocol, curve in curves.items():
        outcome = curve.points[-1].outcome
        stats_lines.append(f"  {protocol:13s} {outcome.stats.summary()}")
    emit("fig10_dct_speedup", table + "\n\n" + chart
         + "\n".join(stats_lines))

    # Near-linear scaling for the best configuration.
    best = max(curves[p].speedups()[-1] for p in PROTOCOLS)
    max_p = curves["optimistic"].processors()[-1]
    assert best > 0.55 * max_p
    # Dynamic tracks the best configuration.
    best_static = max(curves[p].speedups()[-1]
                      for p in ("optimistic", "conservative", "mixed"))
    assert curves["dynamic"].speedups()[-1] >= 0.8 * best_static
