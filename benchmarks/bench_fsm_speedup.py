"""E1 / Fig. 6 — Speedup for the FSM (0 delay).

Regenerates the paper's Fig. 6: speedup vs processor count for the
553-LP zero-delay finite state machine under the four synchronization
configurations.  The zero-delay next-state logic makes every clock edge
a cascade of delta cycles — the workload that breaks PDES protocols
without the paper's (pt, lt) tie-breaking, and the one where dense
simultaneous events stress the protocols hardest.
"""

from conftest import PROCESSOR_SWEEP, PROTOCOLS, emit

from repro.analysis import ascii_chart, measure_speedups, speedup_table
from repro.circuits import build_fsm

CYCLES = 10


def build():
    return build_fsm(cycles=CYCLES).design


def run_sweep():
    return measure_speedups(build, PROTOCOLS, PROCESSOR_SWEEP,
                            max_steps=50_000_000)


def test_fig6_fsm_speedup(benchmark):
    curves = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = speedup_table(curves, "Fig. 6 — Speedup for FSM (0 Delay), "
                                  f"{build_fsm(cycles=1).lp_count} LPs")
    chart = ascii_chart(curves, "Fig. 6 (ASCII rendering)")
    stats_lines = ["", "protocol stats at max P:"]
    for protocol, curve in curves.items():
        outcome = curve.points[-1].outcome
        stats_lines.append(f"  {protocol:13s} {outcome.stats.summary()}")
    emit("fig6_fsm_speedup", table + "\n\n" + chart
         + "\n".join(stats_lines))

    # Shape assertions (the reproduction claims):
    for protocol in PROTOCOLS:
        speedups = curves[protocol].speedups()
        # Meaningful parallel speedup at the paper's processor count.
        assert speedups[-1] > 2.0, (protocol, speedups)
    # The dynamic self-adapting configuration tracks the best static one.
    best_static = max(curves[p].speedups()[-1]
                      for p in ("optimistic", "conservative", "mixed"))
    assert curves["dynamic"].speedups()[-1] >= 0.8 * best_static
