"""The distributed VHDL kernel: run a Design under any engine.

This is the top of the public API: build a :class:`~repro.vhdl.design.Design`,
then ``simulate(design, until=...)`` with the engine and protocol of your
choice.  Every engine produces the same committed results; they differ in
how they synchronize (and, on the modelled parallel machine, in the
parallel run time they report).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.sequential import SequentialSimulator
from ..core.stats import RunStats
from ..core.vtime import VirtualTime
from .design import Design


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    stats: RunStats
    #: Signal name -> committed effective-value change history.
    traces: Dict[str, List[Tuple[VirtualTime, Any]]]
    #: Signal name -> final effective value.
    finals: Dict[str, Any]
    #: Signal name -> declared initial value (time-zero state for
    #: waveform rendering/VCD).
    initials: Dict[str, Any] = None  # type: ignore[assignment]
    #: Modelled parallel run time in cost units (None for sequential).
    parallel_time: Optional[float] = None
    #: Number of processors used (1 for sequential).
    processors: int = 1

    def trace(self, name: str) -> List[Tuple[VirtualTime, Any]]:
        return self.traces[name]

    def value(self, name: str) -> Any:
        return self.finals[name]

    def waveform_chars(self, name: str) -> str:
        """Compact rendering of a scalar trace, e.g. ``"01010"``."""
        return "".join(getattr(v, "char", str(v))
                       for _, v in self.traces[name])


def _collect(design: Design, stats: RunStats,
             parallel_time: Optional[float] = None,
             processors: int = 1) -> SimulationResult:
    traces = {s.name: s.trace() for s in design.signals if s.traced}
    finals = {s.name: s.effective for s in design.signals}
    initials = {s.name: s.initial for s in design.signals}
    return SimulationResult(stats=stats, traces=traces, finals=finals,
                            initials=initials,
                            parallel_time=parallel_time,
                            processors=processors)


def _claim(design) -> Design:
    """Claim a single-use runtime for this run.

    A :class:`~repro.vhdl.artifact.DesignArtifact` is immutable and
    reusable: every call instantiates a *fresh* Design, so the same
    artifact may be simulated any number of times.  A plain ``Design``
    carries mutable LP state and is single-use — a second run raises
    (snapshot to an artifact via ``design.artifact()`` to re-run).
    """
    if hasattr(design, "instantiate") and hasattr(design, "content_hash"):
        design = design.instantiate()
    if getattr(design, "_simulated", False):
        raise RuntimeError(
            f"design {design.name!r} was already simulated; a Design is "
            f"single-use (LP state is mutated by simulation).  Snapshot "
            f"it with design.artifact() and instantiate() a fresh "
            f"runtime per run, or rebuild the Design.")
    design._simulated = True
    return design


#: Process execution modes selectable by :func:`simulate` and
#: :func:`simulate_parallel`:
#:
#: * ``"interp"``   — tree-walking interpretation of VHDL process
#:   bodies (the reference semantics);
#: * ``"compiled"`` — processes lowered to flat closure programs by
#:   :mod:`repro.vhdl.compile` (bit-identical results, lower per-event
#:   cost).
EXEC_MODES = ("interp", "compiled")


def _lower(design: Design, exec_mode: str) -> None:
    """Apply the selected execution mode to ``design``'s processes."""
    if exec_mode not in EXEC_MODES:
        raise ValueError(f"unknown exec mode {exec_mode!r}; pick from "
                         f"{EXEC_MODES}")
    if exec_mode == "compiled":
        from .compile import lower_design
        lower_design(design)


def simulate(design, until: Optional[int] = None,
             max_events: Optional[int] = None,
             shuffle_ties=None, exec_mode: str = "interp") -> SimulationResult:
    """Run ``design`` on the sequential reference engine.

    ``until`` is in femtoseconds; events *at* that time still execute.
    ``shuffle_ties`` randomizes the order of simultaneous events (the
    results must not depend on it; see the property tests).
    ``exec_mode`` selects interpreted or compiled process bodies (see
    :data:`EXEC_MODES`); both commit bit-identical results.

    ``design`` may also be a :class:`~repro.vhdl.artifact.DesignArtifact`
    — a fresh runtime is instantiated per call, so artifacts are
    re-runnable.
    """
    design = _claim(design)
    _lower(design, exec_mode)
    model = design.elaborate()
    sim = SequentialSimulator(model, shuffle_ties=shuffle_ties)
    stats = sim.run(until=until, max_events=max_events)
    return _collect(design, stats)


#: Parallel execution backends selectable by :func:`simulate_parallel`.
BACKENDS = ("model", "threads", "procs", "dist")


def simulate_parallel(design, processors: int,
                      until: Optional[int] = None,
                      protocol: str = "dynamic",
                      backend: str = "model",
                      exec_mode: str = "interp",
                      **machine_kwargs: Any) -> SimulationResult:
    """Run ``design`` on a parallel backend.

    ``protocol`` selects the synchronization configuration:

    * ``"optimistic"``   — every LP runs Time Warp;
    * ``"conservative"`` — every LP blocks until safe (lookahead-free,
      with global deadlock recovery);
    * ``"mixed"``        — the paper's static heuristic: clocked/register
      LPs conservative, the rest optimistic;
    * ``"dynamic"``      — LPs self-adapt between the modes at runtime
      (``"model"`` backend only).

    ``backend`` selects the machine the protocols execute on:

    * ``"model"``   — the deterministic modelled multiprocessor; its
      ``parallel_time`` is the modelled makespan, and speedup against a
      1-processor run reproduces the paper's speedup figures;
    * ``"threads"`` — real concurrency on OS threads (shared memory);
    * ``"procs"``   — real parallelism on ``multiprocessing`` workers
      with batched IPC and token-ring GVT; the only backend that can
      show wall-clock speedup under CPython's GIL;
    * ``"dist"``    — the same worker loop on standalone processes
      over asyncio/TCP (same host or remote via ``hosts=[...]``); the
      distributed tier of the paper's title.

    All backends commit identical results; they differ in how they
    synchronize and in which cost figure (modelled makespan vs. wall
    clock) is meaningful.  ``exec_mode`` selects interpreted or
    compiled process bodies (see :data:`EXEC_MODES`); compiled frames
    are picklable, so rollback and procs checkpointing work unchanged.

    ``design`` may also be a :class:`~repro.vhdl.artifact.DesignArtifact`
    (a fresh runtime is instantiated per call).  On the procs backend
    ``start_method="fork"|"spawn"|"forkserver"`` (via
    ``machine_kwargs``) selects how workers are started; under spawn
    the workers rebuild their machines from the pickled pristine
    model instead of fork-inheriting it.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; pick from "
                         f"{BACKENDS}")
    design = _claim(design)
    _lower(design, exec_mode)
    model = design.elaborate()
    if backend == "model":
        from ..parallel.machine import run_parallel
        outcome = run_parallel(model, processors=processors, until=until,
                               protocol=protocol, **machine_kwargs)
        return _collect(design, outcome.stats,
                        parallel_time=outcome.makespan,
                        processors=processors)
    if backend == "threads":
        from ..parallel.threads import run_threaded
        outcome = run_threaded(model, processors=processors, until=until,
                               protocol=protocol, **machine_kwargs)
        return _collect(design, outcome.stats, processors=processors)
    if backend == "dist":
        from ..parallel.dist import run_dist
        outcome = run_dist(model, processors=processors, until=until,
                           protocol=protocol, **machine_kwargs)
        return _collect(design, outcome.stats, processors=processors)
    from ..parallel.procs import run_procs
    outcome = run_procs(model, processors=processors, until=until,
                        protocol=protocol, **machine_kwargs)
    return _collect(design, outcome.stats, processors=processors)
