"""Design builder: construct a flattened VHDL model programmatically.

After elaboration the VHDL hierarchy is a bi-partite graph of processes
interconnected by signals (paper Sec. 3).  :class:`Design` is the builder
for that graph.  It registers each signal and each process as an LP in a
:class:`~repro.core.model.Model`, declares the channels (signal -> every
reader process, process -> every driven signal), seeds the processes'
local copies with the signals' initial values, and checks the wiring.

The same ``Design`` can then be run by any engine — sequential or any of
the parallel protocols — via :mod:`repro.vhdl.kernel`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from ..core.model import Model, SyncMode
from .process import (ClockGeneratorBody, GeneratorBody, ProcessBody,
                      ProcessLP, sid, sids)
from .signal import SignalLP
from .values import SL_0, SL_1, sl


class Design:
    """A flattened VHDL design under construction."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.model = Model()
        self.signals: List[SignalLP] = []
        self.processes: List[ProcessLP] = []
        self._by_name: Dict[str, Any] = {}
        self._elaborated = False

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def signal(self, name: str, initial: Any,
               resolution: Optional[Callable] = None,
               traced: bool = False) -> SignalLP:
        """Declare a signal; returns its LP (usable as a handle)."""
        self._check_name(name)
        lp = SignalLP(name, initial, resolution, traced)
        self.model.add_lp(lp)
        self.signals.append(lp)
        self._by_name[name] = lp
        return lp

    def signal_vector(self, name: str, width: int, initial=None,
                      traced: bool = False) -> List[SignalLP]:
        """Declare ``width`` scalar signals ``name[i]`` (bit-blasted bus).

        Gate-level netlists use individual wires per bit, which is also
        what gives the paper its large LP counts.
        """
        if initial is None:
            initial = [SL_0] * width
        return [self.signal(f"{name}[{i}]", sl(initial[i]), traced=traced)
                for i in range(width)]

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def process(self, name: str, body: ProcessBody,
                reads: Optional[Iterable[Any]] = None,
                drives: Optional[Iterable[Any]] = None,
                mode: SyncMode = SyncMode.OPTIMISTIC) -> ProcessLP:
        """Declare a process with the given body.

        ``reads``/``drives`` may be omitted when the body declares its own
        wiring (combinational and clocked bodies do); generator bodies
        must wire explicitly.  Non-checkpointable bodies are forced into
        conservative mode regardless of ``mode``.
        """
        self._check_name(name)
        read_ids = sids(reads) if reads is not None else body.reads()
        drive_ids = sids(drives) if drives is not None else body.drives()
        if read_ids is None or drive_ids is None:
            raise ValueError(
                f"process {name}: body does not declare its wiring; "
                f"pass reads=/drives= explicitly")
        if not body.checkpointable:
            mode = SyncMode.CONSERVATIVE
        lp = ProcessLP(name, body)
        self.model.add_lp(lp, mode)
        self.processes.append(lp)
        self._by_name[name] = lp
        for signal_id in read_ids:
            signal = self._signal_by_id(signal_id)
            signal.add_reader(lp.lp_id)
            lp.add_input(signal_id, signal.initial)
            self.model.connect(signal, lp)
        # NOTE: a gate's propagation delay is deliberately NOT declared
        # as channel lookahead.  The message on the process->signal
        # channel is the *assignment* event, which arrives one phase
        # after the triggering update; the delay only matures inside the
        # signal LP's projected waveform.  Promising the full delay on
        # the channel would over-promise and break conservative safety.
        for signal_id in drive_ids:
            signal = self._signal_by_id(signal_id)
            signal.add_source(lp.lp_id)
            self.model.connect(lp, signal)
        return lp

    def clock(self, name: str, signal: Any, period_fs: int, cycles: int,
              low=SL_0, high=SL_1,
              mode: SyncMode = SyncMode.CONSERVATIVE) -> ProcessLP:
        """A free-running clock generator driving ``signal``.

        Defaults to conservative mode: the paper's mixed heuristic keeps
        the very persistent clock conservative.
        """
        if period_fs % 2:
            raise ValueError("clock period must be an even number of fs")
        body = ClockGeneratorBody(sid(signal), period_fs // 2, cycles,
                                  low, high)
        return self.process(name, body, mode=mode)

    def stimulus(self, name: str,
                 gen_fn: Callable, reads: Iterable[Any] = (),
                 drives: Iterable[Any] = ()) -> ProcessLP:
        """A generator-based testbench process (conservative-only)."""
        return self.process(name, GeneratorBody(gen_fn),
                            reads=reads, drives=drives,
                            mode=SyncMode.CONSERVATIVE)

    # ------------------------------------------------------------------
    # Elaboration & queries
    # ------------------------------------------------------------------
    def elaborate(self) -> Model:
        """Finalize the design; validates wiring and returns the model.

        Single-use: elaboration hands the mutable LP graph to an
        engine, so a second ``elaborate()`` on the same ``Design``
        would silently reuse mutated LP state (stale projected
        waveforms, consumed generator bodies).  Re-running a design
        means re-instantiating it — snapshot it with
        :meth:`artifact` and call ``instantiate()`` per run.
        """
        if self._elaborated:
            raise RuntimeError(
                f"design {self.name!r} was already elaborated; a Design "
                f"carries mutable LP state and is single-use.  Snapshot "
                f"it with design.artifact() and instantiate() a fresh "
                f"runtime per run.")
        for signal in self.signals:
            if not signal.drivers and signal.readers:
                # A read-only signal simply keeps its initial value; that
                # is legal VHDL (an undriven input), not an error.
                pass
        self.model.validate()
        self._elaborated = True
        return self.model

    def artifact(self, content_hash: Optional[str] = None,
                 meta: Optional[Dict[str, Any]] = None):
        """Snapshot this design into an immutable, picklable
        :class:`~repro.vhdl.artifact.DesignArtifact`.

        The artifact content-addresses the LP graph (structural
        manifest hash unless ``content_hash`` is given) and its
        ``instantiate()`` yields a fresh mutable runtime per run —
        the supported way to simulate one design many times.
        """
        from .artifact import DesignArtifact
        return DesignArtifact.from_design(self, content_hash=content_hash,
                                          meta=meta)

    def __getitem__(self, name: str):
        return self._by_name[name]

    def _signal_by_id(self, signal_id: int) -> SignalLP:
        lp = self.model.lp(signal_id)
        if not isinstance(lp, SignalLP):
            raise TypeError(f"LP {signal_id} ({lp.name}) is not a signal")
        return lp

    def _check_name(self, name: str) -> None:
        if name in self._by_name:
            raise ValueError(f"duplicate name {name!r} in design {self.name}")

    # Statistics used by the evaluation section (circuit size table).
    @property
    def lp_count(self) -> int:
        return len(self.model)

    def size_report(self) -> Dict[str, int]:
        return {
            "signals": len(self.signals),
            "processes": len(self.processes),
            "lps": self.lp_count,
            "channels": len(self.model.channels),
        }
