"""VHDL signals as logical processes.

VHDL signals are not simple channels (paper Sec. 3.1): a signal may have
multiple sources, each with a *driver* holding a projected output waveform,
and a resolution function combining the driving values.  In a distributed
simulation there is no shared memory to hold the signal, so the paper maps
**each signal to its own LP**: the signal LP owns one driver per source and
broadcasts new effective values to every process that reads the signal.

The signal LP implements three phases of the distributed VHDL cycle:

* **Assign** (``lt % 3 == 0``): a ``SIGNAL_ASSIGN`` event from a process LP
  updates the corresponding driver's projected waveform according to the
  delay mechanism (transport / inertial with pulse rejection), and for each
  new transaction schedules an internal ``SIGNAL_DRIVE`` event for the
  *Driving value* phase of the cycle in which the transaction matures.
* **Driving value** (``lt % 3 == 1``): matured transactions update the
  drivers' current driving values.  If the signal is resolved, an internal
  ``SIGNAL_RESOLVE`` event is scheduled for the next phase (another driver
  may mature a transaction at this same virtual time, so resolution must
  wait until all of them have).  A single-source signal short-circuits:
  its driving value *is* the effective value and is broadcast directly.
* **Effective value** (``lt % 3 == 2``): the resolution function is applied
  over all driving values and, if the result differs from the current
  effective value, it is broadcast to all reader processes.

Because duplicate internal events at one virtual time are idempotent
(maturing no transaction, or resolving to an unchanged value), the signal
LP never needs to deduplicate its self-schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.event import Event, EventKind
from ..core.lp import LogicalProcess
from ..core.vtime import PHASE_ASSIGN, PHASE_DRIVING, VirtualTime
from .values import StdLogic, resolve


@dataclass(frozen=True)
class Assignment:
    """Payload of a ``SIGNAL_ASSIGN`` event.

    ``waveform`` is the sequence of ``(value, after_fs)`` elements of the
    signal assignment statement, in increasing ``after_fs`` order.
    ``transport`` selects the delay mechanism; ``reject`` is the inertial
    pulse rejection limit in fs (``None`` means the default: the delay of
    the first waveform element).
    """

    waveform: Tuple[Tuple[Any, int], ...]
    transport: bool = False
    reject: Optional[int] = None


@dataclass
class _Transaction:
    """A pending transaction in a driver's projected output waveform."""

    pt: int
    value: Any

    def key(self) -> int:
        return self.pt


class Driver:
    """One source's contribution to a signal: current value + waveform."""

    __slots__ = ("current", "waveform")

    def __init__(self, initial: Any) -> None:
        self.current = initial
        self.waveform: List[_Transaction] = []

    def mature(self, pt: int) -> bool:
        """Apply all transactions due at physical time ``pt``.

        Returns True if any transaction matured (whether or not the
        driving value actually changed — VHDL considers the driver
        *active* either way).
        """
        matured = False
        while self.waveform and self.waveform[0].pt <= pt:
            self.current = self.waveform.pop(0).value
            matured = True
        return matured

    def next_transaction_time(self) -> Optional[int]:
        return self.waveform[0].pt if self.waveform else None

    def update(self, now_pt: int, assignment: Assignment) -> List[int]:
        """Fold an assignment into the projected waveform (LRM marking).

        Returns the physical times of the new transactions, so the signal
        LP can schedule the matching ``SIGNAL_DRIVE`` events.
        """
        if not assignment.waveform:
            return []
        new = [_Transaction(now_pt + after, value)
               for value, after in assignment.waveform]
        first_time = new[0].pt
        # 1. Old transactions at or after the first new one are deleted.
        kept = [t for t in self.waveform if t.pt < first_time]
        if not assignment.transport:
            # 2. Inertial: old transactions inside the rejection window
            #    (first_time - reject, first_time) are deleted unless they
            #    form a run, immediately preceding the new transaction,
            #    whose values all equal the first new value.
            reject = assignment.reject
            if reject is None:
                reject = assignment.waveform[0][1]
            window_start = first_time - reject
            survivors: List[_Transaction] = [
                t for t in kept if t.pt <= window_start]
            window = [t for t in kept if t.pt > window_start]
            run: List[_Transaction] = []
            for t in reversed(window):
                if t.value == new[0].value:
                    run.append(t)
                else:
                    break
            survivors.extend(reversed(run))
            kept = survivors
        self.waveform = sorted(kept + new, key=_Transaction.key)
        return [t.pt for t in new]


def resolve_values(values: Sequence[Any],
                   resolution: Optional[Callable[[Sequence[Any]], Any]],
                   ) -> Any:
    """Combine driving values into an effective value.

    With an explicit resolution function, defer to it.  Otherwise use the
    IEEE 1164 resolution, element-wise for vectors.  A single driver with
    no resolution function passes through unchanged.
    """
    if resolution is not None:
        return resolution(values)
    if len(values) == 1:
        return values[0]
    first = values[0]
    if isinstance(first, StdLogic):
        return resolve(values)
    if isinstance(first, tuple):
        width = len(first)
        return tuple(resolve([v[i] for v in values]) for i in range(width))
    raise TypeError(
        f"signal with {len(values)} drivers of unresolvable type "
        f"{type(first).__name__}; provide a resolution function")


class SignalLP(LogicalProcess):
    """The LP for one VHDL signal (scalar or vector)."""

    state_attrs = ("drivers", "effective", "history")
    #: An assignment arriving at phase 3k produces effective-value
    #: broadcasts no earlier than phase 3k+2: at least one phase of
    #: reaction lookahead (in fact two, but one is what every kernel LP
    #: can promise uniformly).
    react_lookahead_phases = 1

    def __init__(self, name: str, initial: Any,
                 resolution: Optional[Callable] = None,
                 traced: bool = False) -> None:
        super().__init__(name)
        self.initial = initial
        self.resolution = resolution
        self.traced = traced
        #: Reader process LP ids (fan-out); wired by the kernel.
        self.readers: List[int] = []
        #: source LP id -> Driver; created lazily per registered source.
        self.drivers: Dict[int, Driver] = {}
        self.effective = initial
        #: Committed effective-value changes [(vt, value)] when traced.
        self.history: List[Tuple[VirtualTime, Any]] = []

    # ------------------------------------------------------------------
    # Wiring (done at elaboration, before simulation starts)
    # ------------------------------------------------------------------
    def add_source(self, src_lp_id: int) -> None:
        """Declare that process ``src_lp_id`` drives this signal."""
        if src_lp_id not in self.drivers:
            self.drivers[src_lp_id] = Driver(self.initial)

    def add_reader(self, dst_lp_id: int) -> None:
        if dst_lp_id not in self.readers:
            self.readers.append(dst_lp_id)

    @property
    def is_resolved(self) -> bool:
        """Whether resolution must run in a separate phase."""
        return self.resolution is not None or len(self.drivers) > 1

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, event: Event) -> None:
        if event.kind is EventKind.SIGNAL_ASSIGN:
            self._on_assign(event)
        elif event.kind is EventKind.SIGNAL_DRIVE:
            self._on_drive()
        elif event.kind is EventKind.SIGNAL_RESOLVE:
            self._on_resolve()
        else:
            raise ValueError(
                f"signal {self.name} received unexpected {event.kind}")

    def _on_assign(self, event: Event) -> None:
        """Assign phase: fold the assignment into the source's driver."""
        driver = self.drivers.get(event.src)
        if driver is None:
            raise KeyError(
                f"{event.src} is not a declared source of signal "
                f"{self.name}")
        for pt in driver.update(self.now.pt, event.payload):
            self.schedule(self._drive_time(pt), EventKind.SIGNAL_DRIVE)

    def _drive_time(self, pt: int) -> VirtualTime:
        """Virtual time of the Driving phase in which ``pt`` matures."""
        if pt == self.now.pt:
            return self.now.with_phase(PHASE_DRIVING) \
                if self.now.lt % 3 == PHASE_ASSIGN else self.now.next_phase()
        return self.now.advance(pt - self.now.pt, PHASE_DRIVING)

    def _on_drive(self) -> None:
        """Driving phase: mature transactions due now."""
        any_active = False
        for driver in self.drivers.values():
            if driver.mature(self.now.pt):
                any_active = True
        if not any_active:
            return  # duplicate drive event; nothing due at this time
        if self.is_resolved:
            # Another driver may mature a transaction at this same virtual
            # time; resolution must wait for all of them (paper Sec. 3.3).
            self.schedule(self.now.next_phase(), EventKind.SIGNAL_RESOLVE)
        else:
            self._publish(next(iter(self.drivers.values())).current,
                          self.now.next_phase())

    def _on_resolve(self) -> None:
        """Effective phase: resolve all drivers and broadcast."""
        driving = [d.current for d in self.drivers.values()]
        value = resolve_values(driving, self.resolution)
        self._publish(value, self.now)

    def _publish(self, value: Any, when: VirtualTime) -> None:
        """Broadcast a new effective value if it changed (a VHDL *event*)."""
        if value == self.effective:
            return
        self.effective = value
        if self.traced:
            self.history.append((when, value))
        for reader in self.readers:
            self.send(reader, when, EventKind.SIGNAL_UPDATE,
                      (self.lp_id, value))

    # ------------------------------------------------------------------
    # Fast checkpointing.  Values are immutable (interned StdLogic or
    # tuples), so shallow copies of the containers are deep enough; the
    # history is append-only, so the snapshot stores just its length and
    # restore truncates.  This keeps Time Warp's per-event snapshot cost
    # proportional to the number of drivers, not to the trace length.
    # ------------------------------------------------------------------
    def snapshot(self) -> Any:
        return (
            {src: (driver.current,
                   tuple((t.pt, t.value) for t in driver.waveform))
             for src, driver in self.drivers.items()},
            self.effective,
            len(self.history),
        )

    def restore(self, snap: Any) -> None:
        driver_state, effective, history_len = snap
        for src, (current, waveform) in driver_state.items():
            driver = self.drivers[src]
            driver.current = current
            driver.waveform = [_Transaction(pt, value)
                               for pt, value in waveform]
        self.effective = effective
        del self.history[history_len:]

    def durable_state(self) -> Any:
        # The cheap snapshot keeps only the history *length* (truncate-
        # on-restore works because rollback restores into the same live
        # list).  A cross-process restore starts from an empty list, so
        # the durable image must carry the entries themselves.
        return (self.snapshot(), self._seq, list(self.history))

    def restore_durable(self, state: Any) -> None:
        snap, seq, history = state
        self.history = list(history)
        self.restore(snap)  # snapshot length == len(history): keeps all
        self._seq = max(self._seq, seq)

    def trace(self) -> List[Tuple[VirtualTime, Any]]:
        """The committed effective-value change history (when traced)."""
        return list(self.history)
