"""The distributed VHDL kernel: values, signals, processes, designs."""

from .artifact import (ArtifactError, DesignArtifact, artifact_key,
                       build_artifact, snapshot_design)
from .cache import ElabCache, cached_elaborate
from .compile import CompiledBody, Frame, lower_design
from .design import Design
from .kernel import (EXEC_MODES, SimulationResult, simulate,
                     simulate_parallel)
from .process import (ClockedBody, ClockGeneratorBody, CombinationalBody,
                      GeneratorBody, ProcessAPI, ProcessBody, ProcessLP,
                      Wait, sid, sids)
from .signal import Assignment, Driver, SignalLP, resolve_values
from .values import (SL_0, SL_1, SL_DASH, SL_H, SL_L, SL_U, SL_W, SL_X,
                     SL_Z, StdLogic, resolve, sl, slv, vector_to_int,
                     vector_to_str)

__all__ = [
    "Design", "SimulationResult", "simulate", "simulate_parallel",
    "ArtifactError", "DesignArtifact", "artifact_key", "build_artifact",
    "snapshot_design", "ElabCache", "cached_elaborate",
    "CompiledBody", "Frame", "lower_design", "EXEC_MODES",
    "ClockedBody", "ClockGeneratorBody", "CombinationalBody",
    "GeneratorBody", "ProcessAPI", "ProcessBody", "ProcessLP", "Wait",
    "sid", "sids",
    "Assignment", "Driver", "SignalLP", "resolve_values",
    "StdLogic", "resolve", "sl", "slv", "vector_to_int", "vector_to_str",
    "SL_U", "SL_X", "SL_0", "SL_1", "SL_Z", "SL_W", "SL_L", "SL_H",
    "SL_DASH",
]
