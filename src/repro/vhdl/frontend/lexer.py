"""Lexer for the VHDL subset.

The paper's toolchain compiled VHDL source into C classes over the kernel
library; ours compiles VHDL source into kernel objects (signal LPs plus
interpreted process bodies).  This module tokenizes VHDL text: identifiers
(case-insensitive), reserved words, character/string/numeric literals,
physical literals with time units, compound delimiters, and ``--``
comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ...core.vtime import parse_time

KEYWORDS = frozenset("""
    abs access after alias all and architecture array assert attribute
    begin block body buffer bus case component configuration constant
    disconnect downto else elsif end entity exit file for function
    generate generic group guarded if impure in inertial inout is label
    library linkage literal loop map mod nand new next nor not null of
    on open or others out package port postponed procedure process pure
    range record register reject rem report return rol ror select
    severity signal shared sla sll sra srl subtype then to transport
    type unaffected units until use variable wait when while with xnor
    xor
""".split())

#: Multi-character delimiters, longest first.
COMPOUND = ("=>", "<=", ":=", ">=", "/=", "**", "<>")

SINGLE = "&'()*+,-./:;<=>|[]"

TIME_UNITS = frozenset({"fs", "ps", "ns", "us", "ms", "sec"})


class LexError(SyntaxError):
    """Bad character or malformed literal, with line information."""


@dataclass(frozen=True)
class Token:
    kind: str       # 'id', 'kw', 'int', 'real', 'time', 'char', 'string',
                    # 'bitstring', 'delim', 'eof'
    value: object   # normalized value (lower-cased for id/kw)
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line})"


def tokenize(text: str) -> List[Token]:
    """Tokenize VHDL source, raising LexError with position on failure."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(text)

    def error(message: str) -> LexError:
        return LexError(f"line {line}: {message}")

    while i < n:
        ch = text[i]
        # Whitespace ------------------------------------------------------
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        # Comments ---------------------------------------------------------
        if text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_col = column
        # Identifiers / keywords / physical literals are handled below.
        if ch.isalpha():
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j].lower()
            kind = "kw" if word in KEYWORDS else "id"
            tokens.append(Token(kind, word, line, start_col))
            column += j - i
            i = j
            continue
        # Numbers (integer, real, physical with time unit) -----------------
        if ch.isdigit():
            j = i
            while j < n and (text[j].isdigit() or text[j] == "_"):
                j += 1
            is_real = False
            if j < n and text[j] == "." and j + 1 < n and \
                    text[j + 1].isdigit():
                is_real = True
                j += 1
                while j < n and (text[j].isdigit() or text[j] == "_"):
                    j += 1
            number = text[i:j].replace("_", "")
            column += j - i
            i = j
            # Optional physical unit (time) after whitespace.
            k = i
            while k < n and text[k] in " \t":
                k += 1
            m = k
            while m < n and text[m].isalpha():
                m += 1
            unit = text[k:m].lower()
            if unit in TIME_UNITS:
                value = parse_time(float(number) if is_real
                                   else int(number), unit)
                tokens.append(Token("time", value, line, start_col))
                column += m - i
                i = m
                continue
            if is_real:
                tokens.append(Token("real", float(number), line, start_col))
            else:
                tokens.append(Token("int", int(number), line, start_col))
            continue
        # Character literal ('0') vs attribute tick (sig'event) ------------
        if ch == "'":
            # A tick directly after an identifier or ')' is an attribute
            # selector; anywhere else, 'x' is a character literal.
            prev_is_name = bool(tokens) and (
                tokens[-1].kind == "id"
                or (tokens[-1].kind == "delim" and tokens[-1].value == ")"))
            if i + 2 < n and text[i + 2] == "'" and not prev_is_name:
                tokens.append(Token("char", text[i + 1], line, start_col))
                i += 3
                column += 3
                continue
            tokens.append(Token("delim", "'", line, start_col))
            i += 1
            column += 1
            continue
        # String / bit-string literals -------------------------------------
        if ch == '"':
            j = i + 1
            buf = []
            while j < n and text[j] != '"':
                buf.append(text[j])
                j += 1
            if j >= n:
                raise error("unterminated string literal")
            tokens.append(Token("string", "".join(buf), line, start_col))
            column += j + 1 - i
            i = j + 1
            continue
        # Compound delimiters ----------------------------------------------
        matched = False
        for comp in COMPOUND:
            if text.startswith(comp, i):
                tokens.append(Token("delim", comp, line, start_col))
                i += len(comp)
                column += len(comp)
                matched = True
                break
        if matched:
            continue
        if ch in SINGLE:
            tokens.append(Token("delim", ch, line, start_col))
            i += 1
            column += 1
            continue
        raise error(f"unexpected character {ch!r}")
    tokens.append(Token("eof", None, line, column))
    return tokens
