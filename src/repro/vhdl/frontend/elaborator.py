"""Elaboration: VHDL source -> flattened kernel Design.

"After elaboration, the VHDL hierarchy is flattened into a graph of
processes interconnected by signals" (paper Sec. 3).  This module does
exactly that: it resolves the top entity, recursively instantiates
components, creates one :class:`~repro.vhdl.signal.SignalLP` per signal
and one :class:`~repro.vhdl.process.ProcessLP` per process statement
(concurrent assignments become implicit processes), and wires the
bi-partite LP graph.

Mode heuristic (the paper's *mixed* configuration): processes containing
a clock-edge test (``rising_edge`` / ``falling_edge`` / ``'event``) are
tagged conservative — "synchronous components are mapped as conservative
... the clock signal is very persistent"; everything else defaults to
optimistic.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from ...core.model import SyncMode
from ..design import Design
from ..process import ProcessLP
from . import ast
from .interp import (Env, InterpretedBody, SignalRef, _eval_const,
                     coerce_value, resolve_type)
from .parser import parse


class ElaborationError(RuntimeError):
    pass


def elaborate(source: Union[str, ast.DesignFile], top: str,
              generics: Optional[Dict[str, Any]] = None,
              traced: Union[bool, Tuple[str, ...]] = True,
              name: Optional[str] = None) -> Design:
    """Elaborate VHDL ``source`` with ``top`` as the root entity.

    ``generics`` overrides the top entity's generic defaults.  ``traced``
    selects which signals record their history: ``True`` (all), a tuple
    of hierarchical names, or ``False``.
    """
    design_file = parse(source) if isinstance(source, str) else source
    design = Design(name or f"vhdl_{top.lower()}")
    elab = _Elaborator(design_file, design, traced)
    elab.instantiate(top, prefix="", generic_overrides=generics or {},
                     port_bindings={})
    elab.mark_shared_signals()
    return design


class _Elaborator:
    def __init__(self, design_file: ast.DesignFile, design: Design,
                 traced) -> None:
        self.file = design_file
        self.design = design
        self.traced = traced
        self._anon = 0
        #: lp_id -> every SignalRef created for it (for the post-pass
        #: that flags multi-driver signals; see SignalRef.shared).
        self._refs: Dict[int, List[SignalRef]] = {}

    # ------------------------------------------------------------------
    def _is_traced(self, name: str) -> bool:
        if self.traced is True:
            return True
        if not self.traced:
            return False
        return name in self.traced

    def _fresh_label(self, prefix: str, base: str) -> str:
        self._anon += 1
        return f"{prefix}{base}{self._anon}"

    # ------------------------------------------------------------------
    def instantiate(self, entity_name: str, prefix: str,
                    generic_overrides: Dict[str, Any],
                    port_bindings: Dict[str, SignalRef]) -> None:
        """Create the LPs of one entity instance under ``prefix``."""
        entity = self.file.entity(entity_name)
        arch = self.file.architecture_of(entity_name)

        constants: Dict[str, Any] = {}
        for generic in entity.generics:
            if generic.name in generic_overrides:
                constants[generic.name] = generic_overrides[generic.name]
            elif generic.default is not None:
                constants[generic.name] = _eval_const(generic.default,
                                                      constants)
            else:
                raise ElaborationError(
                    f"{prefix}{entity_name}: generic "
                    f"{generic.name!r} has no value")

        signals: Dict[str, SignalRef] = {}

        # Ports: bound to parent signals, or created fresh at the top.
        for port in entity.ports:
            if port.name in port_bindings:
                signals[port.name] = port_bindings[port.name]
                continue
            vtype = resolve_type(port.type_mark,
                                 lambda e: _eval_const(e, constants))
            initial = vtype.default()
            if port.default is not None:
                initial = coerce_value(
                    _eval_const(port.default, constants, vtype), vtype)
            lp = self.design.signal(f"{prefix}{port.name}", initial,
                                    traced=self._is_traced(
                                        f"{prefix}{port.name}"))
            ref = SignalRef(lp.lp_id, vtype)
            self._refs.setdefault(lp.lp_id, []).append(ref)
            signals[port.name] = ref

        # Architecture declarations.
        components: Dict[str, ast.ComponentDecl] = {}
        for decl in arch.declarations:
            if isinstance(decl, ast.SignalDecl):
                vtype = resolve_type(decl.type_mark,
                                     lambda e: _eval_const(e, constants))
                for sig_name in decl.names:
                    initial = vtype.default()
                    if decl.initial is not None:
                        initial = coerce_value(
                            _eval_const(decl.initial, constants, vtype),
                            vtype)
                    full = f"{prefix}{sig_name}"
                    lp = self.design.signal(full, initial,
                                            traced=self._is_traced(full))
                    ref = SignalRef(lp.lp_id, vtype)
                    self._refs.setdefault(lp.lp_id, []).append(ref)
                    signals[sig_name] = ref
            elif isinstance(decl, ast.ConstantDecl):
                vtype = resolve_type(decl.type_mark,
                                     lambda e: _eval_const(e, constants))
                value = coerce_value(
                    _eval_const(decl.value, constants, vtype), vtype)
                for const_name in decl.names:
                    constants[const_name] = value
            elif isinstance(decl, ast.ComponentDecl):
                components[decl.name] = decl
            else:
                raise ElaborationError(
                    f"unsupported declaration {type(decl)}")

        env = Env(signals, constants)

        # Concurrent statements.
        for stmt in arch.statements:
            self._elaborate_statement(stmt, signals, constants,
                                      components, prefix)

    def _elaborate_statement(self, stmt, signals, constants, components,
                             prefix: str) -> None:
        env = Env(signals, constants)
        if isinstance(stmt, ast.ProcessStmt):
            self._make_process(stmt, env, prefix)
        elif isinstance(stmt, ast.ConcurrentAssign):
            process = _assign_to_process(stmt)
            self._make_process(process, env, prefix)
        elif isinstance(stmt, ast.Instantiation):
            self._make_instance(stmt, components, env, constants, prefix)
        elif isinstance(stmt, ast.GenerateFor):
            low = int(_eval_const(stmt.low, constants))
            high = int(_eval_const(stmt.high, constants))
            step = -1 if stmt.downto else 1
            values = range(low, high + step, step)
            for value in values:
                # The loop parameter is a constant in the replicated
                # scope; labels get an index suffix for uniqueness.
                child_constants = dict(constants)
                child_constants[stmt.var] = value
                child_prefix = f"{prefix}{stmt.label}({value})."
                for inner in stmt.statements:
                    self._elaborate_statement(inner, signals,
                                              child_constants,
                                              components, child_prefix)
        else:
            raise ElaborationError(
                f"unsupported concurrent statement {type(stmt)}")

    def mark_shared_signals(self) -> None:
        """Flag multi-driver signals so partial assignments use
        per-element 'Z' drivers (see SignalRef.shared)."""
        for signal in self.design.signals:
            if len(signal.drivers) > 1:
                for ref in self._refs.get(signal.lp_id, ()):
                    ref.shared = True

    # ------------------------------------------------------------------
    def _make_process(self, process: ast.ProcessStmt, env: Env,
                      prefix: str) -> ProcessLP:
        body = InterpretedBody(process, env)
        label = process.label or self._fresh_label(prefix, "proc")
        mode = (SyncMode.CONSERVATIVE if _is_synchronous(process)
                else SyncMode.OPTIMISTIC)
        full = f"{prefix}{process.label}" if process.label else label
        return self.design.process(full, body, mode=mode)

    def _make_instance(self, inst: ast.Instantiation,
                       components: Dict[str, ast.ComponentDecl],
                       env: Env, constants: Dict[str, Any],
                       prefix: str) -> None:
        # The component must correspond to an entity of the same name.
        try:
            entity = self.file.entity(inst.component)
        except KeyError:
            raise ElaborationError(
                f"instance {inst.label}: no entity named "
                f"{inst.component!r}")
        generic_overrides: Dict[str, Any] = {}
        names_by_pos = [g.name for g in entity.generics]
        for formal, actual in inst.generic_map:
            key = names_by_pos[int(formal)] if formal.isdigit() else formal
            generic_overrides[key] = _eval_const(actual, constants)
        port_bindings: Dict[str, SignalRef] = {}
        port_names = [p.name for p in entity.ports]
        for formal, actual in inst.port_map:
            key = port_names[int(formal)] if formal.isdigit() else formal
            if isinstance(actual, ast.Name) and \
                    actual.ident in env.signals:
                port_bindings[key] = env.signals[actual.ident]
            elif isinstance(actual, ast.Name) and actual.ident == "open":
                continue
            else:
                # Constant actual: materialize a driver-less signal
                # holding the value (it never changes).
                value = _eval_const(actual, constants)
                port = next(p for p in entity.ports if p.name == key)
                vtype = resolve_type(
                    port.type_mark,
                    lambda e: _eval_const(e, generic_overrides
                                          or constants))
                lp = self.design.signal(
                    f"{prefix}{inst.label}.{key}.const",
                    coerce_value(value, vtype))
                ref = SignalRef(lp.lp_id, vtype)
                self._refs.setdefault(lp.lp_id, []).append(ref)
                port_bindings[key] = ref
        self.instantiate(inst.component, prefix=f"{prefix}{inst.label}.",
                         generic_overrides=generic_overrides,
                         port_bindings=port_bindings)


def _is_synchronous(process: ast.ProcessStmt) -> bool:
    """Paper's mixed heuristic: edge-triggered processes -> conservative."""
    found = []

    def walk_expr(node):
        if isinstance(node, ast.Call) and node.func in (
                "rising_edge", "falling_edge"):
            found.append(True)
        elif isinstance(node, ast.Indexed):
            if isinstance(node.base, ast.Name) and node.base.ident in (
                    "rising_edge", "falling_edge"):
                found.append(True)
            walk_expr(node.base)
            walk_expr(node.index)
        elif isinstance(node, ast.Attribute):
            if node.attr == "event":
                found.append(True)
            walk_expr(node.base)
        elif isinstance(node, ast.Unary):
            walk_expr(node.operand)
        elif isinstance(node, ast.Binary):
            walk_expr(node.left)
            walk_expr(node.right)
        elif isinstance(node, ast.Call):
            for arg in node.args:
                walk_expr(arg)

    def walk_stmts(stmts):
        for stmt in stmts:
            if isinstance(stmt, ast.IfStmt):
                for condition, body in stmt.arms:
                    walk_expr(condition)
                    walk_stmts(body)
                walk_stmts(stmt.orelse)
            elif isinstance(stmt, ast.CaseStmt):
                for _choices, body in stmt.arms:
                    walk_stmts(body)
            elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt)):
                walk_stmts(stmt.body)
            elif isinstance(stmt, ast.WaitStmt):
                if stmt.until is not None:
                    walk_expr(stmt.until)

    walk_stmts(process.body)
    return bool(found)


def _assign_to_process(stmt: ast.ConcurrentAssign) -> ast.ProcessStmt:
    """Desugar a concurrent (conditional) assignment into a process.

    ``y <= a when c else b after t;`` becomes a process sensitive to all
    signals read, whose body is the equivalent if/else of signal
    assignments.  Sensitivity is filled in by the elaborator through the
    read-collection pass, so here the sensitivity list is left empty and
    an explicit ``wait on`` is synthesized instead — except that the
    interpreter needs a static list; we collect names at this level.
    """
    waveform_of = lambda value: ((value, stmt.after),)

    def arm_stmt(value):
        return ast.SignalAssign(stmt.target, waveform_of(value),
                                stmt.transport, None)

    arms = list(stmt.arms)
    last_value, last_cond = arms[-1]
    if last_cond is not None:
        raise ElaborationError(
            "conditional assignment must end with an unconditional else")
    if len(arms) == 1:
        body: Tuple[ast.Stmt, ...] = (arm_stmt(last_value),)
    else:
        if_arms = tuple((cond, (arm_stmt(value),))
                        for value, cond in arms[:-1])
        body = (ast.IfStmt(if_arms, (arm_stmt(last_value),)),)

    # Sensitivity: every signal read anywhere in the statement.
    read_names: List[str] = []

    def collect(node):
        if isinstance(node, ast.Name):
            read_names.append(node.ident)
        elif isinstance(node, ast.Indexed):
            collect(node.base)
            collect(node.index)
        elif isinstance(node, ast.Sliced):
            collect(node.base)
        elif isinstance(node, ast.Attribute):
            collect(node.base)
        elif isinstance(node, ast.Unary):
            collect(node.operand)
        elif isinstance(node, ast.Binary):
            collect(node.left)
            collect(node.right)
        elif isinstance(node, ast.Call):
            for arg in node.args:
                collect(arg)
        elif isinstance(node, ast.Aggregate):
            for item in node.positional:
                collect(item)
            if node.others is not None:
                collect(node.others)

    for value, cond in arms:
        collect(value)
        if cond is not None:
            collect(cond)
    sensitivity = tuple(dict.fromkeys(read_names))
    return ast.ProcessStmt(stmt.label, sensitivity, (), body)
