"""Recursive-descent parser for the VHDL subset.

Supported design units: entity declarations (generics + ports) and
architecture bodies containing signal/constant/component declarations,
process statements, concurrent (conditional) signal assignments, and
component instantiations.  Sequential statements: signal/variable
assignment (inertial and transport, multi-element waveforms), if/elsif/
else, case, for, while, wait (on/until/for), assert/report, exit/next,
null.

Expressions follow VHDL's operator precedence; both the logical and the
arithmetic/relational operator families are implemented.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .lexer import Token, tokenize


class ParseError(SyntaxError):
    pass


# Operator precedence, weakest first (VHDL LRM 7.2).
_LOGICAL = {"and", "or", "nand", "nor", "xor", "xnor"}
_RELATIONAL = {"=", "/=", "<", "<=", ">", ">="}
_SHIFT = {"sll", "srl", "sla", "sra", "rol", "ror"}
_ADDING = {"+", "-", "&"}
_MULTIPLYING = {"*", "/", "mod", "rem"}


class Parser:
    """One-token-lookahead recursive descent over the token list."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, value=None) -> bool:
        token = self.current
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def accept(self, kind: str, value=None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value=None) -> Token:
        if not self.check(kind, value):
            raise self.error(f"expected {value or kind}")
        return self.advance()

    def error(self, message: str) -> ParseError:
        token = self.current
        return ParseError(
            f"line {token.line}: {message}, found "
            f"{token.value!r} ({token.kind})")

    # ------------------------------------------------------------------
    # Design file
    # ------------------------------------------------------------------
    def parse_file(self) -> ast.DesignFile:
        entities: List[ast.EntityDecl] = []
        architectures: List[ast.ArchitectureDecl] = []
        while not self.check("eof"):
            # Skip library/use clauses.
            if self.accept("kw", "library"):
                while not self.accept("delim", ";"):
                    self.advance()
                continue
            if self.accept("kw", "use"):
                while not self.accept("delim", ";"):
                    self.advance()
                continue
            if self.check("kw", "entity"):
                entities.append(self.parse_entity())
            elif self.check("kw", "architecture"):
                architectures.append(self.parse_architecture())
            else:
                raise self.error("expected entity or architecture")
        return ast.DesignFile(tuple(entities), tuple(architectures))

    def parse_entity(self) -> ast.EntityDecl:
        self.expect("kw", "entity")
        name = self.expect("id").value
        self.expect("kw", "is")
        generics: Tuple[ast.GenericDecl, ...] = ()
        ports: Tuple[ast.PortDecl, ...] = ()
        if self.accept("kw", "generic"):
            generics = self.parse_generic_clause()
        if self.accept("kw", "port"):
            ports = self.parse_port_clause()
        self.expect("kw", "end")
        self.accept("kw", "entity")
        if self.check("id"):
            self.advance()
        self.expect("delim", ";")
        return ast.EntityDecl(name, generics, ports)

    def parse_generic_clause(self) -> Tuple[ast.GenericDecl, ...]:
        self.expect("delim", "(")
        generics: List[ast.GenericDecl] = []
        while True:
            names = self.parse_name_list()
            self.expect("delim", ":")
            mark = self.parse_type_mark()
            default = None
            if self.accept("delim", ":="):
                default = self.parse_expression()
            for n in names:
                generics.append(ast.GenericDecl(n, mark, default))
            if not self.accept("delim", ";"):
                break
        self.expect("delim", ")")
        self.expect("delim", ";")
        return tuple(generics)

    def parse_port_clause(self) -> Tuple[ast.PortDecl, ...]:
        self.expect("delim", "(")
        ports: List[ast.PortDecl] = []
        while True:
            names = self.parse_name_list()
            self.expect("delim", ":")
            direction = "in"
            if self.current.kind == "kw" and self.current.value in (
                    "in", "out", "inout", "buffer"):
                direction = self.advance().value
            mark = self.parse_type_mark()
            default = None
            if self.accept("delim", ":="):
                default = self.parse_expression()
            for n in names:
                ports.append(ast.PortDecl(n, direction, mark, default))
            if not self.accept("delim", ";"):
                break
        self.expect("delim", ")")
        self.expect("delim", ";")
        return tuple(ports)

    def parse_name_list(self) -> List[str]:
        names = [self.expect("id").value]
        while self.accept("delim", ","):
            names.append(self.expect("id").value)
        return names

    def parse_type_mark(self) -> ast.TypeMark:
        name = self.expect("id").value
        if self.accept("delim", "("):
            left = self.parse_expression()
            downto = True
            if self.accept("kw", "downto"):
                downto = True
            elif self.accept("kw", "to"):
                downto = False
            else:
                raise self.error("expected 'downto' or 'to' in range")
            right = self.parse_expression()
            self.expect("delim", ")")
            return ast.TypeMark(name, left, right, downto)
        return ast.TypeMark(name)

    # ------------------------------------------------------------------
    # Architecture
    # ------------------------------------------------------------------
    def parse_architecture(self) -> ast.ArchitectureDecl:
        self.expect("kw", "architecture")
        name = self.expect("id").value
        self.expect("kw", "of")
        entity = self.expect("id").value
        self.expect("kw", "is")
        declarations: List[object] = []
        while not self.check("kw", "begin"):
            declarations.append(self.parse_block_declaration())
        self.expect("kw", "begin")
        statements: List[object] = []
        while not self.check("kw", "end"):
            statements.append(self.parse_concurrent_statement())
        self.expect("kw", "end")
        self.accept("kw", "architecture")
        if self.check("id"):
            self.advance()
        self.expect("delim", ";")
        return ast.ArchitectureDecl(name, entity, tuple(declarations),
                                    tuple(statements))

    def parse_block_declaration(self) -> object:
        if self.accept("kw", "signal"):
            names = self.parse_name_list()
            self.expect("delim", ":")
            mark = self.parse_type_mark()
            initial = None
            if self.accept("delim", ":="):
                initial = self.parse_expression()
            self.expect("delim", ";")
            return ast.SignalDecl(tuple(names), mark, initial)
        if self.accept("kw", "constant"):
            names = self.parse_name_list()
            self.expect("delim", ":")
            mark = self.parse_type_mark()
            self.expect("delim", ":=")
            value = self.parse_expression()
            self.expect("delim", ";")
            return ast.ConstantDecl(tuple(names), mark, value)
        if self.accept("kw", "component"):
            name = self.expect("id").value
            self.accept("kw", "is")
            generics: Tuple[ast.GenericDecl, ...] = ()
            ports: Tuple[ast.PortDecl, ...] = ()
            if self.accept("kw", "generic"):
                generics = self.parse_generic_clause()
            if self.accept("kw", "port"):
                ports = self.parse_port_clause()
            self.expect("kw", "end")
            self.expect("kw", "component")
            if self.check("id"):
                self.advance()
            self.expect("delim", ";")
            return ast.ComponentDecl(name, generics, ports)
        raise self.error("expected signal, constant or component "
                         "declaration")

    # ------------------------------------------------------------------
    # Concurrent statements
    # ------------------------------------------------------------------
    def parse_concurrent_statement(self) -> object:
        label = None
        if (self.check("id") and self.tokens[self.pos + 1].kind == "delim"
                and self.tokens[self.pos + 1].value == ":"):
            label = self.advance().value
            self.expect("delim", ":")
        if self.check("kw", "process"):
            return self.parse_process(label)
        if self.check("kw", "for"):
            return self.parse_generate(label)
        if self.check("kw", "with"):
            return self.parse_selected_assign(label)
        if self.check("id") and self.tokens[self.pos + 1].kind == "kw" and \
                self.tokens[self.pos + 1].value in ("port", "generic"):
            return self.parse_instantiation(label)
        return self.parse_concurrent_assign(label)

    def parse_selected_assign(self, label) -> "ast.ProcessStmt":
        """``with sel select y <= a when "00", b when others;``

        Desugared directly to the equivalent case-statement process.
        """
        self.expect("kw", "with")
        selector = self.parse_expression()
        self.expect("kw", "select")
        target = self.parse_primary()
        self.expect("delim", "<=")
        transport = bool(self.accept("kw", "transport"))
        arms = []
        while True:
            value = self.parse_expression()
            after = None
            if self.accept("kw", "after"):
                after = self.parse_expression()
            self.expect("kw", "when")
            if self.accept("kw", "others"):
                choices: tuple = ()
            else:
                choice_list = [self.parse_expression()]
                while self.accept("delim", "|"):
                    choice_list.append(self.parse_expression())
                choices = tuple(choice_list)
            assign = ast.SignalAssign(target, ((value, after),),
                                      transport, None)
            arms.append((choices, (assign,)))
            if not self.accept("delim", ","):
                break
        self.expect("delim", ";")
        case = ast.CaseStmt(selector, tuple(arms))
        # Sensitivity: the selector and every value expression.
        names: List[str] = []

        def collect(node):
            if isinstance(node, ast.Name):
                names.append(node.ident)
            elif isinstance(node, (ast.Indexed,)):
                collect(node.base)
                collect(node.index)
            elif isinstance(node, ast.Sliced):
                collect(node.base)
            elif isinstance(node, ast.Attribute):
                collect(node.base)
            elif isinstance(node, ast.Unary):
                collect(node.operand)
            elif isinstance(node, ast.Binary):
                collect(node.left)
                collect(node.right)
            elif isinstance(node, ast.Call):
                for arg in node.args:
                    collect(arg)

        collect(selector)
        for _choices, body in arms:
            collect(body[0].waveform[0][0])
        sensitivity = tuple(dict.fromkeys(names))
        return ast.ProcessStmt(label, sensitivity, (), (case,))

    def parse_generate(self, label: Optional[str]) -> ast.GenerateFor:
        if label is None:
            raise self.error("generate statements require a label")
        self.expect("kw", "for")
        var = self.expect("id").value
        self.expect("kw", "in")
        low = self.parse_expression()
        downto = False
        if self.accept("kw", "downto"):
            downto = True
        else:
            self.expect("kw", "to")
        high = self.parse_expression()
        self.expect("kw", "generate")
        statements: List[object] = []
        while not self.check("kw", "end"):
            statements.append(self.parse_concurrent_statement())
        self.expect("kw", "end")
        self.expect("kw", "generate")
        if self.check("id"):
            self.advance()
        self.expect("delim", ";")
        return ast.GenerateFor(label, var, low, high, downto,
                               tuple(statements))

    def parse_process(self, label: Optional[str]) -> ast.ProcessStmt:
        self.expect("kw", "process")
        sensitivity: Tuple[str, ...] = ()
        if self.accept("delim", "("):
            names = self.parse_name_list()
            self.expect("delim", ")")
            sensitivity = tuple(names)
        self.accept("kw", "is")
        declarations: List[object] = []
        while not self.check("kw", "begin"):
            if self.accept("kw", "variable"):
                names = self.parse_name_list()
                self.expect("delim", ":")
                mark = self.parse_type_mark()
                initial = None
                if self.accept("delim", ":="):
                    initial = self.parse_expression()
                self.expect("delim", ";")
                declarations.append(
                    ast.VariableDecl(tuple(names), mark, initial))
            elif self.accept("kw", "constant"):
                names = self.parse_name_list()
                self.expect("delim", ":")
                mark = self.parse_type_mark()
                self.expect("delim", ":=")
                value = self.parse_expression()
                self.expect("delim", ";")
                declarations.append(
                    ast.ConstantDecl(tuple(names), mark, value))
            else:
                raise self.error("expected variable or constant "
                                 "declaration in process")
        self.expect("kw", "begin")
        body = self.parse_sequential_statements(("end",))
        self.expect("kw", "end")
        self.expect("kw", "process")
        if self.check("id"):
            self.advance()
        self.expect("delim", ";")
        return ast.ProcessStmt(label, sensitivity, tuple(declarations),
                               body)

    def parse_instantiation(self, label: Optional[str]) -> ast.Instantiation:
        if label is None:
            raise self.error("component instantiation requires a label")
        component = self.expect("id").value
        generic_map: List[Tuple[str, ast.Expr]] = []
        port_map: List[Tuple[str, ast.Expr]] = []
        if self.accept("kw", "generic"):
            self.expect("kw", "map")
            generic_map = self.parse_association_list()
        if self.accept("kw", "port"):
            self.expect("kw", "map")
            port_map = self.parse_association_list()
        self.expect("delim", ";")
        return ast.Instantiation(label, component, tuple(generic_map),
                                 tuple(port_map))

    def parse_association_list(self) -> List[Tuple[str, ast.Expr]]:
        self.expect("delim", "(")
        pairs: List[Tuple[str, ast.Expr]] = []
        index = 0
        while True:
            if (self.check("id")
                    and self.tokens[self.pos + 1].kind == "delim"
                    and self.tokens[self.pos + 1].value == "=>"):
                formal = self.advance().value
                self.expect("delim", "=>")
                pairs.append((formal, self.parse_expression()))
            else:
                pairs.append((str(index), self.parse_expression()))
            index += 1
            if not self.accept("delim", ","):
                break
        self.expect("delim", ")")
        return pairs

    def parse_concurrent_assign(self, label) -> ast.ConcurrentAssign:
        target = self.parse_primary()
        self.expect("delim", "<=")
        transport = bool(self.accept("kw", "transport"))
        arms: List[Tuple[ast.Expr, Optional[ast.Expr]]] = []
        after = None
        while True:
            value = self.parse_expression()
            if self.accept("kw", "after"):
                after = self.parse_expression()
            if self.accept("kw", "when"):
                condition = self.parse_expression()
                arms.append((value, condition))
                self.expect("kw", "else")
                continue
            arms.append((value, None))
            break
        self.expect("delim", ";")
        return ast.ConcurrentAssign(label, target, tuple(arms), after,
                                    transport)

    # ------------------------------------------------------------------
    # Sequential statements
    # ------------------------------------------------------------------
    def parse_sequential_statements(self, stop_kw) -> Tuple[ast.Stmt, ...]:
        stmts: List[ast.Stmt] = []
        while not (self.current.kind == "kw"
                   and self.current.value in stop_kw):
            stmts.append(self.parse_sequential_statement())
        return tuple(stmts)

    def parse_sequential_statement(self) -> ast.Stmt:
        token = self.current
        if token.kind == "kw":
            handler = {
                "if": self.parse_if,
                "case": self.parse_case,
                "for": self.parse_for,
                "while": self.parse_while,
                "wait": self.parse_wait,
                "null": self.parse_null,
                "report": self.parse_report,
                "assert": self.parse_assert,
                "exit": self.parse_exit,
                "next": self.parse_next,
            }.get(token.value)
            if handler is None:
                raise self.error("unexpected keyword in statement")
            return handler()
        # Assignment: parse the target, then dispatch on <= or :=
        target = self.parse_primary()
        if self.accept("delim", "<="):
            transport = bool(self.accept("kw", "transport"))
            reject = None
            if self.accept("kw", "reject"):
                reject = self.parse_expression()
                self.expect("kw", "inertial")
            elif self.accept("kw", "inertial"):
                pass
            waveform: List[Tuple[ast.Expr, Optional[ast.Expr]]] = []
            while True:
                value = self.parse_expression()
                delay = None
                if self.accept("kw", "after"):
                    delay = self.parse_expression()
                waveform.append((value, delay))
                if not self.accept("delim", ","):
                    break
            self.expect("delim", ";")
            return ast.SignalAssign(target, tuple(waveform), transport,
                                    reject)
        if self.accept("delim", ":="):
            value = self.parse_expression()
            self.expect("delim", ";")
            return ast.VarAssign(target, value)
        raise self.error("expected '<=' or ':=' after target")

    def parse_if(self) -> ast.IfStmt:
        self.expect("kw", "if")
        arms: List[Tuple[ast.Expr, Tuple[ast.Stmt, ...]]] = []
        condition = self.parse_expression()
        self.expect("kw", "then")
        body = self.parse_sequential_statements(("elsif", "else", "end"))
        arms.append((condition, body))
        while self.accept("kw", "elsif"):
            condition = self.parse_expression()
            self.expect("kw", "then")
            body = self.parse_sequential_statements(
                ("elsif", "else", "end"))
            arms.append((condition, body))
        orelse: Tuple[ast.Stmt, ...] = ()
        if self.accept("kw", "else"):
            orelse = self.parse_sequential_statements(("end",))
        self.expect("kw", "end")
        self.expect("kw", "if")
        self.expect("delim", ";")
        return ast.IfStmt(tuple(arms), orelse)

    def parse_case(self) -> ast.CaseStmt:
        self.expect("kw", "case")
        selector = self.parse_expression()
        self.expect("kw", "is")
        arms = []
        while self.accept("kw", "when"):
            if self.accept("kw", "others"):
                choices: Tuple[ast.Expr, ...] = ()
            else:
                choice_list = [self.parse_expression()]
                while self.accept("delim", "|"):
                    choice_list.append(self.parse_expression())
                choices = tuple(choice_list)
            self.expect("delim", "=>")
            body = self.parse_sequential_statements(("when", "end"))
            arms.append((choices, body))
        self.expect("kw", "end")
        self.expect("kw", "case")
        self.expect("delim", ";")
        return ast.CaseStmt(selector, tuple(arms))

    def parse_for(self) -> ast.ForStmt:
        self.expect("kw", "for")
        var = self.expect("id").value
        self.expect("kw", "in")
        low = self.parse_expression()
        downto = False
        if self.accept("kw", "downto"):
            downto = True
        else:
            self.expect("kw", "to")
        high = self.parse_expression()
        self.expect("kw", "loop")
        body = self.parse_sequential_statements(("end",))
        self.expect("kw", "end")
        self.expect("kw", "loop")
        self.expect("delim", ";")
        return ast.ForStmt(var, low, high, downto, body)

    def parse_while(self) -> ast.WhileStmt:
        self.expect("kw", "while")
        condition = self.parse_expression()
        self.expect("kw", "loop")
        body = self.parse_sequential_statements(("end",))
        self.expect("kw", "end")
        self.expect("kw", "loop")
        self.expect("delim", ";")
        return ast.WhileStmt(condition, body)

    def parse_wait(self) -> ast.WaitStmt:
        self.expect("kw", "wait")
        on: Tuple[str, ...] = ()
        until = None
        for_time = None
        if self.accept("kw", "on"):
            on = tuple(self.parse_name_list())
        if self.accept("kw", "until"):
            until = self.parse_expression()
        if self.accept("kw", "for"):
            for_time = self.parse_expression()
        self.expect("delim", ";")
        return ast.WaitStmt(on, until, for_time)

    def parse_null(self) -> ast.NullStmt:
        self.expect("kw", "null")
        self.expect("delim", ";")
        return ast.NullStmt()

    def parse_report(self) -> ast.ReportStmt:
        self.expect("kw", "report")
        message = self.parse_expression()
        severity = None
        if self.accept("kw", "severity"):
            severity = self.expect("id").value
        self.expect("delim", ";")
        return ast.ReportStmt(message, severity)

    def parse_assert(self) -> ast.AssertStmt:
        self.expect("kw", "assert")
        condition = self.parse_expression()
        message = None
        severity = None
        if self.accept("kw", "report"):
            message = self.parse_expression()
        if self.accept("kw", "severity"):
            severity = self.expect("id").value
        self.expect("delim", ";")
        return ast.AssertStmt(condition, message, severity)

    def parse_exit(self) -> ast.ExitStmt:
        self.expect("kw", "exit")
        condition = None
        if self.accept("kw", "when"):
            condition = self.parse_expression()
        self.expect("delim", ";")
        return ast.ExitStmt(condition)

    def parse_next(self) -> ast.NextStmt:
        self.expect("kw", "next")
        condition = None
        if self.accept("kw", "when"):
            condition = self.parse_expression()
        self.expect("delim", ";")
        return ast.NextStmt(condition)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        return self.parse_logical()

    def parse_logical(self) -> ast.Expr:
        left = self.parse_relational()
        while self.current.kind == "kw" and \
                self.current.value in _LOGICAL:
            op = self.advance().value
            right = self.parse_relational()
            left = ast.Binary(op, left, right)
        return left

    def parse_relational(self) -> ast.Expr:
        left = self.parse_shift()
        if self.current.kind == "delim" and \
                self.current.value in _RELATIONAL:
            op = self.advance().value
            right = self.parse_shift()
            return ast.Binary(op, left, right)
        return left

    def parse_shift(self) -> ast.Expr:
        left = self.parse_adding()
        if self.current.kind == "kw" and self.current.value in _SHIFT:
            op = self.advance().value
            right = self.parse_adding()
            return ast.Binary(op, left, right)
        return left

    def parse_adding(self) -> ast.Expr:
        left = self.parse_multiplying()
        while self.current.kind == "delim" and \
                self.current.value in _ADDING:
            op = self.advance().value
            right = self.parse_multiplying()
            left = ast.Binary(op, left, right)
        return left

    def parse_multiplying(self) -> ast.Expr:
        left = self.parse_factor()
        while ((self.current.kind == "delim"
                and self.current.value in ("*", "/"))
               or (self.current.kind == "kw"
                   and self.current.value in ("mod", "rem"))):
            op = self.advance().value
            right = self.parse_factor()
            left = ast.Binary(op, left, right)
        return left

    def parse_factor(self) -> ast.Expr:
        if self.accept("kw", "not"):
            return ast.Unary("not", self.parse_factor())
        if self.accept("kw", "abs"):
            return ast.Unary("abs", self.parse_factor())
        if self.accept("delim", "-"):
            return ast.Unary("-", self.parse_factor())
        if self.accept("delim", "+"):
            return self.parse_factor()
        left = self.parse_primary()
        if self.accept("delim", "**"):
            right = self.parse_factor()
            return ast.Binary("**", left, right)
        return left

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "char":
            self.advance()
            return ast.CharLiteral(token.value)
        if token.kind == "string":
            self.advance()
            return ast.StringLiteral(token.value)
        if token.kind == "int":
            self.advance()
            return ast.IntLiteral(token.value)
        if token.kind == "time":
            self.advance()
            return ast.TimeLiteral(token.value)
        if token.kind == "delim" and token.value == "(":
            return self.parse_aggregate_or_paren()
        if token.kind == "id":
            return self.parse_name()
        if token.kind == "kw" and token.value in ("true", "false"):
            # true/false are not VHDL keywords; ids in practice.
            self.advance()
            return ast.Name(token.value)
        raise self.error("expected an expression")

    def parse_aggregate_or_paren(self) -> ast.Expr:
        self.expect("delim", "(")
        if self.check("kw", "others"):
            self.advance()
            self.expect("delim", "=>")
            value = self.parse_expression()
            self.expect("delim", ")")
            return ast.Aggregate((), value)
        first = self.parse_expression()
        if self.check("delim", ","):
            positional = [first]
            while self.accept("delim", ","):
                if self.accept("kw", "others"):
                    self.expect("delim", "=>")
                    value = self.parse_expression()
                    self.expect("delim", ")")
                    return ast.Aggregate(tuple(positional), value)
                positional.append(self.parse_expression())
            self.expect("delim", ")")
            return ast.Aggregate(tuple(positional), None)
        self.expect("delim", ")")
        return first

    def parse_name(self) -> ast.Expr:
        node: ast.Expr = ast.Name(self.expect("id").value)
        while True:
            if self.accept("delim", "'"):
                attr = self.advance()
                if attr.kind not in ("id", "kw"):
                    raise self.error("expected attribute name")
                node = ast.Attribute(node, str(attr.value))
                continue
            if self.check("delim", "("):
                self.advance()
                first = self.parse_expression()
                if self.accept("kw", "downto"):
                    second = self.parse_expression()
                    self.expect("delim", ")")
                    node = ast.Sliced(node, first, second, True)
                    continue
                if self.accept("kw", "to"):
                    second = self.parse_expression()
                    self.expect("delim", ")")
                    node = ast.Sliced(node, first, second, False)
                    continue
                args = [first]
                while self.accept("delim", ","):
                    args.append(self.parse_expression())
                self.expect("delim", ")")
                if len(args) == 1 and isinstance(node, ast.Name):
                    # Could be indexing or a call; the elaborator decides
                    # from the name.  Functions of several args are calls.
                    node = ast.Indexed(node, args[0])
                elif isinstance(node, ast.Name):
                    node = ast.Call(node.ident, tuple(args))
                else:
                    node = ast.Indexed(node, args[0])
                continue
            break
        return node


def parse(text: str) -> ast.DesignFile:
    """Parse VHDL source text into a design file AST."""
    return Parser(tokenize(text)).parse_file()
