"""Abstract syntax tree for the VHDL subset.

Nodes are immutable-by-convention dataclasses.  The interpreter keeps
references into this tree inside its resumable frames, so nodes must
never be mutated after parsing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Name(Expr):
    """A simple name reference (signal, variable, constant, enum)."""

    ident: str


@dataclass(frozen=True)
class Indexed(Expr):
    """``name(index)`` — array indexing (or, ambiguously, a call)."""

    base: Expr
    index: Expr


@dataclass(frozen=True)
class Sliced(Expr):
    """``name(hi downto lo)`` / ``name(lo to hi)``."""

    base: Expr
    left: Expr
    right: Expr
    downto: bool


@dataclass(frozen=True)
class Attribute(Expr):
    """``name'attr`` — only 'event, 'last_value, 'length supported."""

    base: Expr
    attr: str


@dataclass(frozen=True)
class CharLiteral(Expr):
    value: str


@dataclass(frozen=True)
class StringLiteral(Expr):
    value: str


@dataclass(frozen=True)
class IntLiteral(Expr):
    value: int


@dataclass(frozen=True)
class TimeLiteral(Expr):
    femtoseconds: int


@dataclass(frozen=True)
class Unary(Expr):
    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A function call: rising_edge, falling_edge, conversion helpers."""

    func: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Aggregate(Expr):
    """``(others => '0')`` and positional aggregates."""

    positional: Tuple[Expr, ...]
    others: Optional[Expr]


# ---------------------------------------------------------------------------
# Sequential statements
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Stmt:
    pass


@dataclass(frozen=True)
class SignalAssign(Stmt):
    """``target <= [transport] wave1 after t1, wave2 after t2;``"""

    target: Expr
    waveform: Tuple[Tuple[Expr, Optional[Expr]], ...]
    transport: bool = False
    reject: Optional[Expr] = None


@dataclass(frozen=True)
class VarAssign(Stmt):
    target: Expr
    value: Expr


@dataclass(frozen=True)
class IfStmt(Stmt):
    #: (condition, body) pairs: the if and every elsif arm.
    arms: Tuple[Tuple[Expr, Tuple[Stmt, ...]], ...]
    orelse: Tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class CaseStmt(Stmt):
    selector: Expr
    #: (choices, body); choices == () means ``when others``.
    arms: Tuple[Tuple[Tuple[Expr, ...], Tuple[Stmt, ...]], ...]


@dataclass(frozen=True)
class ForStmt(Stmt):
    var: str
    low: Expr
    high: Expr
    downto: bool
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class WhileStmt(Stmt):
    condition: Expr
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class WaitStmt(Stmt):
    on: Tuple[str, ...] = ()
    until: Optional[Expr] = None
    for_time: Optional[Expr] = None


@dataclass(frozen=True)
class NullStmt(Stmt):
    pass


@dataclass(frozen=True)
class ReportStmt(Stmt):
    message: Expr
    severity: Optional[str] = None


@dataclass(frozen=True)
class AssertStmt(Stmt):
    condition: Expr
    message: Optional[Expr] = None
    severity: Optional[str] = None


@dataclass(frozen=True)
class ExitStmt(Stmt):
    """``exit [when cond];`` — leaves the innermost loop."""

    condition: Optional[Expr] = None


@dataclass(frozen=True)
class NextStmt(Stmt):
    """``next [when cond];`` — next iteration of the innermost loop."""

    condition: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Declarations and design units
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TypeMark:
    """A subtype indication: name plus optional (hi downto lo) range."""

    name: str
    left: Optional[Expr] = None
    right: Optional[Expr] = None
    downto: bool = True


@dataclass(frozen=True)
class PortDecl:
    name: str
    direction: str  # 'in' | 'out' | 'inout' | 'buffer'
    type_mark: TypeMark
    default: Optional[Expr] = None


@dataclass(frozen=True)
class GenericDecl:
    name: str
    type_mark: TypeMark
    default: Optional[Expr] = None


@dataclass(frozen=True)
class SignalDecl:
    names: Tuple[str, ...]
    type_mark: TypeMark
    initial: Optional[Expr] = None


@dataclass(frozen=True)
class VariableDecl:
    names: Tuple[str, ...]
    type_mark: TypeMark
    initial: Optional[Expr] = None


@dataclass(frozen=True)
class ConstantDecl:
    names: Tuple[str, ...]
    type_mark: TypeMark
    value: Expr


@dataclass(frozen=True)
class ComponentDecl:
    name: str
    generics: Tuple[GenericDecl, ...]
    ports: Tuple[PortDecl, ...]


@dataclass(frozen=True)
class ProcessStmt:
    label: Optional[str]
    sensitivity: Tuple[str, ...]
    declarations: Tuple[object, ...]  # VariableDecl | ConstantDecl
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class ConcurrentAssign:
    """``target <= expr [after t] [when cond else ...];``"""

    label: Optional[str]
    target: Expr
    #: (value expr, condition or None) pairs; last pair has cond None.
    arms: Tuple[Tuple[Expr, Optional[Expr]], ...]
    after: Optional[Expr] = None
    transport: bool = False


@dataclass(frozen=True)
class Instantiation:
    label: str
    component: str
    generic_map: Tuple[Tuple[str, Expr], ...]
    port_map: Tuple[Tuple[str, Expr], ...]


@dataclass(frozen=True)
class GenerateFor:
    """``label : for i in lo to hi generate ... end generate;``

    The body is a tuple of concurrent statements, replicated by the
    elaborator with the loop parameter bound as a constant.
    """

    label: str
    var: str
    low: Expr
    high: Expr
    downto: bool
    statements: Tuple[object, ...]


@dataclass(frozen=True)
class EntityDecl:
    name: str
    generics: Tuple[GenericDecl, ...]
    ports: Tuple[PortDecl, ...]


@dataclass(frozen=True)
class ArchitectureDecl:
    name: str
    entity: str
    declarations: Tuple[object, ...]  # SignalDecl | ConstantDecl | Component
    statements: Tuple[object, ...]    # ProcessStmt | ConcurrentAssign | Inst


@dataclass(frozen=True)
class DesignFile:
    """A parsed source file: entities and architectures by name."""

    entities: Tuple[EntityDecl, ...]
    architectures: Tuple[ArchitectureDecl, ...]

    def entity(self, name: str) -> EntityDecl:
        for ent in self.entities:
            if ent.name == name.lower():
                return ent
        raise KeyError(f"no entity {name!r}")

    def architecture_of(self, entity: str) -> ArchitectureDecl:
        """The last architecture declared for ``entity`` (VHDL default)."""
        found = None
        for arch in self.architectures:
            if arch.entity == entity.lower():
                found = arch
        if found is None:
            raise KeyError(f"no architecture for entity {entity!r}")
        return found
