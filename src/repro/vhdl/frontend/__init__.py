"""VHDL subset compiler: lexer -> parser -> elaborator -> kernel LPs."""

from .ast import DesignFile
from .elaborator import ElaborationError, elaborate
from .interp import InterpretedBody, VhdlRuntimeError
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse

__all__ = [
    "tokenize", "Token", "LexError",
    "parse", "ParseError", "DesignFile",
    "elaborate", "ElaborationError",
    "InterpretedBody", "VhdlRuntimeError",
]
