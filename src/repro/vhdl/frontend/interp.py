"""Interpreted VHDL process bodies.

The paper translated each VHDL process into a C class whose ``run()``
method is invoked by the kernel.  We interpret the process AST instead —
with one crucial property: the interpreter's execution state (variable
values plus a stack of resumable statement frames) is *plain data*, so
the body is *checkpointable* and interpreted processes can run under
Time Warp.  This is exactly the opposite of the generator-based bodies,
whose live Python frames force conservative mode.

Execution model: an explicit frame stack.  Each frame is a small list
(mutable for in-place position updates, cheap to shallow-copy for
snapshots) of one of the forms::

    ['seq',   stmts, idx]                  # statement list position
    ['for',   stmt, current, stop, step, shadow]   # loop control
    ['while', stmt]

Running proceeds until a ``wait`` statement is reached, which produces
the kernel-level :class:`~repro.vhdl.process.Wait`; the frame stack
stays put and ``resume`` continues from it.  When the top-level body
ends, the process loops (VHDL processes are infinite loops); a process
with a sensitivity list instead performs the implicit
``wait on <sensitivity>``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ...core.vtime import NS
from ..process import ProcessAPI, ProcessBody, Wait
from ..values import SL_0, SL_U, StdLogic, sl, slv, vector_to_int
from . import ast


class VhdlRuntimeError(RuntimeError):
    """A VHDL-level error (failed assertion, bad index, type misuse)."""


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------
class VType:
    """Resolved object type: scalar logic, vector, integer, boolean..."""

    __slots__ = ("kind", "left", "right", "downto")

    def __init__(self, kind: str, left: int = None, right: int = None,
                 downto: bool = True) -> None:
        self.kind = kind
        self.left = left
        self.right = right
        self.downto = downto

    @property
    def width(self) -> int:
        if self.left is None:
            raise VhdlRuntimeError(f"type {self.kind} has no range")
        return abs(self.left - self.right) + 1

    def position(self, index: int) -> int:
        """Tuple position of VHDL index ``index`` (leftmost = 0)."""
        if self.downto:
            pos = self.left - index
        else:
            pos = index - self.left
        if not 0 <= pos < self.width:
            raise VhdlRuntimeError(
                f"index {index} out of range "
                f"({self.left} {'downto' if self.downto else 'to'} "
                f"{self.right})")
        return pos

    def default(self) -> Any:
        if self.kind == "logic":
            return SL_U
        if self.kind == "vector":
            return (SL_U,) * self.width
        if self.kind == "integer":
            return 0
        if self.kind == "boolean":
            return False
        if self.kind == "time":
            return 0
        raise VhdlRuntimeError(f"no default for type {self.kind}")


_SCALAR_LOGIC = {"std_logic", "std_ulogic", "bit"}
_VECTOR_LOGIC = {"std_logic_vector", "std_ulogic_vector", "bit_vector",
                 "unsigned", "signed"}
_INTEGERS = {"integer", "natural", "positive"}


def resolve_type(mark: ast.TypeMark,
                 const_eval: Callable[[ast.Expr], Any]) -> VType:
    """Resolve a parsed type mark against the constant environment."""
    name = mark.name
    if name in _SCALAR_LOGIC:
        return VType("logic")
    if name in _VECTOR_LOGIC:
        if mark.left is None:
            raise VhdlRuntimeError(f"{name} needs an index range")
        return VType("vector", int(const_eval(mark.left)),
                     int(const_eval(mark.right)), mark.downto)
    if name in _INTEGERS:
        return VType("integer")
    if name == "boolean":
        return VType("boolean")
    if name == "time":
        return VType("time")
    raise VhdlRuntimeError(f"unsupported type {name!r}")


# ---------------------------------------------------------------------------
# Environment shared by one process
# ---------------------------------------------------------------------------
class SignalRef:
    """Binding of a VHDL signal name to its kernel LP.

    ``shared`` is set by the elaborator when the signal has several
    driving processes.  It changes the semantics of *partial*
    assignments (``s(i) <= ...``): a shared signal's driver contributes
    'Z' on the elements it never assigns, so that element-wise drivers
    from different processes resolve independently — emulating the
    LRM's per-element drivers with whole-vector ones.  A single-driver
    signal keeps read-modify-write semantics instead (untouched elements
    retain their current value).
    """

    __slots__ = ("lp_id", "vtype", "shared")

    def __init__(self, lp_id: int, vtype: VType) -> None:
        self.lp_id = lp_id
        self.vtype = vtype
        self.shared = False


class Env:
    """Name environment of a process: signals, constants, types."""

    def __init__(self, signals: Dict[str, SignalRef],
                 constants: Dict[str, Any]) -> None:
        self.signals = signals
        self.constants = constants

    def signal(self, name: str) -> SignalRef:
        try:
            return self.signals[name]
        except KeyError:
            raise VhdlRuntimeError(f"unknown signal {name!r}")


# ---------------------------------------------------------------------------
# The interpreted body
# ---------------------------------------------------------------------------
class InterpretedBody(ProcessBody):
    """Executes a parsed VHDL process with checkpointable state."""

    checkpointable = True

    def __init__(self, process: ast.ProcessStmt, env: Env) -> None:
        self.process = process
        self.env = env
        self.var_types: Dict[str, VType] = {}
        self._init_vars: Dict[str, Any] = {}
        for decl in process.declarations:
            if isinstance(decl, ast.VariableDecl):
                vtype = resolve_type(decl.type_mark, self._const)
                for name in decl.names:
                    self.var_types[name] = vtype
                    self._init_vars[name] = None  # filled at start()
            elif isinstance(decl, ast.ConstantDecl):
                value = None  # evaluated lazily at start()
                for name in decl.names:
                    self._init_vars[name] = None
        # Mutable execution state (all plain data):
        self.vars: Dict[str, Any] = {}
        self.frames: List[list] = []
        #: Committed report/assert messages (part of the state so that
        #: rollbacks rewind them).
        self.reports: List[Tuple[str, str]] = []
        #: Per-signal driving-value cache for element-wise assignment.
        self.driving: Dict[str, Any] = {}
        self._api: Optional[ProcessAPI] = None

    def _const(self, expr: ast.Expr) -> Any:
        """Evaluate a constant expression (no signals, no variables)."""
        return _eval_const(expr, self.env.constants)

    # ------------------------------------------------------------------
    # Wiring introspection (used by the elaborator)
    # ------------------------------------------------------------------
    def reads(self) -> Sequence[int]:
        names = collect_signal_reads(self.process, self.env)
        return sorted({self.env.signal(n).lp_id for n in names})

    def drives(self) -> Sequence[int]:
        names = collect_signal_drives(self.process.body, self.env)
        return sorted({self.env.signal(n).lp_id for n in names})

    # ------------------------------------------------------------------
    # ProcessBody interface
    # ------------------------------------------------------------------
    def start(self, api: ProcessAPI) -> Wait:
        self.vars = {}
        for decl in self.process.declarations:
            if isinstance(decl, ast.VariableDecl):
                vtype = resolve_type(decl.type_mark, self._const)
                for name in decl.names:
                    if decl.initial is not None:
                        self.vars[name] = self._coerce(
                            self._eval(decl.initial, api, vtype), vtype)
                    else:
                        self.vars[name] = vtype.default()
            elif isinstance(decl, ast.ConstantDecl):
                vtype = resolve_type(decl.type_mark, self._const)
                for name in decl.names:
                    self.vars[name] = self._coerce(
                        self._eval(decl.value, api, vtype), vtype)
        for name, ref in self.env.signals.items():
            self.driving.setdefault(name, None)
        self.frames = [["seq", self.process.body, 0]]
        return self._run(api)

    def resume(self, api: ProcessAPI) -> Wait:
        if not self.frames:
            self.frames = [["seq", self.process.body, 0]]
        return self._run(api)

    def snapshot(self) -> Any:
        return (dict(self.vars), [list(f) for f in self.frames],
                list(self.reports), dict(self.driving))

    def restore(self, snap: Any) -> None:
        if snap is None:
            return
        vars_, frames, reports, driving = snap
        self.vars = dict(vars_)
        self.frames = [list(f) for f in frames]
        self.reports = list(reports)
        self.driving = dict(driving)

    # ------------------------------------------------------------------
    # The statement machine
    # ------------------------------------------------------------------
    def _run(self, api: ProcessAPI) -> Wait:
        self._api = api
        try:
            return self._run_inner(api)
        finally:
            self._api = None

    def _run_inner(self, api: ProcessAPI) -> Wait:
        frames = self.frames
        steps = 0
        while True:
            steps += 1
            if steps > 1_000_000:
                raise VhdlRuntimeError(
                    f"process {self.process.label or '?'}: more than 1e6 "
                    f"steps without a wait (infinite zero-time loop?)")
            if not frames:
                # End of the process body: loop, or implicit wait.
                if self.process.sensitivity:
                    frames.append(["seq", self.process.body, 0])
                    return self._sensitivity_wait()
                frames.append(["seq", self.process.body, 0])
                continue
            top = frames[-1]
            kind = top[0]
            if kind == "seq":
                _tag, stmts, idx = top
                if idx >= len(stmts):
                    frames.pop()
                    self._loop_epilogue(frames)
                    continue
                top[2] = idx + 1
                wait = self._exec(stmts[idx], api)
                if wait is not None:
                    return wait
                continue
            raise VhdlRuntimeError(f"corrupt frame {top!r}")

    def _loop_epilogue(self, frames: List[list]) -> None:
        """After a body sequence finishes, advance the enclosing loop."""
        if not frames:
            return
        top = frames[-1]
        if top[0] == "for":
            _tag, stmt, current, stop, step, shadow = top
            nxt = current + step
            if (step > 0 and nxt > stop) or (step < 0 and nxt < stop):
                frames.pop()
                self._unshadow(stmt.var, shadow)
            else:
                top[2] = nxt
                self.vars[stmt.var] = nxt
                frames.append(["seq", stmt.body, 0])
        elif top[0] == "while":
            stmt = top[1]
            if _truthy(self._eval(stmt.condition, self._api)):
                frames.append(["seq", stmt.body, 0])
            else:
                frames.pop()

    def _unshadow(self, var: str, shadow: Tuple[bool, Any]) -> None:
        had, old = shadow
        if had:
            self.vars[var] = old
        else:
            self.vars.pop(var, None)

    def _sensitivity_wait(self) -> Wait:
        # Desugared concurrent assignments may list constants among the
        # names they "read"; only actual signals can wake a process.
        ids = frozenset(self.env.signals[n].lp_id
                        for n in self.process.sensitivity
                        if n in self.env.signals)
        return Wait(on=ids)

    # ------------------------------------------------------------------
    def _exec(self, stmt: ast.Stmt, api: ProcessAPI) -> Optional[Wait]:
        if isinstance(stmt, ast.SignalAssign):
            self._do_signal_assign(stmt, api)
            return None
        if isinstance(stmt, ast.VarAssign):
            self._do_var_assign(stmt, api)
            return None
        if isinstance(stmt, ast.IfStmt):
            for condition, body in stmt.arms:
                if _truthy(self._eval(condition, api)):
                    self.frames.append(["seq", body, 0])
                    return None
            if stmt.orelse:
                self.frames.append(["seq", stmt.orelse, 0])
            return None
        if isinstance(stmt, ast.CaseStmt):
            selector = self._eval(stmt.selector, api)
            for choices, body in stmt.arms:
                if not choices:  # when others
                    self.frames.append(["seq", body, 0])
                    return None
                for choice in choices:
                    if _values_equal(selector, self._eval(choice, api)):
                        self.frames.append(["seq", body, 0])
                        return None
            return None
        if isinstance(stmt, ast.ForStmt):
            low = int(self._eval(stmt.low, api))
            high = int(self._eval(stmt.high, api))
            step = -1 if stmt.downto else 1
            if (step > 0 and low > high) or (step < 0 and low < high):
                return None  # empty range
            shadow = (stmt.var in self.vars, self.vars.get(stmt.var))
            self.vars[stmt.var] = low
            self.frames.append(["for", stmt, low, high, step, shadow])
            self.frames.append(["seq", stmt.body, 0])
            return None
        if isinstance(stmt, ast.WhileStmt):
            self.frames.append(["while", stmt])
            if _truthy(self._eval(stmt.condition, api)):
                self.frames.append(["seq", stmt.body, 0])
            else:
                self.frames.pop()
            return None
        if isinstance(stmt, ast.WaitStmt):
            return self._do_wait(stmt, api)
        if isinstance(stmt, ast.NullStmt):
            return None
        if isinstance(stmt, ast.ReportStmt):
            message = self._eval(stmt.message, api)
            self.reports.append((stmt.severity or "note", str(message)))
            return None
        if isinstance(stmt, ast.AssertStmt):
            if not _truthy(self._eval(stmt.condition, api)):
                message = ("assertion failed" if stmt.message is None
                           else str(self._eval(stmt.message, api)))
                severity = stmt.severity or "error"
                self.reports.append((severity, message))
                if severity in ("failure", "error"):
                    raise VhdlRuntimeError(
                        f"assertion ({severity}): {message}")
            return None
        if isinstance(stmt, ast.ExitStmt):
            if stmt.condition is None or \
                    _truthy(self._eval(stmt.condition, api)):
                self._unwind_loop(drop_loop=True)
            return None
        if isinstance(stmt, ast.NextStmt):
            if stmt.condition is None or \
                    _truthy(self._eval(stmt.condition, api)):
                self._unwind_loop(drop_loop=False)
            return None
        raise VhdlRuntimeError(f"unsupported statement {type(stmt)}")

    def _unwind_loop(self, drop_loop: bool) -> None:
        frames = self.frames
        while frames and frames[-1][0] == "seq":
            frames.pop()
        if not frames or frames[-1][0] not in ("for", "while"):
            raise VhdlRuntimeError("exit/next outside of a loop")
        if drop_loop:
            top = frames.pop()
            if top[0] == "for":
                self._unshadow(top[1].var, top[5])
        else:
            self._loop_epilogue(frames)

    # ------------------------------------------------------------------
    def _do_wait(self, stmt: ast.WaitStmt, api: ProcessAPI) -> Wait:
        on = set()
        for name in stmt.on:
            on.add(self.env.signal(name).lp_id)
        until = None
        if stmt.until is not None:
            expr = stmt.until
            if not stmt.on:
                # Implicit sensitivity: every signal in the condition.
                for name in _expr_signal_names(expr, self.env):
                    on.add(self.env.signal(name).lp_id)
            body = self

            def until(api_, _expr=expr, _body=body):
                return _truthy(_body._eval(_expr, api_))

        for_fs = None
        if stmt.for_time is not None:
            for_fs = int(self._eval(stmt.for_time, api))
        return Wait(on=frozenset(on), until=until, for_fs=for_fs)

    def _do_signal_assign(self, stmt: ast.SignalAssign,
                          api: ProcessAPI) -> None:
        name, index, slice_ = _target_parts(stmt.target)
        ref = self.env.signal(name)
        reject = None if stmt.reject is None \
            else int(self._eval(stmt.reject, api))
        waveform = []
        for value_expr, delay_expr in stmt.waveform:
            delay = 0 if delay_expr is None \
                else int(self._eval(delay_expr, api))
            value = self._eval(value_expr, api, expected=ref.vtype
                               if index is None and slice_ is None
                               else None)
            waveform.append((value, delay))
        if index is None and slice_ is None:
            coerced = [(self._coerce(v, ref.vtype), d)
                       for v, d in waveform]
            self.driving[name] = coerced[0][0]
            api.assign_waveform(ref.lp_id, coerced, stmt.transport, reject)
            return
        # Element / slice assignment through the per-process driving
        # cache.  For shared (multi-driver) signals the cache starts
        # all-'Z': untouched elements contribute nothing and the IEEE
        # resolution combines the per-process element drivers.  For
        # single-driver signals it starts from the current effective
        # value (plain read-modify-write).
        base = self.driving.get(name)
        if base is None:
            if ref.shared:
                from ..values import SL_Z
                base = (SL_Z,) * ref.vtype.width
            else:
                base = api.read(ref.lp_id)
        base = list(base)
        out_waveform = []
        for value, delay in waveform:
            if index is not None:
                pos = ref.vtype.position(int(self._eval(index, api)))
                base[pos] = sl(value)
            else:
                left, right = slice_
                li = int(self._eval(left, api))
                ri = int(self._eval(right, api))
                positions = _slice_positions(ref.vtype, li, ri)
                value_vec = _as_vector(value, len(positions))
                for p, bit in zip(positions, value_vec):
                    base[p] = bit
            out_waveform.append((tuple(base), delay))
        self.driving[name] = out_waveform[-1][0]
        api.assign_waveform(ref.lp_id, out_waveform, stmt.transport,
                            reject)

    def _do_var_assign(self, stmt: ast.VarAssign, api: ProcessAPI) -> None:
        name, index, slice_ = _target_parts(stmt.target)
        if name not in self.vars:
            raise VhdlRuntimeError(f"unknown variable {name!r}")
        vtype = self.var_types.get(name)
        if index is None and slice_ is None:
            value = self._eval(stmt.value, api, expected=vtype)
            self.vars[name] = self._coerce(value, vtype) if vtype \
                else value
            return
        base = list(self.vars[name])
        if index is not None:
            pos = vtype.position(int(self._eval(index, api)))
            base[pos] = sl(self._eval(stmt.value, api))
        else:
            left, right = slice_
            positions = _slice_positions(vtype,
                                         int(self._eval(left, api)),
                                         int(self._eval(right, api)))
            value_vec = _as_vector(self._eval(stmt.value, api),
                                   len(positions))
            for p, bit in zip(positions, value_vec):
                base[p] = bit
        self.vars[name] = tuple(base)

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _eval(self, expr: ast.Expr, api: ProcessAPI,
              expected: Optional[VType] = None) -> Any:
        return evaluate(expr, self, api, expected)

    def _coerce(self, value: Any, vtype: VType) -> Any:
        return coerce_value(value, vtype)


# ---------------------------------------------------------------------------
# Shared evaluation helpers (also used for constants at elaboration)
# ---------------------------------------------------------------------------
def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, StdLogic):
        return value.to_bool()
    if isinstance(value, int):
        return value != 0
    raise VhdlRuntimeError(f"value {value!r} is not a condition")


def _values_equal(a: Any, b: Any) -> bool:
    if isinstance(a, tuple) and isinstance(b, str):
        b = slv(b)
    if isinstance(b, tuple) and isinstance(a, str):
        a = slv(a)
    return a == b


def _as_vector(value: Any, width: int) -> Tuple[StdLogic, ...]:
    if isinstance(value, StdLogic):
        if width != 1:
            raise VhdlRuntimeError("scalar assigned to wider slice")
        return (value,)
    if isinstance(value, str):
        value = slv(value)
    if isinstance(value, tuple):
        if len(value) != width:
            raise VhdlRuntimeError(
                f"width mismatch: {len(value)} vs {width}")
        return value
    if isinstance(value, int):
        return slv(value, width=width)
    raise VhdlRuntimeError(f"cannot treat {value!r} as a vector")


def coerce_value(value: Any, vtype: VType) -> Any:
    if vtype.kind == "logic":
        if isinstance(value, str):
            return sl(value)
        if isinstance(value, StdLogic):
            return value
        if isinstance(value, tuple) and len(value) == 1:
            return value[0]
        raise VhdlRuntimeError(f"cannot coerce {value!r} to std_logic")
    if vtype.kind == "vector":
        if isinstance(value, str):
            value = slv(value)
        if isinstance(value, StdLogic):
            value = (value,)
        if isinstance(value, int):
            return slv(value % (1 << vtype.width), width=vtype.width)
        if isinstance(value, tuple):
            if len(value) != vtype.width:
                raise VhdlRuntimeError(
                    f"width mismatch: got {len(value)}, "
                    f"expected {vtype.width}")
            return value
        raise VhdlRuntimeError(f"cannot coerce {value!r} to vector")
    if vtype.kind == "integer":
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, tuple):
            return vector_to_int(value)
        raise VhdlRuntimeError(f"cannot coerce {value!r} to integer")
    if vtype.kind == "boolean":
        return _truthy(value)
    if vtype.kind == "time":
        return int(value)
    raise VhdlRuntimeError(f"unknown type kind {vtype.kind}")


def _target_parts(target: ast.Expr):
    """Split an assignment target into (name, index, slice)."""
    if isinstance(target, ast.Name):
        return target.ident, None, None
    if isinstance(target, ast.Indexed) and \
            isinstance(target.base, ast.Name):
        return target.base.ident, target.index, None
    if isinstance(target, ast.Sliced) and \
            isinstance(target.base, ast.Name):
        return target.base.ident, None, (target.left, target.right)
    raise VhdlRuntimeError(f"unsupported assignment target {target}")


def _slice_positions(vtype: VType, left: int, right: int) -> List[int]:
    positions = []
    step = -1 if vtype.downto else 1
    index = left
    while True:
        positions.append(vtype.position(index))
        if index == right:
            break
        index += step
    return positions


class _ConstContext:
    """A minimal evaluation context holding only constants."""

    def __init__(self, constants: Dict[str, Any]) -> None:
        self.vars = constants
        self.var_types: Dict[str, VType] = {}
        self.env = Env({}, constants)


def _eval_const(expr: ast.Expr, constants: Dict[str, Any],
                expected: Optional[VType] = None) -> Any:
    """Constant folding for generics/ranges at elaboration time."""
    return evaluate(expr, _ConstContext(constants), None, expected)


def _expr_signal_names(expr: ast.Expr, env: Env) -> List[str]:
    names: List[str] = []

    def walk(node):
        if isinstance(node, ast.Name):
            if node.ident in env.signals:
                names.append(node.ident)
        elif isinstance(node, ast.Indexed):
            walk(node.base)
            walk(node.index)
        elif isinstance(node, ast.Sliced):
            walk(node.base)
        elif isinstance(node, ast.Attribute):
            walk(node.base)
        elif isinstance(node, ast.Unary):
            walk(node.operand)
        elif isinstance(node, ast.Binary):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.Call):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, ast.Aggregate):
            for item in node.positional:
                walk(item)
            if node.others is not None:
                walk(node.others)

    walk(expr)
    return names


def collect_signal_reads(process: ast.ProcessStmt, env: Env) -> List[str]:
    names = set(process.sensitivity)

    def walk_stmts(stmts):
        for stmt in stmts:
            if isinstance(stmt, ast.SignalAssign):
                for value, delay in stmt.waveform:
                    names.update(_expr_signal_names(value, env))
                    if delay is not None:
                        names.update(_expr_signal_names(delay, env))
                # An element-assignment target is also read (rmw).
                if not isinstance(stmt.target, ast.Name):
                    names.update(_expr_signal_names(stmt.target, env))
            elif isinstance(stmt, ast.VarAssign):
                names.update(_expr_signal_names(stmt.value, env))
                if not isinstance(stmt.target, ast.Name):
                    names.update(_expr_signal_names(stmt.target, env))
            elif isinstance(stmt, ast.IfStmt):
                for condition, body in stmt.arms:
                    names.update(_expr_signal_names(condition, env))
                    walk_stmts(body)
                walk_stmts(stmt.orelse)
            elif isinstance(stmt, ast.CaseStmt):
                names.update(_expr_signal_names(stmt.selector, env))
                for choices, body in stmt.arms:
                    walk_stmts(body)
            elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt)):
                if isinstance(stmt, ast.WhileStmt):
                    names.update(
                        _expr_signal_names(stmt.condition, env))
                walk_stmts(stmt.body)
            elif isinstance(stmt, ast.WaitStmt):
                names.update(stmt.on)
                if stmt.until is not None:
                    names.update(_expr_signal_names(stmt.until, env))
            elif isinstance(stmt, (ast.ReportStmt,)):
                names.update(_expr_signal_names(stmt.message, env))
            elif isinstance(stmt, ast.AssertStmt):
                names.update(_expr_signal_names(stmt.condition, env))

    walk_stmts(process.body)
    return sorted(n for n in names if n in env.signals)


def collect_signal_drives(stmts, env: Env) -> List[str]:
    names = set()

    def walk_stmts(body):
        for stmt in body:
            if isinstance(stmt, ast.SignalAssign):
                name, _i, _s = _target_parts(stmt.target)
                names.add(name)
            elif isinstance(stmt, ast.IfStmt):
                for _c, arm_body in stmt.arms:
                    walk_stmts(arm_body)
                walk_stmts(stmt.orelse)
            elif isinstance(stmt, ast.CaseStmt):
                for _choices, arm_body in stmt.arms:
                    walk_stmts(arm_body)
            elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt)):
                walk_stmts(stmt.body)

    walk_stmts(stmts)
    return sorted(n for n in names if n in env.signals)


# ---------------------------------------------------------------------------
# The expression evaluator (shared by body and constant contexts)
# ---------------------------------------------------------------------------
def evaluate(expr: ast.Expr, ctx, api: Optional[ProcessAPI],
             expected: Optional[VType]) -> Any:
    if isinstance(expr, ast.CharLiteral):
        return sl(expr.value)
    if isinstance(expr, ast.StringLiteral):
        # Bit-string literal when every character is a std_logic value;
        # otherwise a plain string (report messages etc.).
        if expr.value and all(c.upper() in "UX01ZWLH-"
                              for c in expr.value):
            return slv(expr.value)
        return expr.value
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.TimeLiteral):
        return expr.femtoseconds
    if isinstance(expr, ast.Name):
        return _eval_name(expr.ident, ctx, api)
    if isinstance(expr, ast.Aggregate):
        if expected is None or expected.kind != "vector":
            if expr.others is not None and not expr.positional:
                raise VhdlRuntimeError(
                    "(others => ...) needs a known target width")
            return tuple(sl(evaluate(e, ctx, api, None))
                         for e in expr.positional)
        width = expected.width
        bits = [sl(evaluate(e, ctx, api, None)) for e in expr.positional]
        if expr.others is not None:
            fill = sl(evaluate(expr.others, ctx, api, None))
            bits = bits + [fill] * (width - len(bits))
        if len(bits) != width:
            raise VhdlRuntimeError(
                f"aggregate width {len(bits)} vs target {width}")
        return tuple(bits)
    if isinstance(expr, ast.Indexed):
        return _eval_indexed(expr, ctx, api)
    if isinstance(expr, ast.Sliced):
        base, vtype = _eval_vector_base(expr.base, ctx, api)
        positions = _slice_positions(
            vtype, int(evaluate(expr.left, ctx, api, None)),
            int(evaluate(expr.right, ctx, api, None)))
        return tuple(base[p] for p in positions)
    if isinstance(expr, ast.Attribute):
        return _eval_attribute(expr, ctx, api)
    if isinstance(expr, ast.Unary):
        return _eval_unary(expr.op,
                           evaluate(expr.operand, ctx, api, expected))
    if isinstance(expr, ast.Binary):
        left = evaluate(expr.left, ctx, api, expected
                        if expr.op in ("and", "or", "xor", "nand", "nor",
                                       "xnor", "&") else None)
        right = evaluate(expr.right, ctx, api, None)
        return _eval_binary(expr.op, left, right)
    if isinstance(expr, ast.Call):
        return _eval_call(expr, ctx, api)
    raise VhdlRuntimeError(f"cannot evaluate {expr!r}")


def _eval_name(name: str, ctx, api) -> Any:
    if name in ctx.vars:
        return ctx.vars[name]
    env = ctx.env
    if name in env.constants:
        return env.constants[name]
    if name in env.signals:
        if api is None:
            raise VhdlRuntimeError(
                f"signal {name!r} in a constant context")
        return api.read(env.signals[name].lp_id)
    if name == "true":
        return True
    if name == "false":
        return False
    if len(name) == 1 and name.upper() in "UX01ZWLH-":
        return sl(name)
    raise VhdlRuntimeError(f"unknown name {name!r}")


def _eval_vector_base(expr: ast.Expr, ctx, api):
    if isinstance(expr, ast.Name):
        name = expr.ident
        if name in ctx.vars:
            vtype = ctx.var_types.get(name)
            if vtype is None:
                value = ctx.vars[name]
                vtype = VType("vector", len(value) - 1, 0, True)
            return ctx.vars[name], vtype
        if name in ctx.env.signals:
            ref = ctx.env.signals[name]
            return api.read(ref.lp_id), ref.vtype
    value = evaluate(expr, ctx, api, None)
    return value, VType("vector", len(value) - 1, 0, True)


def _eval_indexed(expr: ast.Indexed, ctx, api) -> Any:
    if isinstance(expr.base, ast.Name):
        name = expr.base.ident
        if name in _BUILTINS:
            return _apply_builtin(name, [evaluate(expr.index, ctx, api,
                                                  None)], ctx, api,
                                  expr.index)
        if name in ctx.vars or name in ctx.env.signals:
            base, vtype = _eval_vector_base(expr.base, ctx, api)
            index = int(evaluate(expr.index, ctx, api, None))
            return base[vtype.position(index)]
    base, vtype = _eval_vector_base(expr.base, ctx, api)
    index = int(evaluate(expr.index, ctx, api, None))
    return base[vtype.position(index)]


def _eval_attribute(expr: ast.Attribute, ctx, api) -> Any:
    if not isinstance(expr.base, ast.Name):
        raise VhdlRuntimeError("attributes only on simple names")
    name = expr.base.ident
    attr = expr.attr
    if attr == "event":
        ref = ctx.env.signal(name)
        return api.event_on(ref.lp_id)
    if attr == "length":
        base, vtype = _eval_vector_base(expr.base, ctx, api)
        return len(base)
    raise VhdlRuntimeError(f"unsupported attribute '{attr}")


def _eval_unary(op: str, value: Any) -> Any:
    if op == "not":
        if isinstance(value, bool):
            return not value
        if isinstance(value, StdLogic):
            return ~value
        if isinstance(value, tuple):
            return tuple(~b for b in value)
    if op == "-":
        return -int(value)
    if op == "abs":
        return abs(int(value))
    raise VhdlRuntimeError(f"bad unary {op} on {value!r}")


def _logic_binop(op: str, a: StdLogic, b: StdLogic) -> StdLogic:
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "nand":
        return ~(a & b)
    if op == "nor":
        return ~(a | b)
    if op == "xnor":
        return ~(a ^ b)
    raise VhdlRuntimeError(f"bad logic operator {op}")


def _eval_binary(op: str, left: Any, right: Any) -> Any:
    if op in ("and", "or", "xor", "nand", "nor", "xnor"):
        if isinstance(left, bool) or isinstance(right, bool):
            lb, rb = _truthy(left), _truthy(right)
            return {"and": lb and rb, "or": lb or rb,
                    "xor": lb != rb, "nand": not (lb and rb),
                    "nor": not (lb or rb), "xnor": lb == rb}[op]
        if isinstance(left, StdLogic) and isinstance(right, StdLogic):
            return _logic_binop(op, left, right)
        if isinstance(left, tuple) and isinstance(right, tuple):
            if len(left) != len(right):
                raise VhdlRuntimeError("vector width mismatch")
            return tuple(_logic_binop(op, a, b)
                         for a, b in zip(left, right))
        raise VhdlRuntimeError(f"bad operands for {op}")
    if op == "&":
        lvec = left if isinstance(left, tuple) else (sl(left),)
        rvec = right if isinstance(right, tuple) else (sl(right),)
        return lvec + rvec
    if op in ("=", "/="):
        equal = _values_equal(left, right)
        return equal if op == "=" else not equal
    if op in ("<", ">", "<=", ">="):
        li = left if isinstance(left, int) else vector_to_int(left)
        ri = right if isinstance(right, int) else vector_to_int(right)
        return {"<": li < ri, ">": li > ri,
                "<=": li <= ri, ">=": li >= ri}[op]
    if op in ("+", "-", "*", "/", "mod", "rem", "**"):
        # Integer arithmetic; unsigned-vector operands wrap to their
        # width (the common numeric_std counter idiom).
        width = None
        if isinstance(left, tuple):
            width = len(left)
        elif isinstance(right, tuple):
            width = len(right)
        li = left if isinstance(left, int) else vector_to_int(left)
        ri = right if isinstance(right, int) else vector_to_int(right)
        if op == "+":
            value = li + ri
        elif op == "-":
            value = li - ri
        elif op == "*":
            value = li * ri
        elif op == "/":
            value = li // ri
        elif op == "mod":
            value = li % ri
        elif op == "rem":
            # VHDL rem truncates toward zero (unlike mod).
            value = abs(li) % abs(ri)
            if li < 0:
                value = -value
        else:
            value = li ** ri
        if width is not None:
            return slv(value % (1 << width), width=width)
        return value
    if op in ("sll", "srl"):
        vec = left if isinstance(left, tuple) else (sl(left),)
        amount = int(right)
        zero = (SL_0,) * min(amount, len(vec))
        if op == "sll":
            return vec[amount:] + zero
        return zero + vec[:len(vec) - amount]
    raise VhdlRuntimeError(f"unsupported operator {op}")


_BUILTINS = {"rising_edge", "falling_edge", "to_integer", "to_unsigned",
             "to_signed", "std_logic_vector", "unsigned", "signed",
             "resize", "to_x01"}


def _eval_call(expr: ast.Call, ctx, api) -> Any:
    args = [evaluate(a, ctx, api, None) for a in expr.args]
    return _apply_builtin(expr.func, args, ctx, api,
                          expr.args[0] if expr.args else None)


def _apply_builtin(func: str, args: List[Any], ctx, api,
                   first_arg_expr) -> Any:
    if func in ("rising_edge", "falling_edge"):
        if not isinstance(first_arg_expr, ast.Name):
            raise VhdlRuntimeError(f"{func} needs a signal name")
        ref = ctx.env.signal(first_arg_expr.ident)
        if not api.event_on(ref.lp_id):
            return False
        value = args[0]
        try:
            level = value.to_bool()
        except (AttributeError, ValueError):
            return False
        return level if func == "rising_edge" else not level
    if func == "to_integer":
        return vector_to_int(args[0])
    if func in ("to_unsigned", "to_signed"):
        value, width = int(args[0]), int(args[1])
        return slv(value % (1 << width), width=width)
    if func in ("std_logic_vector", "unsigned", "signed", "to_x01"):
        value = args[0]
        if func == "to_x01" and isinstance(value, StdLogic):
            return value.to_x01()
        return value
    if func == "resize":
        vec, width = args[0], int(args[1])
        if len(vec) >= width:
            return vec[len(vec) - width:]
        return (SL_0,) * (width - len(vec)) + tuple(vec)
    raise VhdlRuntimeError(f"unknown function {func!r}")
