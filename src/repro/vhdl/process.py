"""VHDL processes as logical processes.

A VHDL process statement maps naturally onto a PDES LP (paper Sec. 3.2):
the LP state holds the process variables and *local copies* of the
effective values of every signal the process reads; the ``simulate()``
function reacts to

* external ``SIGNAL_UPDATE`` events — a signal the process reads changed
  its effective value.  The local copy is refreshed and, if the process is
  sensitive to the signal (or its wait condition becomes true), an internal
  ``PROCESS_RUN`` event is scheduled for the *next* phase — guaranteeing
  that **all** simultaneous signal updates land before the process body
  resumes, while their order among themselves stays irrelevant;
* internal ``PROCESS_RUN`` events — the sequential statement part resumes
  and executes until the next ``wait``;
* internal ``PROCESS_TIMEOUT`` events — a ``wait ... for`` expired.  A
  pending timeout is *cancelled* when the process is woken earlier; since
  events cannot be unsent in a distributed system, cancellation uses a
  monotonically increasing token: stale timeout events are ignored.

The actual sequential behaviour is delegated to a :class:`ProcessBody`.
Bodies with plain-data state (combinational functions, clocked state
machines, the interpreted VHDL frontend) are checkpointable and may run
optimistically; bodies wrapping a live Python generator cannot save their
state — exactly the paper's "heavy-state processes" — and are pinned to
conservative mode by the engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Callable, Dict, FrozenSet, Iterable, Optional,
                    Sequence, Tuple)

from ..core.event import Event, EventKind
from ..core.lp import LogicalProcess
from ..core.vtime import PHASE_ASSIGN, VirtualTime
from .signal import Assignment


@dataclass(frozen=True)
class Wait:
    """The suspension condition returned by a process body.

    ``on`` is the set of signal LP ids whose events wake the process;
    ``until`` an optional predicate over the process API that must also
    hold; ``for_fs`` an optional timeout in femtoseconds (0 means "next
    delta cycle").  ``Wait.forever()`` suspends the process for good.
    """

    on: FrozenSet[int] = frozenset()
    until: Optional[Callable[["ProcessAPI"], bool]] = None
    for_fs: Optional[int] = None

    @staticmethod
    def forever() -> "Wait":
        return Wait()

    @property
    def is_forever(self) -> bool:
        return not self.on and self.until is None and self.for_fs is None


class ProcessAPI:
    """The restricted view of the simulation a process body sees.

    Bodies read signals through their LP-local copies and emit signal
    assignments; they never touch the event machinery directly, so the
    same body runs identically under every synchronization protocol.
    """

    def __init__(self, lp: "ProcessLP") -> None:
        self._lp = lp

    @property
    def now(self) -> VirtualTime:
        return self._lp.now

    @property
    def now_fs(self) -> int:
        return self._lp.now.pt

    def read(self, signal_id: int) -> Any:
        """Current local copy of a signal's effective value."""
        return self._lp.locals_[signal_id]

    def assign(self, signal_id: int, value: Any, after: int = 0,
               transport: bool = False, reject: Optional[int] = None) -> None:
        """Schedule a signal assignment ``signal <= value after ...``."""
        self.assign_waveform(signal_id, ((value, after),), transport, reject)

    def assign_waveform(self, signal_id: int,
                        waveform: Sequence[Tuple[Any, int]],
                        transport: bool = False,
                        reject: Optional[int] = None) -> None:
        """Schedule a multi-element waveform assignment."""
        lp = self._lp
        lp.send(signal_id, lp.now, EventKind.SIGNAL_ASSIGN,
                Assignment(tuple(waveform), transport, reject))

    def event_on(self, signal_id: int) -> bool:
        """VHDL ``sig'event``: did this signal change at the current time?

        True while handling the run triggered by that signal's update.
        """
        return signal_id in self._lp.last_events


def sid(signal: Any) -> int:
    """Normalize a signal reference (SignalLP or raw id) to an LP id."""
    lp_id = getattr(signal, "lp_id", signal)
    if not isinstance(lp_id, int):
        raise TypeError(f"not a signal reference: {signal!r}")
    return lp_id


def sids(signals: Iterable[Any]) -> Tuple[int, ...]:
    return tuple(sid(s) for s in signals)


class ProcessBody:
    """Abstract sequential behaviour of a VHDL process."""

    #: Whether the body state can be captured for Time Warp.
    checkpointable: bool = True

    def start(self, api: ProcessAPI) -> Wait:
        """Initial execution (VHDL runs every process once at time 0)."""
        raise NotImplementedError

    def resume(self, api: ProcessAPI) -> Wait:
        """Continue after a wait was satisfied; run to the next wait."""
        raise NotImplementedError

    def snapshot(self) -> Any:
        """Capture body state (plain data).  Default: stateless."""
        return None

    def restore(self, snap: Any) -> None:
        """Restore body state captured by :meth:`snapshot`."""

    def reads(self) -> Optional[Sequence[int]]:
        """Signal ids this body reads, for auto-wiring (None = unknown)."""
        return None

    def drives(self) -> Optional[Sequence[int]]:
        """Signal ids this body drives, for auto-wiring (None = unknown)."""
        return None


class ProcessLP(LogicalProcess):
    """The LP for one VHDL process statement."""

    state_attrs = ("locals_", "wait", "timeout_token", "wake_pending",
                   "last_events", "body_state", "halted")
    #: A signal update arriving at phase 3k+2 resumes the body at 3k+3,
    #: so any caused assignment lags the arrival by >= 1 phase.
    react_lookahead_phases = 1

    def __init__(self, name: str, body: ProcessBody) -> None:
        super().__init__(name)
        self.body = body
        self.api = ProcessAPI(self)
        #: signal LP id -> local copy of the effective value.
        self.locals_: Dict[int, Any] = {}
        #: Current suspension condition (None until first run).
        self.wait: Optional[Wait] = None
        #: Cancellation token for the pending timeout, if any.
        self.timeout_token: int = 0
        #: Virtual time of an already-scheduled PROCESS_RUN (dedupe).
        self.wake_pending: Optional[VirtualTime] = None
        #: Signals whose update triggered the pending/current run.
        self.last_events: FrozenSet[int] = frozenset()
        self.body_state: Any = None
        self.halted = False

    @property
    def checkpointable(self) -> bool:  # type: ignore[override]
        return self.body.checkpointable

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_input(self, signal_id: int, initial: Any) -> None:
        """Declare that this process reads ``signal_id``."""
        self.locals_[signal_id] = initial

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def on_init(self) -> None:
        """VHDL elaboration: run every process once until its first wait."""
        self._run(self.body.start, frozenset())

    def simulate(self, event: Event) -> None:
        if event.kind is EventKind.SIGNAL_UPDATE:
            self._on_update(event)
        elif event.kind is EventKind.PROCESS_RUN:
            self._on_run(event)
        elif event.kind is EventKind.PROCESS_TIMEOUT:
            self._on_timeout(event)
        else:
            raise ValueError(
                f"process {self.name} received unexpected {event.kind}")

    def _on_update(self, event: Event) -> None:
        signal_id, value = event.payload
        self.locals_[signal_id] = value
        if self.halted or self.wait is None:
            return
        if signal_id not in self.wait.on:
            return
        # The run must happen strictly after all simultaneous updates, so
        # it is scheduled one phase later (paper Sec. 3.3, Process:Update).
        wake_time = self.now.next_phase()
        if self.wake_pending == wake_time:
            # Another update at this same virtual time already woke us;
            # just record the additional triggering signal.
            self.last_events = self.last_events | {signal_id}
            return
        if self.wait.until is not None:
            self.last_events = frozenset({signal_id})
            if not self.wait.until(self.api):
                self.last_events = frozenset()
                return
        self.last_events = frozenset({signal_id})
        self.wake_pending = wake_time
        self.timeout_token += 1  # cancel any pending timeout
        self.schedule(wake_time, EventKind.PROCESS_RUN)

    def _on_run(self, event: Event) -> None:
        if self.halted:
            return
        self.wake_pending = None
        self._run(self.body.resume, self.last_events)

    def _on_timeout(self, event: Event) -> None:
        if self.halted:
            return
        if event.payload != self.timeout_token:
            return  # cancelled: the process was woken before the timeout
        self.last_events = frozenset()
        self._run(self.body.resume, frozenset())

    def _run(self, step: Callable[[ProcessAPI], Wait],
             triggers: FrozenSet[int]) -> None:
        """Execute the body to its next wait and arm the suspension."""
        self.last_events = triggers
        wait = step(self.api)
        self.body_state = self.body.snapshot()
        self.wait = wait
        self.last_events = frozenset()
        if wait.is_forever:
            self.halted = True
            return
        if wait.for_fs is not None:
            self.timeout_token += 1
            if wait.for_fs == 0:
                when = self.now.next_delta()
            else:
                when = self.now.advance(wait.for_fs, PHASE_ASSIGN)
            self.schedule(when, EventKind.PROCESS_TIMEOUT, self.timeout_token)

    # ------------------------------------------------------------------
    # Fast checkpointing.  Local values and body state are plain data
    # with immutable leaves, so shallow container copies suffice; the
    # body's own state is re-injected on restore.
    # ------------------------------------------------------------------
    def snapshot(self) -> Any:
        return (dict(self.locals_), self.wait, self.timeout_token,
                self.wake_pending, self.last_events, self.body_state,
                self.halted)

    def restore(self, snap: Any) -> None:
        (locals_, wait, timeout_token, wake_pending, last_events,
         body_state, halted) = snap
        self.locals_ = dict(locals_)
        self.wait = wait
        self.timeout_token = timeout_token
        self.wake_pending = wake_pending
        self.last_events = last_events
        self.body_state = body_state
        self.halted = halted
        self.body.restore(body_state)


# ---------------------------------------------------------------------------
# Concrete bodies
# ---------------------------------------------------------------------------
class CombinationalBody(ProcessBody):
    """``out <= f(inputs)`` — a gate or any pure combinational block.

    ``fn`` maps a dict ``{signal_id: value}`` of the input local copies to
    a dict ``{signal_id: value}`` of output assignments, all delayed by
    ``delay_fs`` (0 gives delta-delay behaviour).
    """

    checkpointable = True

    def __init__(self, inputs: Sequence[Any], outputs: Sequence[Any],
                 fn: Callable[..., Any],
                 delay_fs: int = 0, transport: bool = False) -> None:
        self.inputs = sids(inputs)
        self.outputs = sids(outputs)
        self.fn = fn
        self.delay_fs = delay_fs
        self.transport = transport

    def reads(self) -> Sequence[int]:
        return self.inputs

    def drives(self) -> Sequence[int]:
        return self.outputs

    def _evaluate(self, api: ProcessAPI) -> None:
        values = [api.read(s) for s in self.inputs]
        result = self.fn(*values)
        if len(self.outputs) == 1:
            result = (result,)
        for out_sig, value in zip(self.outputs, result):
            api.assign(out_sig, value, after=self.delay_fs,
                       transport=self.transport)

    def start(self, api: ProcessAPI) -> Wait:
        self._evaluate(api)
        return Wait(on=frozenset(self.inputs))

    def resume(self, api: ProcessAPI) -> Wait:
        self._evaluate(api)
        return Wait(on=frozenset(self.inputs))


class ClockedBody(ProcessBody):
    """An edge-triggered register/state machine.

    ``fn(state, inputs, api)`` is called on each active clock edge with the
    mutable ``state`` dict and the input local copies; it returns the
    output assignments.  The state dict is plain data, so the body is
    checkpointable and may run optimistically — although the paper's mixed
    heuristic deliberately pins clocked components conservative.
    """

    checkpointable = True

    def __init__(self, clock: Any, inputs: Sequence[Any],
                 outputs: Sequence[Any],
                 fn: Callable[[Dict, Dict[int, Any], ProcessAPI],
                              Dict[int, Any]],
                 initial_state: Optional[Dict] = None,
                 rising: bool = True, delay_fs: int = 0) -> None:
        self.clock = sid(clock)
        self.inputs = sids(inputs)
        self.outputs = sids(outputs)
        self.fn = fn
        self.state: Dict = dict(initial_state or {})
        self.rising = rising
        self.delay_fs = delay_fs

    def reads(self) -> Sequence[int]:
        return (self.clock,) + self.inputs

    def drives(self) -> Sequence[int]:
        return self.outputs

    def _edge(self, api: ProcessAPI) -> bool:
        if not api.event_on(self.clock):
            return False
        value = api.read(self.clock)
        try:
            level = value.to_bool()
        except (AttributeError, ValueError):
            return False
        return level if self.rising else not level

    def start(self, api: ProcessAPI) -> Wait:
        return Wait(on=frozenset({self.clock}))

    def resume(self, api: ProcessAPI) -> Wait:
        if self._edge(api):
            inputs = {sig: api.read(sig) for sig in self.inputs}
            for out_sig, value in self.fn(self.state, inputs, api).items():
                api.assign(out_sig, value, after=self.delay_fs)
        return Wait(on=frozenset({self.clock}))

    def snapshot(self) -> Any:
        return dict(self.state)

    def restore(self, snap: Any) -> None:
        if snap is not None:
            self.state = dict(snap)


class GeneratorBody(ProcessBody):
    """A process written as a Python generator (testbenches, stimuli).

    The generator yields :class:`Wait` objects.  A live generator frame
    cannot be checkpointed, so this body is **not** checkpointable: the
    engines pin such LPs to conservative mode, mirroring the paper's
    remark that heavy-state processes cannot save their state.
    """

    checkpointable = False

    def __init__(self, gen_fn: Callable[[ProcessAPI], Iterable[Wait]]):
        self.gen_fn = gen_fn
        self._gen = None

    def start(self, api: ProcessAPI) -> Wait:
        self._gen = iter(self.gen_fn(api))
        return self._advance()

    def resume(self, api: ProcessAPI) -> Wait:
        return self._advance()

    def _advance(self) -> Wait:
        try:
            wait = next(self._gen)
        except StopIteration:
            return Wait.forever()
        if not isinstance(wait, Wait):
            raise TypeError(
                f"generator process must yield Wait, got {type(wait)}")
        return wait


class ClockGeneratorBody(ProcessBody):
    """A free-running clock: ``clk <= not clk after period/2``.

    Self-contained (no inputs), so it drives the whole simulation forward;
    ``cycles`` bounds the run.  Plain-data state: checkpointable.
    """

    checkpointable = True

    def __init__(self, clock: Any, half_period_fs: int, cycles: int,
                 low, high) -> None:
        self.clock = sid(clock)
        self.half_period_fs = half_period_fs
        self.edges_left = 2 * cycles
        self.level = False
        self.low = low
        self.high = high

    def reads(self) -> Sequence[int]:
        return ()

    def drives(self) -> Sequence[int]:
        return (self.clock,)

    def start(self, api: ProcessAPI) -> Wait:
        api.assign(self.clock, self.low)
        return Wait(for_fs=self.half_period_fs)

    def resume(self, api: ProcessAPI) -> Wait:
        if self.edges_left <= 0:
            return Wait.forever()
        self.edges_left -= 1
        self.level = not self.level
        api.assign(self.clock, self.high if self.level else self.low)
        return Wait(for_fs=self.half_period_fs)

    def snapshot(self) -> Any:
        return (self.edges_left, self.level)

    def restore(self, snap: Any) -> None:
        if snap is not None:
            self.edges_left, self.level = snap
