"""Content-addressed on-disk elaboration cache.

Elaborating + lowering a design is the expensive, run-independent half
of a simulation.  The cache stores :class:`~repro.vhdl.artifact.
DesignArtifact` blobs keyed by their content hash — a pure function of
the elaboration inputs (:func:`~repro.vhdl.artifact.artifact_key`) —
so a hit soundly skips parse, elaborate and compile and goes straight
to ``instantiate()``.

Robustness properties (all under test):

* **atomic put** — entries are written to a temp file and ``rename``d
  into place, so a crashed writer never leaves a half-entry visible;
* **corruption recovery** — a truncated or bit-flipped entry fails the
  artifact's payload digest check on read; the entry is evicted and
  the caller falls back to a cold elaboration (a miss, never an error);
* **bounded size** — ``max_entries`` LRU eviction by access time.
"""

from __future__ import annotations

import os
import tempfile
from typing import Any, Dict, Optional, Tuple, Union

from .artifact import ArtifactError, DesignArtifact, artifact_key

#: Default cache location (override per-instance or via REPRO_CACHE_DIR).
DEFAULT_CACHE_DIR = os.path.join(
    os.path.expanduser("~"), ".cache", "repro", "elab")

_SUFFIX = ".artifact"


class ElabCache:
    """A directory of content-addressed artifact blobs."""

    def __init__(self, root: Optional[str] = None,
                 max_entries: int = 256) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = root
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, content_hash: str) -> str:
        if not content_hash or os.sep in content_hash:
            raise ValueError(f"bad cache key {content_hash!r}")
        return os.path.join(self.root, content_hash + _SUFFIX)

    def get(self, content_hash: str) -> Optional[DesignArtifact]:
        """The cached artifact, or None on miss *or damaged entry*."""
        path = self._path(content_hash)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            self.misses += 1
            return None
        try:
            artifact = DesignArtifact.from_bytes(blob)
            if artifact.content_hash != content_hash:
                raise ArtifactError(
                    f"entry {content_hash[:12]} holds artifact "
                    f"{artifact.content_hash[:12]} (misfiled)")
        except ArtifactError:
            # A corrupt entry must behave as a miss: evict it so the
            # re-elaborated artifact can be re-put cleanly.
            self._evict(path)
            self.misses += 1
            return None
        self._touch(path)
        self.hits += 1
        return artifact

    def put(self, artifact: DesignArtifact) -> str:
        """Store ``artifact`` atomically; returns the entry path."""
        path = self._path(artifact.content_hash)
        os.makedirs(self.root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(artifact.to_bytes())
            os.replace(tmp, path)  # atomic on POSIX
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        self._prune()
        return path

    # ------------------------------------------------------------------
    def entries(self) -> Dict[str, int]:
        """Hash -> size in bytes for every (well-named) entry."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return {}
        out = {}
        for name in sorted(names):
            if name.endswith(_SUFFIX):
                try:
                    out[name[:-len(_SUFFIX)]] = os.path.getsize(
                        os.path.join(self.root, name))
                except OSError:
                    continue
        return out

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for content_hash in list(self.entries()):
            if self._evict(self._path(content_hash)):
                removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self.entries())}

    # ------------------------------------------------------------------
    def _touch(self, path: str) -> None:
        try:
            os.utime(path, None)  # refresh LRU access time
        except OSError:
            pass

    def _evict(self, path: str) -> bool:
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    def _prune(self) -> None:
        """LRU-evict down to ``max_entries`` (oldest mtime first)."""
        try:
            names = [n for n in os.listdir(self.root)
                     if n.endswith(_SUFFIX)]
        except OSError:
            return
        if len(names) <= self.max_entries:
            return
        aged = []
        for name in names:
            path = os.path.join(self.root, name)
            try:
                aged.append((os.path.getmtime(path), name, path))
            except OSError:
                continue
        aged.sort()
        for _mtime, _name, path in aged[:len(aged) - self.max_entries]:
            self._evict(path)


def cached_elaborate(source: str, top: str,
                     generics: Optional[Dict[str, Any]] = None,
                     traced: Union[bool, Tuple[str, ...]] = True,
                     name: Optional[str] = None,
                     exec_mode: str = "interp",
                     cache: Optional[ElabCache] = None,
                     ) -> Tuple[DesignArtifact, bool]:
    """Elaborate VHDL source through the cache.

    Returns ``(artifact, hit)``.  The key is computed *without*
    elaborating, so a hit never touches the parser; a miss elaborates
    cold via :func:`~repro.vhdl.artifact.build_artifact` and stores
    the result for the next caller.
    """
    from .artifact import build_artifact

    cache = cache if cache is not None else ElabCache()
    key = artifact_key(source, top, generics=generics, traced=traced,
                      exec_mode=exec_mode)
    cached = cache.get(key)
    if cached is not None:
        return cached, True
    artifact = build_artifact(source, top, generics=generics,
                              traced=traced, name=name,
                              exec_mode=exec_mode)
    cache.put(artifact)
    return artifact, False
