"""IEEE 1164 nine-value logic and the value types VHDL signals carry.

The distributed signal LP must apply *resolution functions* when a signal
has several drivers (paper Sec. 3.1), so the value system has to be a
faithful ``std_logic``: nine states, the standard resolution table, and
X-propagating logic operators.  Values are encoded as small ints for
speed; ``StdLogic`` wraps the encoding with a friendly API.

Scalars are interned singletons, so identity comparison works and
deep-copying a signal state is cheap.  Vectors are tuples of scalars.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

# Encoded std_ulogic states, in IEEE 1164 declaration order.
_CHARS = "UX01ZWLH-"
U, X, ZERO, ONE, Z, W, L, H, DASH = range(9)


class StdLogic:
    """One std_ulogic value.  Use the module-level singletons or
    :func:`sl` to obtain instances; the constructor interns by code."""

    __slots__ = ("code",)
    _interned: list = []

    def __new__(cls, code: int) -> "StdLogic":
        if not 0 <= code < 9:
            raise ValueError(f"invalid std_logic code {code}")
        if cls._interned:
            return cls._interned[code]
        obj = super().__new__(cls)
        obj.code = code
        return obj

    # Interning support: the module populates _interned after defining
    # the nine singletons below.

    @property
    def char(self) -> str:
        return _CHARS[self.code]

    def __repr__(self) -> str:
        return f"'{self.char}'"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StdLogic):
            return self.code == other.code
        if isinstance(other, str) and len(other) == 1:
            return self.char == other.upper()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("StdLogic", self.code))

    def __deepcopy__(self, memo) -> "StdLogic":
        return self

    def __copy__(self) -> "StdLogic":
        return self

    def __reduce__(self):
        """Pickle as the constructor call ``StdLogic(code)``.

        ``__slots__`` + interning ``__new__`` breaks default pickling
        (no ``__dict__``, and blind ``__new__(cls)`` would bypass the
        intern table), which matters the moment events cross a process
        boundary: the multiprocess backend ships signal values inside
        pickled event batches.  Round-tripping through the constructor
        preserves the singleton identity, so ``is`` comparisons and the
        cheap-deepcopy property survive unpickling in another process.
        """
        return (StdLogic, (self.code,))

    # Logic operators (X-propagating, per IEEE 1164 tables).
    def __and__(self, other: "StdLogic") -> "StdLogic":
        return _AND[self.code][other.code]

    def __or__(self, other: "StdLogic") -> "StdLogic":
        return _OR[self.code][other.code]

    def __xor__(self, other: "StdLogic") -> "StdLogic":
        return _XOR[self.code][other.code]

    def __invert__(self) -> "StdLogic":
        return _NOT[self.code]

    @property
    def is_01(self) -> bool:
        """True when the value is a firm '0' or '1'."""
        return self.code in (ZERO, ONE)

    def to_x01(self) -> "StdLogic":
        """The IEEE 1164 TO_X01 conversion (weak values strengthened)."""
        return _TO_X01[self.code]

    def to_bool(self) -> bool:
        """'1'/'H' -> True, '0'/'L' -> False; anything else raises."""
        x01 = self.to_x01()
        if x01.code == ONE:
            return True
        if x01.code == ZERO:
            return False
        raise ValueError(f"std_logic {self.char!r} has no boolean value")


def _build_singletons() -> Tuple[StdLogic, ...]:
    slots = []
    for code in range(9):
        obj = object.__new__(StdLogic)
        obj.code = code
        slots.append(obj)
    StdLogic._interned = slots
    return tuple(slots)


(SL_U, SL_X, SL_0, SL_1, SL_Z, SL_W, SL_L, SL_H, SL_DASH) = _build_singletons()

_BY_CHAR = {c: StdLogic._interned[i] for i, c in enumerate(_CHARS)}


def sl(value: Union[str, int, bool, StdLogic]) -> StdLogic:
    """Coerce a char, 0/1 int, or bool to a StdLogic."""
    if isinstance(value, StdLogic):
        return value
    if isinstance(value, bool):
        return SL_1 if value else SL_0
    if isinstance(value, int):
        if value in (0, 1):
            return SL_0 if value == 0 else SL_1
        raise ValueError(f"only 0/1 ints coerce to std_logic, got {value}")
    if isinstance(value, str) and len(value) == 1:
        try:
            return _BY_CHAR[value.upper()]
        except KeyError:
            raise ValueError(f"invalid std_logic character {value!r}")
    raise TypeError(f"cannot coerce {value!r} to std_logic")


# ---------------------------------------------------------------------------
# IEEE 1164 tables.  Index order is the declaration order U X 0 1 Z W L H -.
# ---------------------------------------------------------------------------
def _table(rows: Sequence[str]) -> Tuple[Tuple[StdLogic, ...], ...]:
    return tuple(tuple(_BY_CHAR[c] for c in row) for row in rows)


#: Resolution table for std_logic (the `resolved` function of IEEE 1164).
_RESOLVE = _table([
    #  U    X    0    1    Z    W    L    H    -
    "UUUUUUUUU",   # U
    "UXXXXXXXX",   # X
    "UX0X0000X",   # 0
    "UXX11111X",   # 1
    "UX01ZWLHX",   # Z
    "UX01WWWWX",   # W
    "UX01LWLWX",   # L
    "UX01HWWHX",   # H
    "UXXXXXXXX",   # -
])

_AND = _table([
    #  U    X    0    1    Z    W    L    H    -
    "UU0UUU0UU",   # U
    "UX0XXX0XX",   # X
    "000000000",   # 0
    "UX01XX01X",   # 1
    "UX0XXX0XX",   # Z
    "UX0XXX0XX",   # W
    "000000000",   # L
    "UX01XX01X",   # H
    "UX0XXX0XX",   # -
])

_OR = _table([
    #  U    X    0    1    Z    W    L    H    -
    "UUU1UUU1U",   # U
    "UXX1XXX1X",   # X
    "UX01XX01X",   # 0
    "111111111",   # 1
    "UXX1XXX1X",   # Z
    "UXX1XXX1X",   # W
    "UX01XX01X",   # L
    "111111111",   # H
    "UXX1XXX1X",   # -
])

_XOR = _table([
    #  U    X    0    1    Z    W    L    H    -
    "UUUUUUUUU",   # U
    "UXXXXXXXX",   # X
    "UX01XX01X",   # 0
    "UX10XX10X",   # 1
    "UXXXXXXXX",   # Z
    "UXXXXXXXX",   # W
    "UX01XX01X",   # L
    "UX10XX10X",   # H
    "UXXXXXXXX",   # -
])

# U->U, X->X, 0->1, 1->0, Z->X, W->X, L->1, H->0, - -> X
_NOT = tuple(_BY_CHAR[c] for c in "UX10XX10X")

_TO_X01 = tuple(_BY_CHAR[c] for c in "XX01XX01X")


def resolve(values: Iterable[StdLogic]) -> StdLogic:
    """The IEEE 1164 resolution function over any number of drivers.

    An empty collection yields 'Z' (a signal with no active driver
    floats); this matches the LRM's treatment of resolved signals whose
    drivers are all disconnected.
    """
    result = SL_Z
    first = True
    for value in values:
        if first:
            result = value
            first = False
        else:
            result = _RESOLVE[result.code][value.code]
    return result if not first else SL_Z


# ---------------------------------------------------------------------------
# Vectors
# ---------------------------------------------------------------------------
Vector = Tuple[StdLogic, ...]


def slv(bits: Union[str, int, Sequence], width: int = None) -> Vector:
    """Build a std_logic_vector.

    Accepts a string like ``"0101"`` (leftmost char = MSB), an int with a
    ``width``, or any sequence of coercible scalars.
    """
    if isinstance(bits, str):
        return tuple(sl(c) for c in bits)
    if isinstance(bits, int):
        if width is None:
            raise ValueError("integer vectors need an explicit width")
        if bits < 0:
            bits &= (1 << width) - 1
        return tuple(sl((bits >> (width - 1 - i)) & 1) for i in range(width))
    return tuple(sl(b) for b in bits)


def vector_to_int(vec: Vector, signed: bool = False) -> int:
    """Interpret a vector as an unsigned (or two's-complement) integer.

    Raises if any bit is not a firm 0/1 (after TO_X01 strengthening).
    """
    value = 0
    for bit in vec:
        value = (value << 1) | (1 if bit.to_bool() else 0)
    if signed and vec and vec[0].to_bool():
        value -= 1 << len(vec)
    return value


def vector_to_str(vec: Vector) -> str:
    return "".join(bit.char for bit in vec)


def vector_has_meta(vec: Vector) -> bool:
    """True if any element is not a firm 0/1."""
    return any(not bit.to_x01().is_01 for bit in vec)
