"""Immutable, content-addressed elaboration artifacts.

The paper's premise (Sec. 3) is that one elaborated design — the
bi-partite process/signal LP graph — is simulated many times under many
configurations.  Until this module existed the repo conflated the two
phases: a :class:`~repro.vhdl.design.Design` carried *live mutable* LP
state, so every run had to re-parse, re-elaborate and re-lower its
source, and the procs backend could only ship the graph to workers by
``fork``-inheriting an already-built machine.

:class:`DesignArtifact` splits elaboration from runtime:

* it is an **immutable snapshot** of the post-elaboration LP graph —
  signal topology, channel wiring, initial values, process ASTs /
  compiled bodies — taken *before* any engine touches the model;
* it is **picklable**, so it crosses process boundaries under any
  ``multiprocessing`` start method (``spawn`` workers receive the
  artifact and build their own runtime locally — no fork inheritance);
* it is **content-addressed**: :func:`artifact_key` derives a stable
  SHA-256 from the elaboration *inputs* (source text, top entity,
  generics, trace selection, compile options), independent of
  ``PYTHONHASHSEED``, dict iteration order, object identity or
  ``repr()`` formatting — the key of the on-disk elaboration cache
  (:mod:`repro.vhdl.cache`);
* :meth:`DesignArtifact.instantiate` produces a **fresh mutable
  runtime** (a new ``Design`` whose ``Model`` + LP instances share
  nothing with any other instantiation), so one artifact feeds any
  number of concurrent runs on any backend.

Programmatic designs (the benchmark circuits) get the same treatment
through :func:`snapshot_design` / ``Design.artifact()``: their content
hash is a canonical *structural* manifest of the LP graph rather than a
source digest.
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
from enum import Enum
from typing import Any, Dict, Optional, Tuple, Union

#: Framing magic for the on-disk serialization (see :meth:`to_bytes`).
MAGIC = b"repro-artifact\x001\n"


class ArtifactError(RuntimeError):
    """The design cannot be snapshotted or the artifact is damaged."""


# ---------------------------------------------------------------------------
# Canonical serialization (the hash substrate)
# ---------------------------------------------------------------------------
def canonical(obj: Any, _path: Optional[set] = None) -> Any:
    """Reduce ``obj`` to a JSON-able structure deterministically.

    The reduction is independent of ``PYTHONHASHSEED`` (sets are
    sorted by their members' canonical JSON encoding, dicts by key),
    of object identity (no ``id()``) and of ``repr()`` formatting.
    Functions and classes reduce to ``module:qualname``; objects
    reduce to their class plus a sorted attribute map (via
    ``__getstate__`` when defined).  Reference cycles collapse to a
    marker instead of recursing forever.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() of a float is the shortest round-tripping literal —
        # deterministic across processes, unlike binary formatting
        # choices left to json implementations.
        return ["f", repr(obj)]
    if isinstance(obj, bytes):
        return ["b", obj.hex()]
    if isinstance(obj, Enum):
        return ["enum", type(obj).__qualname__, obj.name]
    if isinstance(obj, (list, tuple)):
        return [canonical(x, _path) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return ["set", sorted(
            json.dumps(canonical(x, _path), sort_keys=True)
            for x in obj)]
    if isinstance(obj, dict):
        items = [(json.dumps(canonical(k, _path), sort_keys=True),
                  canonical(v, _path)) for k, v in obj.items()]
        items.sort(key=lambda kv: kv[0])
        return ["map", [[k, v] for k, v in items]]
    if isinstance(obj, type):
        return ["class", obj.__module__, obj.__qualname__]
    if callable(obj) and hasattr(obj, "__qualname__"):
        return ["fn", getattr(obj, "__module__", "?"), obj.__qualname__]
    # Generic object: class identity + canonical state.  A cycle on
    # the current recursion path (e.g. ProcessLP <-> ProcessAPI)
    # collapses to a marker — the enclosing structure still encodes
    # which objects participate.
    if _path is None:
        _path = set()
    marker = id(obj)
    if marker in _path:
        return ["cycle", type(obj).__qualname__]
    _path.add(marker)
    try:
        getstate = getattr(obj, "__getstate__", None)
        if getstate is not None and type(obj).__module__ != "builtins":
            try:
                state = getstate()
            except TypeError:
                state = None
        else:
            state = None
        if state is None:
            if hasattr(obj, "__dict__"):
                state = obj.__dict__
            else:
                state = {slot: getattr(obj, slot)
                         for slot in getattr(type(obj), "__slots__", ())
                         if hasattr(obj, slot)}
        return ["obj", type(obj).__module__, type(obj).__qualname__,
                canonical(state, _path)]
    finally:
        _path.discard(marker)


def canonical_digest(obj: Any) -> str:
    """SHA-256 over the canonical JSON encoding of ``obj``."""
    payload = json.dumps(canonical(obj), sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def artifact_key(source: str, top: str,
                 generics: Optional[Dict[str, Any]] = None,
                 traced: Union[bool, Tuple[str, ...]] = True,
                 exec_mode: str = "interp") -> str:
    """Content address of an elaboration: a pure function of its inputs.

    Two processes (any ``PYTHONHASHSEED``) elaborating the same source
    with the same top entity, generic overrides, trace selection and
    compile options compute the same key — so a cache hit soundly
    skips parse + elaborate + lower.
    """
    if isinstance(traced, (list, tuple)):
        traced = tuple(sorted(traced))
    return canonical_digest({
        "kind": "vhdl-source",
        "source": source,
        "top": top,
        "generics": dict(generics or {}),
        "traced": traced,
        "exec_mode": exec_mode,
    })


def design_manifest(design) -> Dict[str, Any]:
    """Canonical structural manifest of an elaborated LP graph.

    Used to content-address *programmatic* designs (no source text to
    hash): LP inventory with configuration, channel wiring with
    lookahead, and per-LP sync modes — everything
    :meth:`DesignArtifact.instantiate` reproduces.
    """
    model = design.model
    lps = []
    for lp in model.lps:
        entry: Dict[str, Any] = {
            "id": lp.lp_id, "name": lp.name,
            "cls": type(lp).__qualname__,
        }
        body = getattr(lp, "body", None)
        if body is not None:
            entry["body"] = canonical(body)
        initial = getattr(lp, "initial", _MISSING)
        if initial is not _MISSING:
            entry["initial"] = canonical(initial)
            entry["traced"] = bool(getattr(lp, "traced", False))
            entry["readers"] = sorted(getattr(lp, "readers", ()))
            entry["drivers"] = sorted(getattr(lp, "drivers", ()))
        lps.append(entry)
    return {
        "kind": "design-structure",
        "name": design.name,
        "lps": lps,
        "channels": sorted(
            [src, dst, canonical(channel.lookahead)]
            for (src, dst), channel in model.channels.items()),
        "modes": sorted(
            [lp_id, mode.name]
            for lp_id, mode in model.sync_modes.items()),
    }


class _MISSING:  # sentinel ("initial" may legitimately be None)
    pass


# ---------------------------------------------------------------------------
# The artifact
# ---------------------------------------------------------------------------
class DesignArtifact:
    """An immutable, picklable, content-addressed elaboration snapshot.

    ``payload`` is the pickled post-elaboration :class:`Design`;
    :meth:`instantiate` unpickles a fresh, fully independent mutable
    copy.  ``content_hash`` addresses the artifact (cache key);
    ``meta`` records the elaboration inputs and graph inventory.
    """

    __slots__ = ("name", "content_hash", "meta", "payload")

    def __init__(self, name: str, content_hash: str,
                 payload: bytes, meta: Optional[Dict] = None) -> None:
        self.name = name
        self.content_hash = content_hash
        self.payload = payload
        self.meta = dict(meta or {})

    # -- construction --------------------------------------------------
    @classmethod
    def from_design(cls, design, content_hash: Optional[str] = None,
                    meta: Optional[Dict] = None) -> "DesignArtifact":
        """Snapshot a built (un-simulated) Design into an artifact."""
        if getattr(design, "_simulated", False):
            raise ArtifactError(
                f"design {design.name!r} was already simulated; an "
                f"artifact must snapshot pristine post-elaboration "
                f"state (snapshot before running)")
        try:
            payload = pickle.dumps(design,
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as failure:
            raise ArtifactError(
                f"design {design.name!r} is not picklable ({failure}); "
                f"process bodies must be module-level callables or "
                f"plain-data objects to cross a process boundary"
            ) from failure
        if content_hash is None:
            content_hash = canonical_digest(design_manifest(design))
        full_meta = {
            "signals": len(design.signals),
            "processes": len(design.processes),
            "lps": len(design.model),
            "channels": len(design.model.channels),
        }
        full_meta.update(meta or {})
        return cls(design.name, content_hash, payload, full_meta)

    # -- runtime -------------------------------------------------------
    def instantiate(self):
        """A fresh mutable runtime: new Design + Model + LP instances.

        Every call returns a fully independent copy; concurrent runs
        of the same artifact share nothing.
        """
        design = pickle.loads(self.payload)
        # The snapshot may have been taken after Design.elaborate();
        # the fresh copy is a new single-use runtime either way.
        design._elaborated = False
        design._simulated = False
        design._artifact_hash = self.content_hash
        return design

    def instantiate_model(self):
        """Instantiate and finalize straight to a runnable Model."""
        return self.instantiate().elaborate()

    # -- introspection -------------------------------------------------
    def size_report(self) -> Dict[str, int]:
        return {key: self.meta.get(key, 0)
                for key in ("signals", "processes", "lps", "channels")}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<DesignArtifact {self.name} "
                f"{self.content_hash[:12]} "
                f"{self.meta.get('lps', '?')} LPs>")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, DesignArtifact)
                and other.content_hash == self.content_hash)

    def __hash__(self) -> int:
        return hash(self.content_hash)

    # -- serialization -------------------------------------------------
    def to_bytes(self) -> bytes:
        """Framed, integrity-checked serialization (cache file format).

        Layout: magic, JSON header line (name/hash/meta/payload
        digest), pickled design payload.  :meth:`from_bytes` verifies
        the payload digest so a truncated or bit-flipped cache entry
        is detected instead of deserialized.
        """
        header = json.dumps({
            "name": self.name,
            "content_hash": self.content_hash,
            "meta": self.meta,
            "payload_sha256": hashlib.sha256(self.payload).hexdigest(),
        }, sort_keys=True).encode("utf-8")
        out = io.BytesIO()
        out.write(MAGIC)
        out.write(header)
        out.write(b"\n")
        out.write(self.payload)
        return out.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "DesignArtifact":
        if not blob.startswith(MAGIC):
            raise ArtifactError("not a repro artifact (bad magic)")
        body = blob[len(MAGIC):]
        newline = body.find(b"\n")
        if newline < 0:
            raise ArtifactError("truncated artifact header")
        try:
            header = json.loads(body[:newline].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as failure:
            raise ArtifactError(
                f"corrupt artifact header: {failure}") from failure
        payload = body[newline + 1:]
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("payload_sha256"):
            raise ArtifactError(
                "artifact payload digest mismatch (corrupt entry)")
        return cls(header["name"], header["content_hash"], payload,
                   header.get("meta"))


def snapshot_design(design, content_hash: Optional[str] = None,
                    meta: Optional[Dict] = None) -> DesignArtifact:
    """Convenience alias for :meth:`DesignArtifact.from_design`."""
    return DesignArtifact.from_design(design, content_hash=content_hash,
                                      meta=meta)


def build_artifact(source: str, top: str,
                   generics: Optional[Dict[str, Any]] = None,
                   traced: Union[bool, Tuple[str, ...]] = True,
                   name: Optional[str] = None,
                   exec_mode: str = "interp") -> DesignArtifact:
    """Parse + elaborate (+ lower) VHDL source into an artifact.

    The content hash is computed from the *inputs* via
    :func:`artifact_key`, so it is available without elaborating —
    which is exactly what lets :mod:`repro.vhdl.cache` skip this
    function entirely on a hit.
    """
    from .frontend import elaborate
    from .kernel import EXEC_MODES

    if exec_mode not in EXEC_MODES:
        raise ValueError(f"unknown exec mode {exec_mode!r}; pick from "
                         f"{EXEC_MODES}")
    design = elaborate(source, top=top, generics=generics,
                       traced=traced, name=name)
    if exec_mode == "compiled":
        from .compile import lower_design
        lower_design(design)
    key = artifact_key(source, top, generics=generics, traced=traced,
                       exec_mode=exec_mode)
    return DesignArtifact.from_design(
        design, content_hash=key,
        meta={"top": top, "generics": dict(generics or {}),
              "exec_mode": exec_mode})
