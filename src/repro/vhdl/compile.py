"""Compiled VHDL process bodies (ROADMAP item 3).

The tree-walking interpreter in :mod:`repro.vhdl.frontend.interp`
re-dispatches on AST node types for every statement and every
sub-expression of every event.  This module lowers each elaborated
process body ONCE into a flat program of specialized Python closures:

* every sequential statement becomes one (or a few) *ops* — closures
  ``op(api) -> next_pc | Wait`` stored in a flat list; control flow
  (if/case/loops/exit/next) is compiled to static jumps between op
  indices, patched via one-element cells at emission time;
* every signal read/write is resolved to its LP id at compile time, and
  every variable to a slot in a flat register file (``regs`` list), so
  the hot path does no dict lookups by name;
* wait statements become ops that record their resume point in an
  explicit, picklable :class:`Frame` (program counter + live loop
  records) before returning the kernel-level
  :class:`~repro.vhdl.process.Wait` — so Time-Warp rollback and
  procs-backend checkpointing keep working unchanged;
* constant sub-expressions are folded at compile time — but only by
  *running the compiled closure once with no API*: if that evaluation
  raises, the expression stays a runtime closure, so error semantics
  (which error, and when it fires) are bit-identical to the
  interpreter.

Semantic fidelity is the contract: the compiler mirrors the
interpreter's name-resolution order, evaluation order (including which
sub-expression raises first) and coercion rules exactly, and the
differential test matrix (``tests/test_compile_differential.py``)
holds it to bit-identical committed results across all circuits,
backends and protocols.

Compilation is *lazy*: a :class:`CompiledBody` pickles as its AST,
environment and plain-data state (the op closures are dropped) and
recompiles transparently on first use after unpickling.  Wait-until
predicates are :class:`_UntilThunk` objects — picklable references
``(body, index)`` into the body's compiled predicate table — instead
of the interpreter's nested (unpicklable) closures.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .process import ProcessAPI, ProcessBody, Wait
from .values import SL_Z, sl, slv
from .frontend import ast
from .frontend.interp import (
    _BUILTINS, Env, InterpretedBody, VhdlRuntimeError, VType,
    _apply_builtin, _as_vector, _eval_binary, _eval_const, _eval_unary,
    _expr_signal_names, _slice_positions, _target_parts, _truthy,
    _values_equal, coerce_value, collect_signal_drives,
    collect_signal_reads, resolve_type,
)

__all__ = ["CompiledBody", "Frame", "lower_design"]

#: Sentinel: "this sub-expression is not a compile-time constant".
_NOT_CONST = object()

#: Operators whose left operand receives the ``expected`` type hint
#: (mirrors the interpreter's ``evaluate`` for Binary nodes).
_EXPECTED_OPS = ("and", "or", "xor", "nand", "nor", "xnor", "&")


def _rem_int(li: int, ri: int) -> int:
    value = abs(li) % abs(ri)
    return -value if li < 0 else value


#: Monomorphic fast paths for ``int op int``, taken only when both
#: operands are exactly ``int`` (``bool`` falls back — the interpreter
#: treats it as a logic operand first).  Each entry computes exactly
#: what ``_eval_binary`` computes for two plain integers, including the
#: same ``ZeroDivisionError`` on a zero divisor.
_INT_BINOPS = {
    "+": lambda li, ri: li + ri,
    "-": lambda li, ri: li - ri,
    "*": lambda li, ri: li * ri,
    "/": lambda li, ri: li // ri,
    "mod": lambda li, ri: li % ri,
    "rem": _rem_int,
    "**": lambda li, ri: li ** ri,
    "=": lambda li, ri: li == ri,
    "/=": lambda li, ri: li != ri,
    "<": lambda li, ri: li < ri,
    ">": lambda li, ri: li > ri,
    "<=": lambda li, ri: li <= ri,
    ">=": lambda li, ri: li >= ri,
}


class Frame:
    """The picklable resume point of a compiled process body.

    ``pc`` is the index of the op to run next; ``loops`` the stack of
    live for-loop records ``[current, stop]`` (innermost last).  Plain
    integers all the way down, so snapshots are cheap tuples and the
    frame round-trips through pickle bit-identically — the property
    Time Warp and procs-backend checkpointing rely on.
    """

    __slots__ = ("pc", "loops")

    def __init__(self) -> None:
        self.pc = 0
        self.loops: List[list] = []

    def snapshot(self) -> Tuple[int, Tuple[Tuple[int, int], ...]]:
        return (self.pc, tuple(tuple(rec) for rec in self.loops))

    def restore(self, snap) -> None:
        pc, loops = snap
        self.pc = pc
        self.loops[:] = [list(rec) for rec in loops]

    def __eq__(self, other) -> bool:
        return (isinstance(other, Frame) and self.pc == other.pc
                and self.loops == other.loops)

    def __repr__(self) -> str:
        return f"Frame(pc={self.pc}, loops={self.loops})"

    def __getstate__(self):
        return self.snapshot()

    def __setstate__(self, state) -> None:
        self.loops = []
        self.restore(state)


class _UntilThunk:
    """A picklable ``wait until`` predicate.

    The interpreter builds a fresh nested closure per wait execution,
    which cannot be pickled; the compiled body instead registers each
    until-expression in a table and hands the kernel this thunk.  After
    unpickling, the first call transparently recompiles the body's
    program and re-resolves the table entry (same AST, same order, so
    indices are stable).
    """

    __slots__ = ("body", "index")

    def __init__(self, body: "CompiledBody", index: int) -> None:
        self.body = body
        self.index = index

    def __call__(self, api: ProcessAPI) -> bool:
        return self.body._until(self.index, api)

    def __getstate__(self):
        return (self.body, self.index)

    def __setstate__(self, state) -> None:
        self.body, self.index = state


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------
class _Compiler:
    """Lowers one process AST into a flat op list for ``body``.

    Ops capture the body's *identity-stable* containers (``regs``,
    ``frame.loops``, ``reports``, ``driving``) directly, so restores
    that mutate those containers in place are visible without
    recompiling.
    """

    def __init__(self, body: "CompiledBody") -> None:
        self.body = body
        self.process = body.process
        self.env = body.env
        self.regs = body.regs
        self.frame = body.frame
        self.loops = body.frame.loops
        self.reports = body.reports
        self.driving = body.driving
        self.ops: List[Callable] = []
        #: Static scope: variable name -> register slot.  Tracks the
        #: interpreter's runtime ``name in self.vars`` exactly, because
        #: loop variables enter/leave ``vars`` lexically.
        self.scope: Dict[str, int] = {}
        #: Declared-variable types by NAME (the interpreter's
        #: ``var_types`` is name-keyed and ignores loop shadowing).
        self.vtypes: Dict[str, VType] = {}
        self.nslots = 0
        self.untils: List[Callable] = []
        #: Compile-time loop nesting: (kind, end_cell, continue_cell).
        self.loop_stack: List[Tuple[str, list, list]] = []

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def compile(self):
        plan = tuple(self._declarations())
        regs = self.regs
        driving = self.driving
        sig_names = tuple(self.env.signals)

        def prologue(api, _plan=plan, _regs=regs, _driving=driving,
                     _names=sig_names):
            for slot, init in _plan:
                _regs[slot] = init(api)
            for name in _names:
                _driving.setdefault(name, None)
            return 1

        self._emit(prologue)
        self._stmts(self.process.body)
        frame = self.frame
        if self.process.sensitivity:
            # Implicit ``wait on <sensitivity>``; desugared concurrent
            # assignments may list constants, only signals can wake.
            ids = frozenset(self.env.signals[n].lp_id
                            for n in self.process.sensitivity
                            if n in self.env.signals)
            wait = Wait(on=ids)

            def end(api, _f=frame, _w=wait):
                _f.pc = 1
                return _w
        else:
            def end(api):
                return 1  # VHDL processes loop forever

        self._emit(end)
        return self.ops, self.nslots, self.untils

    def _declarations(self):
        """Compile the declarative part into (slot, init_fn) pairs.

        Each initializer is compiled against the scope-so-far, matching
        the interpreter's in-order evaluation where each name's initial
        expression sees only earlier names.
        """
        plan = []
        for decl in self.process.declarations:
            if isinstance(decl, ast.VariableDecl):
                vtype = resolve_type(decl.type_mark, self._const)
                for name in decl.names:
                    if decl.initial is not None:
                        vfn = self._expr(decl.initial, vtype)[0]

                        def init(api, _f=vfn, _vt=vtype):
                            return coerce_value(_f(api), _vt)
                    else:
                        default = vtype.default()

                        def init(api, _d=default):
                            return _d
                    slot = self._new_slot()
                    self.scope[name] = slot
                    self.vtypes[name] = vtype
                    plan.append((slot, init))
            elif isinstance(decl, ast.ConstantDecl):
                vtype = resolve_type(decl.type_mark, self._const)
                for name in decl.names:
                    vfn = self._expr(decl.value, vtype)[0]

                    def init(api, _f=vfn, _vt=vtype):
                        return coerce_value(_f(api), _vt)
                    slot = self._new_slot()
                    self.scope[name] = slot
                    plan.append((slot, init))
        return plan

    def _const(self, expr: ast.Expr) -> Any:
        return _eval_const(expr, self.env.constants)

    def _new_slot(self) -> int:
        slot = self.nslots
        self.nslots += 1
        return slot

    def _emit(self, op: Callable) -> None:
        self.ops.append(op)

    def _here(self) -> int:
        return len(self.ops)

    def _jump(self, cell: list) -> None:
        self._emit(lambda api, _c=cell: _c[0])

    def _raise_op(self, message: str) -> None:
        """An op that raises when *executed* — the compiler must not
        report errors the interpreter only hits at execution time."""

        def op(api, _m=message):
            raise VhdlRuntimeError(_m)

        self._emit(op)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _stmts(self, stmts: Sequence[ast.Stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.SignalAssign):
            self._signal_assign(stmt)
        elif isinstance(stmt, ast.VarAssign):
            self._var_assign(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._if(stmt)
        elif isinstance(stmt, ast.CaseStmt):
            self._case(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._for(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._while(stmt)
        elif isinstance(stmt, ast.WaitStmt):
            self._wait(stmt)
        elif isinstance(stmt, ast.NullStmt):
            pass
        elif isinstance(stmt, ast.ReportStmt):
            self._report(stmt)
        elif isinstance(stmt, ast.AssertStmt):
            self._assert(stmt)
        elif isinstance(stmt, ast.ExitStmt):
            self._exit_next(stmt, drop_loop=True)
        elif isinstance(stmt, ast.NextStmt):
            self._exit_next(stmt, drop_loop=False)
        else:
            self._raise_op(f"unsupported statement {type(stmt)}")

    def _signal_assign(self, stmt: ast.SignalAssign) -> None:
        try:
            name, index, slice_ = _target_parts(stmt.target)
        except VhdlRuntimeError as err:
            self._raise_op(str(err))
            return
        if name not in self.env.signals:
            self._raise_op(f"unknown signal {name!r}")
            return
        ref = self.env.signals[name]
        rjfn = (None if stmt.reject is None
                else self._expr(stmt.reject, None)[0])
        full = index is None and slice_ is None
        expected = ref.vtype if full else None
        wf = tuple((self._expr(value, expected)[0],
                    None if delay is None else self._expr(delay, None)[0])
                   for value, delay in stmt.waveform)
        driving = self.driving
        lp_id = ref.lp_id
        transport = stmt.transport
        nxt = self._here() + 1
        simple = rjfn is None and len(wf) == 1 and wf[0][1] is None
        if full:
            vt = ref.vtype
            if simple:
                # The hot shape — one value, no delay, no reject —
                # skips the per-execution waveform list entirely.
                vfn0 = wf[0][0]

                def op(api):
                    value = coerce_value(vfn0(api), vt)
                    driving[name] = value
                    api.assign_waveform(lp_id, [(value, 0)], transport,
                                        None)
                    return nxt

                self._emit(op)
                return

            def op(api):
                reject = None if rjfn is None else int(rjfn(api))
                waveform = []
                for vfn, dfn in wf:
                    delay = 0 if dfn is None else int(dfn(api))
                    waveform.append((vfn(api), delay))
                coerced = [(coerce_value(v, vt), d) for v, d in waveform]
                driving[name] = coerced[0][0]
                api.assign_waveform(lp_id, coerced, transport, reject)
                return nxt

            self._emit(op)
            return
        # Element/slice assignment goes through the per-process driving
        # cache; shared signals contribute 'Z' on untouched elements
        # (see SignalRef).  ``place(api, base, value)`` writes one
        # waveform value into the mutable base — with the target
        # positions resolved at compile time whenever the index/slice
        # bounds are constants (the overwhelmingly common shape).
        if index is not None:
            ifn, ic = self._expr(index, None)
            pos0 = None
            if ic is not _NOT_CONST:
                try:
                    pos0 = ref.vtype.position(int(ic))
                except Exception:
                    pos0 = None  # raise at execution time, like interp
            if pos0 is not None:
                def place(api, base, value, _p=pos0):
                    base[_p] = sl(value)
            else:
                def place(api, base, value):
                    pos = ref.vtype.position(int(ifn(api)))
                    base[pos] = sl(value)
        else:
            lfn, lc = self._expr(slice_[0], None)
            rfn, rc = self._expr(slice_[1], None)
            positions0 = None
            if lc is not _NOT_CONST and rc is not _NOT_CONST:
                try:
                    positions0 = _slice_positions(ref.vtype, int(lc),
                                                  int(rc))
                except Exception:
                    positions0 = None

            if positions0 is not None:
                def place(api, base, value, _ps=positions0):
                    value_vec = _as_vector(value, len(_ps))
                    for p, bit in zip(_ps, value_vec):
                        base[p] = bit
            else:
                def place(api, base, value):
                    positions = _slice_positions(ref.vtype,
                                                 int(lfn(api)),
                                                 int(rfn(api)))
                    value_vec = _as_vector(value, len(positions))
                    for p, bit in zip(positions, value_vec):
                        base[p] = bit

        def read_base(api):
            base = driving.get(name)
            if base is None:
                if ref.shared:
                    base = (SL_Z,) * ref.vtype.width
                else:
                    base = api.read(lp_id)
            return list(base)

        if simple:
            vfn0 = wf[0][0]

            def op(api):
                base = read_base(api)
                place(api, base, vfn0(api))
                out = tuple(base)
                driving[name] = out
                api.assign_waveform(lp_id, [(out, 0)], transport, None)
                return nxt

            self._emit(op)
            return

        def op(api):
            reject = None if rjfn is None else int(rjfn(api))
            waveform = []
            for vfn, dfn in wf:
                delay = 0 if dfn is None else int(dfn(api))
                waveform.append((vfn(api), delay))
            base = read_base(api)
            out_waveform = []
            for value, delay in waveform:
                place(api, base, value)
                out_waveform.append((tuple(base), delay))
            driving[name] = out_waveform[-1][0]
            api.assign_waveform(lp_id, out_waveform, transport, reject)
            return nxt

        self._emit(op)

    def _var_assign(self, stmt: ast.VarAssign) -> None:
        try:
            name, index, slice_ = _target_parts(stmt.target)
        except VhdlRuntimeError as err:
            self._raise_op(str(err))
            return
        if name not in self.scope:
            self._raise_op(f"unknown variable {name!r}")
            return
        slot = self.scope[name]
        vtype = self.vtypes.get(name)
        regs = self.regs
        nxt = self._here() + 1
        if index is None and slice_ is None:
            vfn = self._expr(stmt.value, vtype)[0]
            if vtype is not None:
                def op(api):
                    regs[slot] = coerce_value(vfn(api), vtype)
                    return nxt
            else:
                def op(api):
                    regs[slot] = vfn(api)
                    return nxt
            self._emit(op)
            return
        vfn = self._expr(stmt.value, None)[0]
        if index is not None:
            ifn, ic = self._expr(index, None)
            pos0 = None
            if ic is not _NOT_CONST and vtype is not None:
                try:
                    pos0 = vtype.position(int(ic))
                except Exception:
                    pos0 = None
            if pos0 is not None:
                def op(api, _p=pos0):
                    base = list(regs[slot])
                    base[_p] = sl(vfn(api))
                    regs[slot] = tuple(base)
                    return nxt
            else:
                def op(api):
                    base = list(regs[slot])
                    # vtype may be None (e.g. a loop variable): the
                    # attribute lookup raises before the index
                    # expression is evaluated, exactly like the
                    # interpreter.
                    pos = vtype.position(int(ifn(api)))
                    base[pos] = sl(vfn(api))
                    regs[slot] = tuple(base)
                    return nxt
        else:
            lfn, lc = self._expr(slice_[0], None)
            rfn, rc = self._expr(slice_[1], None)
            positions0 = None
            if lc is not _NOT_CONST and rc is not _NOT_CONST and \
                    vtype is not None:
                try:
                    positions0 = _slice_positions(vtype, int(lc),
                                                  int(rc))
                except Exception:
                    positions0 = None
            if positions0 is not None:
                def op(api, _ps=positions0):
                    base = list(regs[slot])
                    value_vec = _as_vector(vfn(api), len(_ps))
                    for p, bit in zip(_ps, value_vec):
                        base[p] = bit
                    regs[slot] = tuple(base)
                    return nxt
            else:
                def op(api):
                    base = list(regs[slot])
                    positions = _slice_positions(vtype, int(lfn(api)),
                                                 int(rfn(api)))
                    value_vec = _as_vector(vfn(api), len(positions))
                    for p, bit in zip(positions, value_vec):
                        base[p] = bit
                    regs[slot] = tuple(base)
                    return nxt

        self._emit(op)

    def _if(self, stmt: ast.IfStmt) -> None:
        end_cell = [None]
        for condition, body in stmt.arms:
            cfn = self._expr(condition, None)[0]
            false_cell = [None]
            tpc = self._here() + 1

            def test(api, _c=cfn, _t=tpc, _f=false_cell):
                if _truthy(_c(api)):
                    return _t
                return _f[0]

            self._emit(test)
            self._stmts(body)
            self._jump(end_cell)
            false_cell[0] = self._here()
        if stmt.orelse:
            self._stmts(stmt.orelse)
        end_cell[0] = self._here()

    def _case(self, stmt: ast.CaseStmt) -> None:
        selfn = self._expr(stmt.selector, None)[0]
        end_cell = [None]
        entries = []
        for choices, _body in stmt.arms:
            cell = [None]
            if not choices:  # when others
                entries.append((None, cell))
            else:
                entries.append((tuple(self._expr(c, None)[0]
                                      for c in choices), cell))
        entries = tuple(entries)

        def dispatch(api, _s=selfn, _e=entries, _end=end_cell):
            selector = _s(api)
            for cfns, cell in _e:
                if cfns is None:
                    return cell[0]
                for cfn in cfns:
                    if _values_equal(selector, cfn(api)):
                        return cell[0]
            return _end[0]

        self._emit(dispatch)
        for (_choices, body), (_cfns, cell) in zip(stmt.arms, entries):
            cell[0] = self._here()
            self._stmts(body)
            self._jump(end_cell)
        end_cell[0] = self._here()

    def _for(self, stmt: ast.ForStmt) -> None:
        lowfn = self._expr(stmt.low, None)[0]
        highfn = self._expr(stmt.high, None)[0]
        step = -1 if stmt.downto else 1
        end_cell = [None]
        epi_cell = [None]
        loops = self.loops
        regs = self.regs
        # The loop variable gets a fresh slot; the previous binding (if
        # any) keeps its own slot untouched, which is exactly the
        # interpreter's shadow-save/restore, resolved statically.
        var = stmt.var
        had = var in self.scope
        saved_slot = self.scope.get(var)
        slot = self._new_slot()
        bpc = self._here() + 1

        def init(api, _e=end_cell):
            low = int(lowfn(api))
            high = int(highfn(api))
            if (step > 0 and low > high) or (step < 0 and low < high):
                return _e[0]  # empty range
            loops.append([low, high])
            regs[slot] = low
            return bpc

        self._emit(init)
        self.scope[var] = slot
        self.loop_stack.append(("for", end_cell, epi_cell))
        self._stmts(stmt.body)
        self.loop_stack.pop()
        if had:
            self.scope[var] = saved_slot
        else:
            del self.scope[var]
        epi_cell[0] = self._here()

        def epilogue(api, _e=end_cell):
            rec = loops[-1]
            nxt = rec[0] + step
            if (step > 0 and nxt > rec[1]) or (step < 0 and nxt < rec[1]):
                loops.pop()
                return _e[0]
            rec[0] = nxt
            regs[slot] = nxt
            return bpc

        self._emit(epilogue)
        end_cell[0] = self._here()

    def _while(self, stmt: ast.WhileStmt) -> None:
        cfn = self._expr(stmt.condition, None)[0]
        end_cell = [None]
        tpc = self._here()
        bpc = tpc + 1

        def test(api, _e=end_cell):
            if _truthy(cfn(api)):
                return bpc
            return _e[0]

        self._emit(test)
        self.loop_stack.append(("while", end_cell, [tpc]))
        self._stmts(stmt.body)
        self.loop_stack.pop()
        self._emit(lambda api: tpc)
        end_cell[0] = self._here()

    def _exit_next(self, stmt, drop_loop: bool) -> None:
        cfn = (None if stmt.condition is None
               else self._expr(stmt.condition, None)[0])
        nxt = self._here() + 1
        if not self.loop_stack:
            # Outside any loop this raises — but only if the condition
            # holds, and only at execution time.
            def op(api):
                if cfn is None or _truthy(cfn(api)):
                    raise VhdlRuntimeError("exit/next outside of a loop")
                return nxt

            self._emit(op)
            return
        kind, end_cell, cont_cell = self.loop_stack[-1]
        loops = self.loops
        if not drop_loop:  # next: jump to the loop's advance point
            def op(api, _c=cont_cell):
                if cfn is None or _truthy(cfn(api)):
                    return _c[0]
                return nxt
        elif kind == "for":  # exit: drop the live loop record
            def op(api, _e=end_cell):
                if cfn is None or _truthy(cfn(api)):
                    loops.pop()
                    return _e[0]
                return nxt
        else:
            def op(api, _e=end_cell):
                if cfn is None or _truthy(cfn(api)):
                    return _e[0]
                return nxt

        self._emit(op)

    def _wait(self, stmt: ast.WaitStmt) -> None:
        on = set()
        for name in stmt.on:
            if name not in self.env.signals:
                self._raise_op(f"unknown signal {name!r}")
                return
            on.add(self.env.signals[name].lp_id)
        until = None
        if stmt.until is not None:
            if not stmt.on:
                # Implicit sensitivity: every signal in the condition.
                for name in _expr_signal_names(stmt.until, self.env):
                    on.add(self.env.signals[name].lp_id)
            index = len(self.untils)
            self.untils.append(self._expr(stmt.until, None)[0])
            until = _UntilThunk(self.body, index)
        onset = frozenset(on)
        frame = self.frame
        nxt = self._here() + 1
        if stmt.for_time is None:
            wait = Wait(on=onset, until=until, for_fs=None)

            def op(api, _f=frame, _w=wait):
                _f.pc = nxt
                return _w
        else:
            ffn = self._expr(stmt.for_time, None)[0]

            def op(api, _f=frame, _o=onset, _u=until):
                for_fs = int(ffn(api))
                _f.pc = nxt
                return Wait(on=_o, until=_u, for_fs=for_fs)

        self._emit(op)

    def _report(self, stmt: ast.ReportStmt) -> None:
        mfn = self._expr(stmt.message, None)[0]
        severity = stmt.severity or "note"
        reports = self.reports
        nxt = self._here() + 1

        def op(api):
            message = mfn(api)
            reports.append((severity, str(message)))
            return nxt

        self._emit(op)

    def _assert(self, stmt: ast.AssertStmt) -> None:
        cfn = self._expr(stmt.condition, None)[0]
        mfn = (None if stmt.message is None
               else self._expr(stmt.message, None)[0])
        severity = stmt.severity or "error"
        reports = self.reports
        nxt = self._here() + 1

        def op(api):
            if not _truthy(cfn(api)):
                message = ("assertion failed" if mfn is None
                           else str(mfn(api)))
                reports.append((severity, message))
                if severity in ("failure", "error"):
                    raise VhdlRuntimeError(
                        f"assertion ({severity}): {message}")
            return nxt

        self._emit(op)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _fold(self, fn: Callable, *consts) -> Tuple[Callable, Any]:
        """Fold ``fn`` iff every sub-expression is constant AND the
        one-shot evaluation succeeds; a raising constant expression
        stays a runtime closure so it raises when (and only when) the
        interpreter would."""
        if all(c is not _NOT_CONST for c in consts):
            try:
                value = fn(None)
            except Exception:
                return fn, _NOT_CONST
            return (lambda api, _v=value: _v), value
        return fn, _NOT_CONST

    def _expr(self, expr: ast.Expr,
              expected: Optional[VType]) -> Tuple[Callable, Any]:
        """Compile ``expr`` to ``fn(api) -> value`` plus its folded
        constant value (or ``_NOT_CONST``)."""
        if isinstance(expr, ast.CharLiteral):
            return self._fold(lambda api, _c=expr.value: sl(_c))
        if isinstance(expr, ast.StringLiteral):
            # Bit-string literal when every character is a std_logic
            # value; otherwise a plain string (report messages etc.).
            text = expr.value
            if text and all(c.upper() in "UX01ZWLH-" for c in text):
                value = slv(text)
            else:
                value = text
            return (lambda api, _v=value: _v), value
        if isinstance(expr, ast.IntLiteral):
            value = expr.value
            return (lambda api, _v=value: _v), value
        if isinstance(expr, ast.TimeLiteral):
            value = expr.femtoseconds
            return (lambda api, _v=value: _v), value
        if isinstance(expr, ast.Name):
            return self._name(expr.ident)
        if isinstance(expr, ast.Aggregate):
            return self._aggregate(expr, expected)
        if isinstance(expr, ast.Indexed):
            if isinstance(expr.base, ast.Name) and \
                    expr.base.ident in _BUILTINS:
                return self._builtin(expr.base.ident, (expr.index,))
            bfn = self._vector_base(expr.base)
            ifn, ic = self._expr(expr.index, None)
            if ic is not _NOT_CONST and isinstance(expr.base, ast.Name):
                # Constant index on a named base: resolve the element
                # position at compile time (signal reads keep paying
                # only the api.read).
                name = expr.base.ident
                ref = (None if name in self.scope
                       else self.env.signals.get(name))
                if ref is not None:
                    try:
                        pos = ref.vtype.position(int(ic))
                    except Exception:
                        pos = None  # out of range: raise at execution
                    if pos is not None:
                        lp_id = ref.lp_id

                        def fn(api, _lp=lp_id, _p=pos):
                            return api.read(_lp)[_p]

                        return fn, _NOT_CONST

            def fn(api):
                base, vtype = bfn(api)
                index = int(ifn(api))
                return base[vtype.position(index)]

            return fn, _NOT_CONST
        if isinstance(expr, ast.Sliced):
            bfn = self._vector_base(expr.base)
            lfn = self._expr(expr.left, None)[0]
            rfn = self._expr(expr.right, None)[0]

            def fn(api):
                base, vtype = bfn(api)
                positions = _slice_positions(vtype, int(lfn(api)),
                                             int(rfn(api)))
                return tuple(base[p] for p in positions)

            return fn, _NOT_CONST
        if isinstance(expr, ast.Attribute):
            return self._attribute(expr)
        if isinstance(expr, ast.Unary):
            ofn, oc = self._expr(expr.operand, expected)
            op = expr.op
            return self._fold(lambda api: _eval_unary(op, ofn(api)), oc)
        if isinstance(expr, ast.Binary):
            op = expr.op
            lfn, lc = self._expr(expr.left,
                                 expected if op in _EXPECTED_OPS else None)
            rfn, rc = self._expr(expr.right, None)
            fast = _INT_BINOPS.get(op)
            if fast is not None:
                def fn(api):
                    left = lfn(api)
                    right = rfn(api)
                    if type(left) is int and type(right) is int:
                        return fast(left, right)
                    return _eval_binary(op, left, right)
            else:
                def fn(api):
                    left = lfn(api)
                    right = rfn(api)
                    return _eval_binary(op, left, right)

            return self._fold(fn, lc, rc)
        if isinstance(expr, ast.Call):
            return self._builtin(expr.func, expr.args)
        message = f"cannot evaluate {expr!r}"

        def fn(api, _m=message):
            raise VhdlRuntimeError(_m)

        return fn, _NOT_CONST

    def _name(self, name: str) -> Tuple[Callable, Any]:
        # Resolution order mirrors the interpreter's ``_eval_name``:
        # variables, process/design constants, signals, booleans,
        # single-character std_logic literals, then error.
        if name in self.scope:
            regs = self.regs
            slot = self.scope[name]
            return (lambda api, _r=regs, _s=slot: _r[_s]), _NOT_CONST
        if name in self.env.constants:
            value = self.env.constants[name]
            return (lambda api, _v=value: _v), value
        if name in self.env.signals:
            lp_id = self.env.signals[name].lp_id
            return (lambda api, _lp=lp_id: api.read(_lp)), _NOT_CONST
        if name == "true":
            return (lambda api: True), True
        if name == "false":
            return (lambda api: False), False
        if len(name) == 1 and name.upper() in "UX01ZWLH-":
            value = sl(name)
            return (lambda api, _v=value: _v), value
        message = f"unknown name {name!r}"

        def fn(api, _m=message):
            raise VhdlRuntimeError(_m)

        return fn, _NOT_CONST

    def _aggregate(self, expr: ast.Aggregate,
                   expected: Optional[VType]) -> Tuple[Callable, Any]:
        if expected is None or expected.kind != "vector":
            if expr.others is not None and not expr.positional:
                self_msg = "(others => ...) needs a known target width"

                def fn(api, _m=self_msg):
                    raise VhdlRuntimeError(_m)

                return fn, _NOT_CONST
            pairs = [self._expr(e, None) for e in expr.positional]
            fns = tuple(f for f, _c in pairs)

            def fn(api, _fns=fns):
                return tuple(sl(f(api)) for f in _fns)

            return self._fold(fn, *(c for _f, c in pairs))
        width = expected.width
        pairs = [self._expr(e, None) for e in expr.positional]
        fns = tuple(f for f, _c in pairs)
        consts = [c for _f, c in pairs]
        ofn = None
        if expr.others is not None:
            ofn, oc = self._expr(expr.others, None)
            consts.append(oc)

        def fn(api, _fns=fns, _o=ofn, _w=width):
            bits = [sl(f(api)) for f in _fns]
            if _o is not None:
                fill = sl(_o(api))
                bits = bits + [fill] * (_w - len(bits))
            if len(bits) != _w:
                raise VhdlRuntimeError(
                    f"aggregate width {len(bits)} vs target {_w}")
            return tuple(bits)

        return self._fold(fn, *consts)

    def _attribute(self, expr: ast.Attribute) -> Tuple[Callable, Any]:
        if not isinstance(expr.base, ast.Name):
            message = "attributes only on simple names"

            def fn(api, _m=message):
                raise VhdlRuntimeError(_m)

            return fn, _NOT_CONST
        name = expr.base.ident
        attr = expr.attr
        if attr == "event":
            if name not in self.env.signals:
                message = f"unknown signal {name!r}"

                def fn(api, _m=message):
                    raise VhdlRuntimeError(_m)

                return fn, _NOT_CONST
            lp_id = self.env.signals[name].lp_id
            return (lambda api, _lp=lp_id: api.event_on(_lp)), _NOT_CONST
        if attr == "length":
            bfn = self._vector_base(expr.base)

            def fn(api):
                base, _vtype = bfn(api)
                return len(base)

            return fn, _NOT_CONST
        message = f"unsupported attribute '{attr}"

        def fn(api, _m=message):
            raise VhdlRuntimeError(_m)

        return fn, _NOT_CONST

    def _vector_base(self, expr: ast.Expr) -> Callable:
        """Compile to ``fn(api) -> (value, vtype)``, mirroring the
        interpreter's ``_eval_vector_base`` resolution order."""
        if isinstance(expr, ast.Name):
            name = expr.ident
            if name in self.scope:
                regs = self.regs
                slot = self.scope[name]
                vtype = self.vtypes.get(name)
                if vtype is not None:
                    def fn(api, _r=regs, _s=slot, _vt=vtype):
                        return _r[_s], _vt
                else:
                    def fn(api, _r=regs, _s=slot):
                        value = _r[_s]
                        return value, VType("vector", len(value) - 1, 0,
                                            True)
                return fn
            if name in self.env.signals:
                ref = self.env.signals[name]

                def fn(api, _lp=ref.lp_id, _vt=ref.vtype):
                    return api.read(_lp), _vt

                return fn
        vfn = self._expr(expr, None)[0]

        def fn(api):
            value = vfn(api)
            return value, VType("vector", len(value) - 1, 0, True)

        return fn

    def _builtin(self, func: str,
                 arg_exprs: Sequence[ast.Expr]) -> Tuple[Callable, Any]:
        pairs = [self._expr(a, None) for a in arg_exprs]
        fns = tuple(f for f, _c in pairs)
        first = arg_exprs[0] if arg_exprs else None
        if func in ("rising_edge", "falling_edge"):
            # The interpreter evaluates arguments BEFORE checking the
            # name/event, so even "dead" edge calls must evaluate.
            if not isinstance(first, ast.Name):
                message = f"{func} needs a signal name"
            elif first.ident not in self.env.signals:
                message = f"unknown signal {first.ident!r}"
            else:
                lp_id = self.env.signals[first.ident].lp_id
                rising = func == "rising_edge"

                def fn(api, _fns=fns, _lp=lp_id, _r=rising):
                    args = [f(api) for f in _fns]
                    if not api.event_on(_lp):
                        return False
                    try:
                        level = args[0].to_bool()
                    except (AttributeError, ValueError):
                        return False
                    return level if _r else not level

                return fn, _NOT_CONST

            def fn(api, _fns=fns, _m=message):
                for f in _fns:
                    f(api)
                raise VhdlRuntimeError(_m)

            return fn, _NOT_CONST

        # Every other builtin (and the unknown-function error) shares
        # the interpreter's _apply_builtin verbatim.
        def fn(api, _func=func, _fns=fns):
            return _apply_builtin(_func, [f(api) for f in _fns],
                                  None, None, None)

        return self._fold(fn, *(c for _f, c in pairs))


# ---------------------------------------------------------------------------
# The compiled body
# ---------------------------------------------------------------------------
class CompiledBody(ProcessBody):
    """Executes a VHDL process as a flat program of compiled closures.

    Drop-in replacement for
    :class:`~repro.vhdl.frontend.interp.InterpretedBody`: same wiring,
    same committed results (held bit-identical by the differential test
    matrix), same checkpointability — but the state is a flat register
    file plus a tiny :class:`Frame` instead of a name dict and a stack
    of statement frames.
    """

    checkpointable = True

    def __init__(self, process: ast.ProcessStmt, env: Env) -> None:
        self.process = process
        self.env = env
        # Validate declared variable types eagerly, like the
        # interpreter's constructor does.
        for decl in process.declarations:
            if isinstance(decl, ast.VariableDecl):
                resolve_type(decl.type_mark, self._const)
        # Identity-stable containers: the compiled ops capture these
        # directly, and restore() mutates them in place.
        self.regs: List[Any] = []
        self.frame = Frame()
        self.reports: List[Tuple[str, str]] = []
        self.driving: Dict[str, Any] = {}
        self._ops: Optional[List[Callable]] = None
        self._nslots = 0
        self._untils: List[Callable] = []

    def _const(self, expr: ast.Expr) -> Any:
        return _eval_const(expr, self.env.constants)

    # ------------------------------------------------------------------
    # Wiring introspection (used by the elaborator)
    # ------------------------------------------------------------------
    def reads(self) -> Sequence[int]:
        names = collect_signal_reads(self.process, self.env)
        return sorted({self.env.signal(n).lp_id for n in names})

    def drives(self) -> Sequence[int]:
        names = collect_signal_drives(self.process.body, self.env)
        return sorted({self.env.signal(n).lp_id for n in names})

    # ------------------------------------------------------------------
    # Program management
    # ------------------------------------------------------------------
    def _ensure_program(self) -> None:
        if self._ops is None:
            compiler = _Compiler(self)
            self._ops, self._nslots, self._untils = compiler.compile()
            if len(self.regs) < self._nslots:
                self.regs.extend(
                    [None] * (self._nslots - len(self.regs)))

    def _until(self, index: int, api: ProcessAPI) -> bool:
        self._ensure_program()
        return _truthy(self._untils[index](api))

    # ------------------------------------------------------------------
    # ProcessBody interface
    # ------------------------------------------------------------------
    def start(self, api: ProcessAPI) -> Wait:
        self._ensure_program()
        self.regs[:] = [None] * self._nslots
        self.frame.pc = 0
        del self.frame.loops[:]
        return self._execute(api)

    def resume(self, api: ProcessAPI) -> Wait:
        self._ensure_program()
        return self._execute(api)

    def _execute(self, api: ProcessAPI) -> Wait:
        ops = self._ops
        pc = self.frame.pc
        steps = 0
        while True:
            steps += 1
            if steps > 1_000_000:
                raise VhdlRuntimeError(
                    f"process {self.process.label or '?'}: more than 1e6 "
                    f"steps without a wait (infinite zero-time loop?)")
            target = ops[pc](api)
            if target.__class__ is int:
                pc = target
            else:
                return target  # a Wait; the op recorded frame.pc

    def snapshot(self) -> Any:
        return (tuple(self.regs), self.frame.snapshot(),
                tuple(self.reports), dict(self.driving))

    def restore(self, snap: Any) -> None:
        if snap is None:
            return
        regs, frame, reports, driving = snap
        self.regs[:] = regs
        self.frame.restore(frame)
        self.reports[:] = reports
        self.driving.clear()
        self.driving.update(driving)

    # ------------------------------------------------------------------
    # Pickling: ship AST + environment + plain state; the compiled ops
    # are rebuilt lazily on the other side.
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {"process": self.process, "env": self.env,
                "regs": list(self.regs), "frame": self.frame.snapshot(),
                "reports": list(self.reports),
                "driving": dict(self.driving)}

    def __setstate__(self, state) -> None:
        self.process = state["process"]
        self.env = state["env"]
        self.regs = list(state["regs"])
        self.frame = Frame()
        self.frame.restore(state["frame"])
        self.reports = list(state["reports"])
        self.driving = dict(state["driving"])
        self._ops = None
        self._nslots = 0
        self._untils = []


# ---------------------------------------------------------------------------
# The lowering pass
# ---------------------------------------------------------------------------
def lower_design(design) -> int:
    """Swap every interpreted process body in ``design`` for a compiled
    one.  Wiring is untouched (reads/drives are AST-derived and
    identical); must run before the design is elaborated/simulated.
    Returns the number of processes lowered."""
    count = 0
    for lp in design.processes:
        body = lp.body
        if isinstance(body, InterpretedBody):
            lp.body = CompiledBody(body.process, body.env)
            count += 1
    return count
