"""Failure triage: signatures that deduplicate campaign failures.

A fuzzing campaign rediscovers the same bug over and over — the same
root cause manifesting across many seeds, topologies and schedules.
Triage collapses those manifestations into one **failure signature**
so the corpus records each distinct bug once:

* the **primary violation kind** — the highest-priority category
  (prefix before ``":"``, see
  :data:`repro.harness.invariants.VIOLATION_KINDS`) among the run's
  violations.  Safety kinds outrank ``protocol-error``: an ordering
  bug frequently *also* livelocks the engine (the missequenced commit
  wedges GVT), and a run that committed out of order and then stalled
  is the same bug as one that committed out of order and terminated.
  Ranking the stall first would split one root cause into two
  signatures;
* the **stall shape** — backend plus digit-stripped diagnosis reason
  from the :class:`~repro.resilience.report.StallReport` — but only
  when the primary kind *is* ``protocol-error``: a pure liveness
  failure is characterized by how it stalled, a safety failure by what
  it violated.

The shrunk trace fingerprint deliberately stays **out** of the
signature: two interleavings of the same bug shrink to different
traces, and keying on the fingerprint would defeat deduplication.  It
goes into the artifact metadata instead, where it distinguishes
reproductions without multiplying signatures.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..harness.invariants import VIOLATION_KINDS

#: Triage priority: safety kinds first, liveness (``protocol-error``)
#: last.  Everything else keeps the registry's order.
TRIAGE_PRIORITY: Tuple[str, ...] = tuple(
    [kind for kind in VIOLATION_KINDS if kind != "protocol-error"]
    + ["protocol-error"])

_RANK = {kind: rank for rank, kind in enumerate(TRIAGE_PRIORITY)}

_DIGITS = re.compile(r"0x[0-9a-fA-F]+|\d+")


def violation_kind(violation: str) -> str:
    """The registered category prefix of one violation string."""
    kind = violation.split(":", 1)[0].strip()
    return kind if kind in _RANK else "protocol-error"


def normalize_violation(violation: str) -> str:
    """Digit-stripped shape of a violation message.

    ``"commit-order: LP 7 committed (3000000, 2) after (4000000, 0)"``
    and the same violation at LP 12 with other times are the same bug;
    replacing every number (and hex literal) with ``#`` makes them
    compare equal.
    """
    return _DIGITS.sub("#", violation).strip()


def primary_kind(violations: List[str]) -> str:
    """Highest-priority violation category present in a run."""
    if not violations:
        raise ValueError("primary_kind() of a clean run")
    return min((violation_kind(v) for v in violations),
               key=lambda kind: _RANK[kind])


def stall_shape(stall_report) -> Optional[Tuple[str, str]]:
    """(backend, digit-stripped reason) of a diagnosed stall."""
    if stall_report is None:
        return None
    return (getattr(stall_report, "backend", "?"),
            _DIGITS.sub("#", getattr(stall_report, "reason", "")))


@dataclass(frozen=True)
class FailureSignature:
    """Deduplication key of one distinct campaign failure."""

    kind: str
    #: Stall forensics shape; populated only for pure liveness
    #: failures (``kind == "protocol-error"``).
    stall: Optional[Tuple[str, str]] = None

    def slug(self) -> str:
        """Filesystem-safe short name for artifact files."""
        slug = self.kind
        if self.stall is not None:
            words = re.sub(r"[^a-z0-9]+", "-",
                           self.stall[1].lower()).strip("-")
            slug += "-" + "-".join(words.split("-")[:4])
        return slug

    def describe(self) -> str:
        if self.stall is None:
            return self.kind
        return f"{self.kind} [{self.stall[0]}: {self.stall[1]}]"

    def to_dict(self) -> dict:
        data = {"kind": self.kind}
        if self.stall is not None:
            data["stall"] = list(self.stall)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FailureSignature":
        stall = data.get("stall")
        return cls(kind=data["kind"],
                   stall=tuple(stall) if stall else None)


def classify(report) -> FailureSignature:
    """Signature of a failing :class:`~repro.harness.check.RunReport`."""
    kind = primary_kind(report.violations)
    stall = None
    if kind == "protocol-error":
        stall = stall_shape(getattr(report, "stall_report", None))
    return FailureSignature(kind=kind, stall=stall)
