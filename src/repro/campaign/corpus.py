"""The on-disk failure corpus: artifacts plus a JSON index.

Layout of a corpus directory::

    corpus/
      corpus.json                      # the index (below)
      commit-order-0.json              # Schedule artifacts, one per
      protocol-error-no-gvt-...-1.json #   deduplicated failure

Each artifact is a plain :class:`repro.harness.schedule.Schedule`
JSON — exactly the format of the committed regression artifacts under
``tests/artifacts/`` — so ``repro check --replay`` (and the corpus
replay test) can re-execute it directly.  The index carries what the
Schedule format does not: the failure signature, the scenario that
found it (backend, fault plan, topology), and the shrunk trace
fingerprint.

The corpus doubles as a regression suite: re-running a campaign with a
populated corpus reports *new* signatures only, and promoting an
artifact into ``tests/artifacts/`` (after fixing the bug) turns it
into a permanent tier-1 replay test.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from ..harness.schedule import Schedule
from .axes import Scenario
from .triage import FailureSignature

INDEX_NAME = "corpus.json"
INDEX_VERSION = 1


class Corpus:
    """A directory of deduplicated, replayable failure artifacts."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.entries: List[Dict[str, Any]] = []
        self._signatures = set()
        index = os.path.join(root, INDEX_NAME)
        if os.path.exists(index):
            with open(index) as handle:
                data = json.load(handle)
            version = data.get("version")
            if version != INDEX_VERSION:
                raise ValueError(
                    f"unsupported corpus index version {version!r} "
                    f"(expected {INDEX_VERSION})")
            self.entries = list(data.get("entries", []))
            for entry in self.entries:
                self._signatures.add(
                    FailureSignature.from_dict(entry["signature"]))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def seen(self, signature: FailureSignature) -> bool:
        return signature in self._signatures

    def artifact_paths(self) -> List[str]:
        return [os.path.join(self.root, entry["artifact"])
                for entry in self.entries]

    # ------------------------------------------------------------------
    def record(self, signature: FailureSignature, schedule: Schedule,
               scenario: Scenario, trace_fingerprint: str = "",
               shrunk: bool = True,
               extra: Optional[Dict[str, Any]] = None) -> str:
        """Persist one new failure; returns the artifact path.

        Recording an already-seen signature is allowed (the caller
        normally filters with :meth:`seen`) and appends a second
        artifact rather than overwriting — losing a reproduction is
        worse than storing a duplicate.
        """
        os.makedirs(self.root, exist_ok=True)
        filename = f"{signature.slug()}-{len(self.entries)}.json"
        path = os.path.join(self.root, filename)
        schedule.save(path)
        entry: Dict[str, Any] = {
            "signature": signature.to_dict(),
            "artifact": filename,
            "scenario": scenario.to_dict(),
            "violations": list(schedule.violations),
            "trace_fingerprint": trace_fingerprint,
            "shrunk": shrunk,
        }
        if extra:
            entry.update(extra)
        self.entries.append(entry)
        self._signatures.add(signature)
        self._flush()
        return path

    def _flush(self) -> None:
        index = os.path.join(self.root, INDEX_NAME)
        with open(index, "w") as handle:
            json.dump({"version": INDEX_VERSION,
                       "entries": self.entries}, handle, indent=1)
            handle.write("\n")
