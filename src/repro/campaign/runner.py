"""The campaign loop: budgeted scenario execution, triage, corpus.

One scenario runs through the strongest check its backend supports:

* **model** — a controlled run (canonical or seeded-random schedule)
  on the modelled multiprocessor via :class:`repro.harness.Checker`:
  full trace-invariant scan plus the differential oracle.  Failures
  are shrunk with the harness's delta-debugging shrinker — the corpus
  stores a *minimal* replayable schedule, not the noisy original;
* **threads / procs** — a differential run via
  :func:`repro.harness.check_backend`: the OS picks the interleaving,
  the committed waves must be byte-identical to the sequential
  engine's.  No controlled schedule exists, so failures are recorded
  verbatim (the scenario itself — circuit seed, topology, fault
  plan — is the repro recipe).

The campaign runs scenarios until its wall-clock budget or scenario
cap is exhausted, folds every run's statistics into one
:class:`~repro.core.stats.RunStats` via ``merge``, and deduplicates
failures by :func:`~repro.campaign.triage.classify` signature against
the corpus.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.stats import RunStats
from ..harness.check import Checker, RunReport, check_backend
from ..harness.schedule import (DefaultScheduler, RandomScheduler,
                                ReplayScheduler, Schedule)
from .axes import Scenario, ScenarioSpace
from .corpus import Corpus
from .triage import FailureSignature, classify

#: Probe budget for shrinking one failure (each probe is a full
#: controlled run; campaign shrinks must not eat the whole campaign).
SHRINK_BUDGET = 32


def _make_checker(scenario: Scenario,
                  until: Optional[int] = None) -> Checker:
    return Checker(scenario.circuit,
                   circuit_seed=scenario.circuit_seed,
                   processors=scenario.processors,
                   protocol=scenario.protocol, until=until,
                   lazy_cancellation=scenario.lazy_cancellation,
                   max_steps=scenario.max_steps,
                   watchdog=scenario.max_steps,
                   circuit_params=scenario.params(),
                   fault_plan=scenario.fault_plan,
                   exec_mode=scenario.exec_mode,
                   # Fuzzing amortizes elaboration: each scenario's
                   # circuit is snapshotted once and every run (oracle
                   # + schedules, or oracle + backend) instantiates a
                   # fresh runtime from the shared artifact.
                   reuse_artifact=True)


@dataclass
class ScenarioOutcome:
    """One executed scenario plus its harness verdict."""

    scenario: Scenario
    report: RunReport
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.report.ok


def run_scenario(scenario: Scenario,
                 until: Optional[int] = None) -> ScenarioOutcome:
    """Execute one scenario through its backend's strongest check."""
    started = time.monotonic()
    if scenario.backend == "model":
        checker = _make_checker(scenario, until=until)
        scheduler = (DefaultScheduler() if scenario.schedule_seed is None
                     else RandomScheduler(scenario.schedule_seed))
        label = ("baseline" if scenario.schedule_seed is None
                 else f"random#{scenario.schedule_seed}")
        report = checker.run_schedule(scheduler, label)
    else:
        report = check_backend(
            scenario.circuit, backend=scenario.backend,
            protocol=scenario.protocol,
            processors=scenario.processors,
            circuit_seed=scenario.circuit_seed, until=until,
            circuit_params=scenario.params(),
            fault_plan=scenario.fault_plan,
            exec_mode=scenario.exec_mode,
            reuse_artifact=True,
            timeout_s=scenario.timeout_s)
    return ScenarioOutcome(scenario=scenario, report=report,
                           duration_s=time.monotonic() - started)


@dataclass
class CampaignSummary:
    """Aggregated result of one fuzzing campaign."""

    scenarios: int = 0
    failures: int = 0
    elapsed_s: float = 0.0
    #: Distinct scenario keys executed (the ISSUE's coverage floor
    #: counts these, not raw iterations).
    distinct: Set[Tuple] = field(default_factory=set)
    #: Runs per (backend, protocol) coverage cell.
    coverage: Counter = field(default_factory=Counter)
    #: Failing runs per deduplicated signature (includes signatures
    #: the corpus had already seen).
    signatures: Dict[FailureSignature, int] = field(default_factory=dict)
    #: Artifact paths newly written to the corpus this campaign.
    new_artifacts: List[str] = field(default_factory=list)
    #: Every run's engine statistics folded with ``RunStats.merge``.
    stats: RunStats = field(default_factory=RunStats)

    @property
    def ok(self) -> bool:
        return self.failures == 0

    def note(self, outcome: ScenarioOutcome) -> None:
        self.scenarios += 1
        self.distinct.add(outcome.scenario.key())
        self.coverage[(outcome.scenario.backend,
                       outcome.scenario.protocol)] += 1
        if outcome.report.stats is not None:
            self.stats.merge(outcome.report.stats)
        if not outcome.ok:
            self.failures += 1

    def describe(self) -> str:
        lines = [
            f"campaign: {self.scenarios} scenarios "
            f"({len(self.distinct)} distinct) in {self.elapsed_s:.1f}s, "
            + ("all clean" if self.ok
               else f"{self.failures} failing "
                    f"({len(self.signatures)} distinct signature(s))")]
        cells = sorted(self.coverage)
        lines.append("  coverage : " + " ".join(
            f"{backend}/{protocol}={self.coverage[(backend, protocol)]}"
            for backend, protocol in cells))
        lines.append(f"  events   : {self.stats.summary()}")
        if self.stats.fabric_sent:
            lines.append(f"  fabric   : {self.stats.fabric_summary()}")
        for signature, count in sorted(
                self.signatures.items(), key=lambda kv: -kv[1]):
            lines.append(f"  FAILURE  : {signature.describe()} "
                         f"x{count}")
        for path in self.new_artifacts:
            lines.append(f"  artifact : {path}")
        return "\n".join(lines)


class Campaign:
    """Budgeted fuzzing loop over a :class:`ScenarioSpace`."""

    def __init__(self, space: ScenarioSpace, budget_s: float = 60.0,
                 max_scenarios: Optional[int] = None,
                 corpus: Optional[Corpus] = None,
                 until: Optional[int] = None,
                 on_scenario: Optional[Callable] = None) -> None:
        self.space = space
        self.budget_s = budget_s
        self.max_scenarios = max_scenarios
        self.corpus = corpus
        self.until = until
        self.on_scenario = on_scenario

    # ------------------------------------------------------------------
    def _shrink_and_record(self, outcome: ScenarioOutcome,
                           signature: FailureSignature,
                           summary: CampaignSummary) -> None:
        """Minimize a *new* failure and persist it to the corpus."""
        scenario = outcome.scenario
        report = outcome.report
        shrunk = False
        decisions = list(report.decisions)
        fingerprint = report.trace_fingerprint
        violations = list(report.violations)
        # Shrinking replays the scenario dozens of times, so it is
        # reserved for fast failures: a diagnosed livelock runs to the
        # watchdog bound on *every* probe and would eat the whole
        # campaign budget for one artifact.
        if scenario.backend == "model" and decisions \
                and outcome.duration_s < 1.0:
            checker = _make_checker(scenario, until=self.until)
            decisions = checker.shrink(decisions, budget=SHRINK_BUDGET)
            replay = checker.run_schedule(
                ReplayScheduler(decisions), "shrunk-replay")
            if not replay.ok:
                shrunk = True
                fingerprint = replay.trace_fingerprint
                violations = list(replay.violations)
            else:  # over-shrunk (flaky failure): keep the original
                decisions = list(report.decisions)
        schedule = Schedule(
            circuit=scenario.circuit,
            circuit_seed=scenario.circuit_seed,
            processors=scenario.processors,
            protocol=scenario.protocol,
            decisions=decisions, label=report.label,
            violations=violations,
            lazy_cancellation=scenario.lazy_cancellation,
            circuit_params=scenario.params(),
            fault_plan=(scenario.fault_plan.to_dict()
                        if scenario.fault_plan is not None else None),
            exec_mode=scenario.exec_mode)
        path = self.corpus.record(
            signature, schedule, scenario,
            trace_fingerprint=fingerprint, shrunk=shrunk)
        summary.new_artifacts.append(path)

    def run(self) -> CampaignSummary:
        summary = CampaignSummary()
        started = time.monotonic()
        for scenario in self.space.generate():
            if time.monotonic() - started >= self.budget_s:
                break
            if self.max_scenarios is not None \
                    and summary.scenarios >= self.max_scenarios:
                break
            outcome = run_scenario(scenario, until=self.until)
            summary.note(outcome)
            if not outcome.ok:
                signature = classify(outcome.report)
                summary.signatures[signature] = \
                    summary.signatures.get(signature, 0) + 1
                if self.corpus is not None \
                        and not self.corpus.seen(signature):
                    self._shrink_and_record(outcome, signature, summary)
            if self.on_scenario is not None:
                self.on_scenario(outcome, summary)
        summary.elapsed_s = time.monotonic() - started
        return summary
