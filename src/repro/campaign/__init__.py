"""Continuous differential fuzzing campaign.

The conformance harness (:mod:`repro.harness`) can interrogate one
configuration very hard: explore schedules, scan traces with the
protocol invariants, diff against the sequential oracle, shrink a
failure to a replayable artifact.  What it cannot do by itself is pick
*which* configurations to interrogate.  This package is that driver — a
fuzzing orchestrator that composes every scenario axis the repo has
grown:

* **topology** — random-logic netlists over the generator's axis space
  (gates / registers / stimulus bits / cycles / fanout cap / delay
  palette, :data:`repro.circuits.random_logic.TOPOLOGY_SPACE`);
* **faults** — seeded :class:`~repro.fabric.plan.FaultPlan`\\ s (drop /
  duplicate / reorder / jitter / spike, occasionally processor crashes
  with checkpoint recovery);
* **schedules** — controlled seeded-random interleavings on the
  modelled machine (the OS picks for threads / procs);
* **lazy** — lazy cancellation on/off (modelled machine);

crossed with **backends** {model, threads, procs} × **protocols**
{optimistic, conservative, mixed, dynamic}.  Every scenario runs
through the differential oracle and the trace invariants under a
time/iteration budget; failures are shrunk with the harness's
delta-debugging shrinker into replayable JSON artifacts, deduplicated
by failure signature, and persisted to a corpus directory that doubles
as a regression suite (see ``tests/test_corpus_replay.py``).

Modules:

* :mod:`~repro.campaign.axes`   — the scenario space and its sampler;
* :mod:`~repro.campaign.runner` — budgeted campaign execution loop;
* :mod:`~repro.campaign.triage` — failure signatures and deduplication;
* :mod:`~repro.campaign.corpus` — the on-disk artifact corpus.
"""

from .axes import (ALL_AXES, BACKEND_PROTOCOLS, OPT_IN_BACKENDS,
                   Scenario, ScenarioSpace)
from .corpus import Corpus
from .runner import Campaign, CampaignSummary, ScenarioOutcome, run_scenario
from .triage import FailureSignature, classify, normalize_violation

__all__ = [
    "ALL_AXES", "BACKEND_PROTOCOLS", "OPT_IN_BACKENDS",
    "Scenario", "ScenarioSpace",
    "Corpus",
    "Campaign", "CampaignSummary", "ScenarioOutcome", "run_scenario",
    "FailureSignature", "classify", "normalize_violation",
]
