"""Scenario axes: what the fuzzing campaign can vary, and how it samples.

A :class:`Scenario` is one fully-specified configuration — circuit
topology, fault plan, backend, protocol, schedule seed, lazy
cancellation — everything needed to run it and to reproduce it.  It is
frozen and hashable so the campaign can count *distinct* scenarios by
value, not by object identity.

:class:`ScenarioSpace` is the seeded sampler.  It guarantees coverage
first — every enabled ``backend × protocol`` cell is emitted once
before any weighted sampling — then draws scenarios forever, weighted
toward the modelled backend (cheap, deterministic, and the only one
whose interleavings the harness can steer and shrink).  Real backends
(threads / procs) run fewer, more expensive scenarios where the OS
picks the interleaving; their value is differential, not exploratory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from ..circuits.random_logic import sample_topology
from ..fabric.plan import FaultPlan

#: Which protocols each backend can execute.  The dynamic (adaptive)
#: configuration exists only on the modelled machine; the real backends
#: run the static protocols.
BACKEND_PROTOCOLS: Dict[str, Tuple[str, ...]] = {
    "model": ("optimistic", "conservative", "mixed", "dynamic"),
    "threads": ("optimistic", "conservative", "mixed"),
    "procs": ("optimistic", "conservative", "mixed"),
    "dist": ("optimistic", "conservative", "mixed"),
}

#: Backends excluded from the default campaign mix.  The dist backend
#: spawns TCP worker daemons per scenario — far too slow for tier-1
#: fuzzing — so it only runs when named explicitly
#: (``repro fuzz --backends dist``).
OPT_IN_BACKENDS: Tuple[str, ...] = ("dist",)

#: Toggleable scenario axes (beyond the always-on backend × protocol
#: grid).  ``--axes`` on the CLI enables a subset.  ``"exec"`` adds
#: the process-execution-mode axis (interp × compiled, see
#: :data:`repro.vhdl.kernel.EXEC_MODES`): with it on, every
#: ``backend × protocol`` coverage cell is emitted once per mode.
ALL_AXES: Tuple[str, ...] = ("topology", "faults", "schedules", "lazy",
                             "exec")

#: Sampling weight per backend: the modelled machine is ~10x cheaper
#: per scenario and the only backend with controlled (shrinkable)
#: schedules, so it gets the bulk of the budget.
BACKEND_WEIGHTS: Dict[str, float] = {
    "model": 0.8, "threads": 0.1, "procs": 0.1,
    # Opt-in only (see OPT_IN_BACKENDS); when explicitly selected it
    # shares the real-backend share of the budget.
    "dist": 0.1,
}

#: Livelock guard for campaign runs.  Deliberately tighter than the
#: harness default (400k): a fuzzing campaign meets pathological
#: protocol × fault combinations on purpose, and a livelocked scenario
#: must fail fast enough that shrinking (dozens of re-runs) stays
#: inside the budget.  Healthy campaign circuits execute a few
#: thousand events; 60k is an order of magnitude of headroom.  The
#: same bound is used for the step watchdog, so marker-frozen spins
#: (which do not advance the step counter) are cut equally fast.
CAMPAIGN_MAX_STEPS = 60_000

#: Wall-clock guard for real-backend scenarios (seconds).
CAMPAIGN_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class Scenario:
    """One fully-specified fuzzing scenario (hashable by value)."""

    backend: str
    protocol: str
    circuit: str = "random"
    circuit_seed: int = 0
    #: Topology overrides as sorted ``(axis, value)`` pairs — a dict is
    #: unhashable; :meth:`params` rebuilds it for the builders.
    circuit_params: Tuple[Tuple[str, Any], ...] = ()
    processors: int = 2
    #: Modelled machine only: lazy cancellation on rollback.
    lazy_cancellation: bool = False
    #: Modelled machine only: seed of the controlled random schedule;
    #: ``None`` runs the canonical (all-defaults) interleaving.
    schedule_seed: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None
    #: Process execution mode ("interp" or "compiled").
    exec_mode: str = "interp"
    max_steps: int = CAMPAIGN_MAX_STEPS
    timeout_s: float = CAMPAIGN_TIMEOUT_S

    def params(self) -> Dict[str, Any]:
        return dict(self.circuit_params)

    def key(self) -> Tuple:
        """Identity of the scenario for distinct-coverage counting."""
        return (self.backend, self.protocol, self.circuit,
                self.circuit_seed, self.circuit_params, self.processors,
                self.lazy_cancellation, self.schedule_seed,
                self.fault_plan, self.exec_mode)

    def describe(self) -> str:
        parts = [f"{self.backend}/{self.protocol}",
                 f"{self.circuit}#{self.circuit_seed}",
                 f"p={self.processors}"]
        if self.exec_mode != "interp":
            parts.append(f"exec={self.exec_mode}")
        if self.circuit_params:
            parts.append("topo=" + ",".join(
                f"{k}={v}" for k, v in self.circuit_params
                if k != "delays"))
        if self.schedule_seed is not None:
            parts.append(f"sched={self.schedule_seed}")
        if self.lazy_cancellation:
            parts.append("lazy")
        if self.fault_plan is not None:
            parts.append(f"faults[{self.fault_plan.describe()}]")
        return " ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for the corpus index (informational; the replay
        recipe proper is the Schedule artifact next to it)."""
        data: Dict[str, Any] = {
            "backend": self.backend, "protocol": self.protocol,
            "circuit": self.circuit, "circuit_seed": self.circuit_seed,
            "processors": self.processors,
        }
        if self.circuit_params:
            data["circuit_params"] = {
                k: list(v) if isinstance(v, tuple) else v
                for k, v in self.circuit_params}
        if self.lazy_cancellation:
            data["lazy_cancellation"] = True
        if self.schedule_seed is not None:
            data["schedule_seed"] = self.schedule_seed
        if self.fault_plan is not None:
            data["fault_plan"] = self.fault_plan.to_dict()
        if self.exec_mode != "interp":
            data["exec_mode"] = self.exec_mode
        return data


def _freeze_params(params: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(
        (key, tuple(value) if isinstance(value, list) else value)
        for key, value in params.items()))


class ScenarioSpace:
    """Seeded scenario sampler: coverage cells first, then weighted.

    Deterministic: the same ``seed`` (and axis/backend configuration)
    yields the same scenario stream, so a campaign is as replayable as
    any single run.
    """

    def __init__(self, seed: int = 0,
                 backends: Optional[Sequence[str]] = None,
                 axes: Optional[Sequence[str]] = None,
                 circuit: str = "random",
                 processors: Sequence[int] = (2, 3)) -> None:
        self.seed = seed
        self.backends = tuple(backends) if backends else tuple(
            b for b in BACKEND_PROTOCOLS if b not in OPT_IN_BACKENDS)
        for backend in self.backends:
            if backend not in BACKEND_PROTOCOLS:
                raise ValueError(f"unknown backend {backend!r}; choose "
                                 f"from {sorted(BACKEND_PROTOCOLS)}")
        self.axes = frozenset(axes if axes is not None else ALL_AXES)
        unknown = self.axes - frozenset(ALL_AXES)
        if unknown:
            raise ValueError(f"unknown axes {sorted(unknown)}; choose "
                             f"from {list(ALL_AXES)}")
        self.circuit = circuit
        self.processors = tuple(processors)
        #: Execution modes in play: the exec axis doubles the coverage
        #: grid; without it every scenario interprets (the historical
        #: behaviour, bit-for-bit).
        self.exec_modes: Tuple[str, ...] = (
            ("interp", "compiled") if "exec" in self.axes
            else ("interp",))

    # ------------------------------------------------------------------
    def _sample_faults(self, rng: random.Random,
                       processors: int) -> Optional[FaultPlan]:
        """~40% of scenarios run over a misbehaving fabric."""
        if rng.random() >= 0.4:
            return None
        plan = FaultPlan(
            seed=rng.randrange(1 << 16),
            drop=rng.choice((0.0, 0.05, 0.15)),
            duplicate=rng.choice((0.0, 0.0, 0.05)),
            reorder=rng.choice((0.0, 0.1, 0.25)),
            jitter=rng.choice((0.0, 0.0, 2.0)),
            spike=rng.choice((0.0, 0.0, 0.02)))
        if not plan.faulty:
            # All-zero draw: keep the plan anyway as pure-jitter noise
            # would; a fabric-on-but-quiet run still exercises the
            # reliable layer's bookkeeping.
            plan = FaultPlan(seed=plan.seed, jitter=1.0)
        if rng.random() < 0.15:
            # Crash-recovery scenarios: one mid-run processor loss.
            plan = plan.with_crashes(
                (rng.randrange(5, 40), rng.randrange(processors)))
        return plan

    def _sample(self, rng: random.Random, backend: str,
                protocol: str, exec_mode: str = "interp") -> Scenario:
        params: Dict[str, Any] = {}
        if "topology" in self.axes:
            params = sample_topology(rng)
        schedule_seed = None
        if backend == "model" and "schedules" in self.axes \
                and rng.random() < 0.7:
            schedule_seed = rng.randrange(1 << 20)
        lazy = False
        if backend == "model" and "lazy" in self.axes \
                and protocol != "conservative":
            lazy = rng.random() < 0.5
        processors = rng.choice(self.processors)
        plan = None
        if "faults" in self.axes:
            plan = self._sample_faults(rng, processors)
        return Scenario(
            backend=backend, protocol=protocol, circuit=self.circuit,
            circuit_seed=rng.randrange(1 << 20),
            circuit_params=_freeze_params(params),
            processors=processors, lazy_cancellation=lazy,
            schedule_seed=schedule_seed, fault_plan=plan,
            exec_mode=exec_mode)

    # ------------------------------------------------------------------
    def cells(self) -> Tuple[Tuple[str, str, str], ...]:
        """Every enabled ``(backend, protocol, exec_mode)`` coverage
        cell.  Without the exec axis the third element is always
        ``"interp"``, so pre-compiler campaigns keep their old grid."""
        return tuple((backend, protocol, exec_mode)
                     for backend in self.backends
                     for protocol in BACKEND_PROTOCOLS[backend]
                     for exec_mode in self.exec_modes)

    def generate(self) -> Iterator[Scenario]:
        """Infinite scenario stream: coverage cells first, then
        weighted random sampling."""
        rng = random.Random(f"campaign/{self.seed}")
        for backend, protocol, exec_mode in self.cells():
            yield self._sample(rng, backend, protocol, exec_mode)
        weights = [BACKEND_WEIGHTS[b] for b in self.backends]
        while True:
            backend = rng.choices(self.backends, weights=weights)[0]
            protocol = rng.choice(BACKEND_PROTOCOLS[backend])
            exec_mode = rng.choice(self.exec_modes)
            yield self._sample(rng, backend, protocol, exec_mode)
