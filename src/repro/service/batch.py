"""The batched run service: elaborate once, simulate N times.

ROADMAP item 2's production shape: many parameterized simulation runs
of a few distinct designs.  The service is a small job queue that

* resolves each job's design to a :class:`~repro.vhdl.artifact.
  DesignArtifact` **once** — VHDL jobs go through the content-addressed
  elaboration cache (:mod:`repro.vhdl.cache`), builder jobs build and
  snapshot once, artifact jobs are already done;
* fans the runs onto a thread worker pool, each run instantiating a
  fresh runtime from the shared artifact (``instantiate()`` is the
  isolation boundary — runs share nothing mutable, so any backend and
  any exec mode can execute concurrently);
* aggregates per-run statistics into fleet totals with the existing
  :meth:`~repro.core.stats.RunStats.merge` algebra.

Threads, not a process pool, drive the fan-out deliberately: the heavy
parallelism lives *inside* the procs backend (whose workers are real
processes and must not be daemonic grandchildren of a process pool),
and sequential/model runs release the GIL often enough at this
granularity that batch throughput still scales with overlap between
elaboration-free runs.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..core.stats import RunStats
from ..vhdl.artifact import DesignArtifact
from ..vhdl.cache import ElabCache, cached_elaborate


@dataclass(frozen=True)
class RunSpec:
    """One parameterized run of a job's design."""

    label: str = ""
    backend: str = "seq"  # "seq"|"model"|"threads"|"procs"|"dist"
    protocol: str = "optimistic"
    processors: int = 1
    until: Optional[int] = None
    exec_mode: str = "interp"
    #: Extra machine kwargs (partition, quantum, start_method, ...).
    options: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class VhdlJob:
    """A design given as VHDL source (elaborated through the cache)."""

    source: str
    top: str
    generics: Optional[Dict[str, Any]] = None
    traced: Union[bool, Tuple[str, ...]] = True
    name: Optional[str] = None
    exec_mode: str = "interp"


#: A job's design: an artifact, VHDL source, or a zero-argument
#: builder returning a fresh (un-simulated) Design.
DesignSource = Union[DesignArtifact, VhdlJob, Callable[[], Any]]


@dataclass
class BatchJob:
    """One design plus the runs to fan out over it."""

    design: DesignSource
    runs: List[RunSpec]


@dataclass
class RunOutcome:
    """What one fan-out run produced."""

    job_index: int
    run_index: int
    spec: RunSpec
    content_hash: str
    result: Optional[Any] = None  # SimulationResult on success
    error: Optional[str] = None
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchResult:
    """Everything a fleet run produced, plus the amortization story."""

    outcomes: List[RunOutcome]
    #: Fleet totals: every successful run's stats merged.
    fleet: RunStats
    #: Distinct designs that had to be elaborated cold.
    elaborations: int
    #: Designs resolved from the elaboration cache.
    cache_hits: int
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failures(self) -> List[RunOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def summary(self) -> Dict[str, Any]:
        return {
            "runs": len(self.outcomes),
            "failed": len(self.failures),
            "elaborations": self.elaborations,
            "cache_hits": self.cache_hits,
            "events_committed": self.fleet.events_committed,
            "events_executed": self.fleet.events_executed,
            "rollbacks": self.fleet.rollbacks,
            "wall_time_s": round(self.wall_time_s, 3),
        }


def _execute(artifact: DesignArtifact, spec: RunSpec):
    """One run: fresh runtime from the shared artifact, any engine."""
    from ..vhdl.kernel import simulate, simulate_parallel

    design = artifact.instantiate()
    if spec.backend == "seq":
        return simulate(design, until=spec.until,
                        exec_mode=spec.exec_mode)
    return simulate_parallel(design, processors=spec.processors,
                             until=spec.until, protocol=spec.protocol,
                             backend=spec.backend,
                             exec_mode=spec.exec_mode, **spec.options)


class RunService:
    """Elaborate each distinct design once; fan N runs onto a pool."""

    def __init__(self, cache: Optional[ElabCache] = None,
                 max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.cache = cache
        self.max_workers = max_workers

    # ------------------------------------------------------------------
    def resolve(self, source: DesignSource) -> Tuple[DesignArtifact, str]:
        """Resolve a job's design to an artifact.

        Returns ``(artifact, how)`` with ``how`` one of ``"artifact"``
        (already snapshotted), ``"cache"`` (elaboration cache hit) or
        ``"cold"`` (had to elaborate/build).
        """
        if isinstance(source, DesignArtifact):
            return source, "artifact"
        if isinstance(source, VhdlJob):
            if self.cache is not None:
                artifact, hit = cached_elaborate(
                    source.source, source.top, generics=source.generics,
                    traced=source.traced, name=source.name,
                    exec_mode=source.exec_mode, cache=self.cache)
                return artifact, "cache" if hit else "cold"
            from ..vhdl.artifact import build_artifact
            return build_artifact(
                source.source, source.top, generics=source.generics,
                traced=source.traced, name=source.name,
                exec_mode=source.exec_mode), "cold"
        if callable(source):
            built = source()
            design = getattr(built, "design", built)
            return design.artifact(), "cold"
        raise TypeError(f"cannot resolve a design from {type(source)!r}")

    # ------------------------------------------------------------------
    def run_batch(self, jobs: List[BatchJob]) -> BatchResult:
        """Resolve every job's artifact, then fan out all runs."""
        start = time.monotonic()
        elaborations = 0
        cache_hits = 0
        resolved: List[DesignArtifact] = []
        for job in jobs:
            artifact, how = self.resolve(job.design)
            if how == "cold":
                elaborations += 1
            elif how == "cache":
                cache_hits += 1
            resolved.append(artifact)

        work: List[Tuple[int, int, DesignArtifact, RunSpec]] = []
        for job_index, job in enumerate(jobs):
            for run_index, spec in enumerate(job.runs):
                work.append((job_index, run_index,
                             resolved[job_index], spec))

        def one(item) -> RunOutcome:
            job_index, run_index, artifact, spec = item
            t0 = time.monotonic()
            outcome = RunOutcome(job_index=job_index,
                                 run_index=run_index, spec=spec,
                                 content_hash=artifact.content_hash)
            try:
                outcome.result = _execute(artifact, spec)
            except Exception as failure:  # noqa: BLE001 - per-run report
                outcome.error = f"{type(failure).__name__}: {failure}"
            outcome.duration_s = time.monotonic() - t0
            return outcome

        if self.max_workers == 1 or len(work) <= 1:
            outcomes = [one(item) for item in work]
        else:
            with ThreadPoolExecutor(
                    max_workers=min(self.max_workers,
                                    len(work))) as pool:
                outcomes = list(pool.map(one, work))

        fleet = RunStats()
        for outcome in outcomes:
            if outcome.result is not None:
                fleet.merge(outcome.result.stats)
        return BatchResult(outcomes=outcomes, fleet=fleet,
                           elaborations=elaborations,
                           cache_hits=cache_hits,
                           wall_time_s=time.monotonic() - start)


def run_fleet(artifact: DesignArtifact, specs: List[RunSpec],
              max_workers: int = 4) -> BatchResult:
    """Convenience: one shared artifact, many runs."""
    service = RunService(max_workers=max_workers)
    return service.run_batch([BatchJob(design=artifact, runs=specs)])
