"""Batched run service: elaborate once, fan out N runs, merge stats.

See :mod:`repro.service.batch` for the data flow and
``docs/architecture.md`` for where the service sits in the
artifact/runtime split.
"""

from .batch import (BatchJob, BatchResult, RunOutcome, RunService,
                    RunSpec, VhdlJob, run_fleet)

__all__ = [
    "BatchJob", "BatchResult", "RunOutcome", "RunService", "RunSpec",
    "VhdlJob", "run_fleet",
]
