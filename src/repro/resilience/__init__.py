"""Liveness layer shared by all parallel backends.

Watchdogs detect no-progress windows (:mod:`~repro.resilience.watchdog`);
a tripped watchdog — or any diagnosed unrecoverable stall — raises
``ProtocolError`` carrying a :class:`~repro.resilience.report.StallReport`
with the forensic protocol state (virtual-time surface, parked
negatives, withheld-lazy counts, in-flight traffic) plus partial stats.
"""

from .report import StallReport, build_report, surface
from .watchdog import (DEFAULT_MODEL_STEPS, DEFAULT_WALL_S, FakeClock,
                       StepWatchdog, WallClockWatchdog, resolve_watchdog)

__all__ = [
    "StallReport", "build_report", "surface",
    "StepWatchdog", "WallClockWatchdog", "FakeClock", "resolve_watchdog",
    "DEFAULT_MODEL_STEPS", "DEFAULT_WALL_S",
]
