"""Stall forensics: the structured report a diagnosed stall carries.

When a backend's liveness watchdog trips, dying with a bare message
wastes the one moment all the evidence is still in memory.  A
:class:`StallReport` snapshots the protocol state that matters for
root-causing a liveness failure:

* the per-LP virtual-time surface (min/max/width of local clocks — the
  Korniss surface-roughness signal; a wide surface is the early-warning
  sign of desynchronization, a frozen narrow one of a true deadlock);
* parked negatives (antimessages waiting for a positive that never
  arrived) with their origin epoch — the exact artifact of the
  orphaned-antimessage bug fixed in this layer;
* withheld lazy-cancellation counts per processor;
* whatever the backend knows about in-flight traffic (token-ring
  channel counts for ``procs``, fabric backlog elsewhere).

Everything in the report is plain picklable data so ``procs`` workers
can ship one through the IPC pipe before aborting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

VT = Tuple[int, int]  # (pt, lt) — VirtualTime flattened for pickling


@dataclass
class StallReport:
    """Diagnosis attached to a ``ProtocolError`` on a liveness failure."""

    #: Which backend diagnosed the stall ("model" | "threads" | "procs").
    backend: str
    #: One-line reason, e.g. "no GVT advance in 500000 steps".
    reason: str
    #: GVT at diagnosis time, flattened ``(pt, lt)`` (None if unknown).
    gvt: Optional[VT] = None
    #: The watchdog bound that tripped (steps or seconds).
    bound: Optional[float] = None
    #: lp_id -> local clock ``(pt, lt)``.
    lp_clocks: Dict[int, VT] = field(default_factory=dict)
    #: Virtual-time surface: min/max over lp_clocks, width = max - min
    #: in physical-time units (femtoseconds).
    vt_min: Optional[VT] = None
    vt_max: Optional[VT] = None
    vt_width: int = 0
    #: Parked negatives: antimessages whose positive never arrived.
    #: Each entry: {"proc", "dst", "eid", "time", "origin_epoch"}.
    parked_negatives: List[Dict[str, Any]] = field(default_factory=list)
    #: processor index -> number of withheld lazy cancellations.
    withheld_lazy: Dict[int, int] = field(default_factory=dict)
    #: In-flight accounting (backend-specific), e.g. token-ring
    #: channel counts {"sent_to": {...}, "recv_from": {...}} for procs
    #: or {"fabric_pending": n} for the model/threads backends.
    in_flight: Dict[str, Any] = field(default_factory=dict)
    #: Worker/processor that raised the diagnosis (procs only).
    origin: Optional[int] = None

    def describe(self) -> str:
        """Human-readable multi-line rendering for CLI stall output."""
        lines = [f"stall diagnosed on backend={self.backend}: {self.reason}"]
        if self.gvt is not None:
            lines.append(f"  gvt           : {self.gvt[0]}fs@{self.gvt[1]}")
        if self.bound is not None:
            lines.append(f"  watchdog bound: {self.bound}")
        if self.lp_clocks:
            lines.append(
                f"  vt surface    : min={_fmt(self.vt_min)} "
                f"max={_fmt(self.vt_max)} width={self.vt_width}fs "
                f"over {len(self.lp_clocks)} LPs")
        if self.withheld_lazy:
            total = sum(self.withheld_lazy.values())
            lines.append(f"  withheld lazy : {total} "
                         f"(per proc {dict(sorted(self.withheld_lazy.items()))})")
        if self.parked_negatives:
            lines.append(f"  parked negs   : {len(self.parked_negatives)}")
            for entry in self.parked_negatives[:8]:
                lines.append(
                    f"    anti eid={entry['eid']} dst={entry['dst']} "
                    f"t={_fmt(entry['time'])} "
                    f"origin_epoch={entry['origin_epoch']} "
                    f"proc={entry['proc']}")
            if len(self.parked_negatives) > 8:
                lines.append(f"    ... and "
                             f"{len(self.parked_negatives) - 8} more")
        if self.in_flight:
            lines.append(f"  in flight     : {self.in_flight}")
        if self.origin is not None:
            lines.append(f"  diagnosed by  : worker {self.origin}")
        return "\n".join(lines)


def _fmt(vt: Optional[VT]) -> str:
    if vt is None:
        return "?"
    return f"{vt[0]}fs@{vt[1]}"


def surface(clocks: Iterable[VT]) -> Tuple[Optional[VT], Optional[VT], int]:
    """(min, max, width-in-fs) of a virtual-time surface sample."""
    clocks = list(clocks)
    if not clocks:
        return None, None, 0
    lo = min(clocks)
    hi = max(clocks)
    return lo, hi, hi[0] - lo[0]


def build_report(backend: str, reason: str, processors: Iterable[Any],
                 gvt: Any = None, bound: Optional[float] = None,
                 in_flight: Optional[Dict[str, Any]] = None,
                 origin: Optional[int] = None) -> StallReport:
    """Assemble a :class:`StallReport` from live ``Processor`` objects.

    ``processors`` is any iterable of ``repro.parallel.engine.Processor``;
    only read access is needed, so this is safe to call from a stopped
    world (threads), between steps (model), or inside a worker (procs).
    """
    report = StallReport(backend=backend, reason=reason, bound=bound,
                         in_flight=dict(in_flight or {}), origin=origin)
    if gvt is not None:
        report.gvt = (gvt[0], gvt[1])
    for proc in processors:
        withheld = 0
        for lp_id, runtime in proc.runtimes.items():
            now = runtime.lp.now
            report.lp_clocks[lp_id] = (now[0], now[1])
            withheld += len(runtime.lazy_pending)
            withheld += len(runtime.reuse_pending)
            for eid, negative in runtime.negatives.items():
                report.parked_negatives.append({
                    "proc": proc.index,
                    "dst": negative.dst,
                    "eid": (eid.src, eid.seq),
                    "time": (negative.time[0], negative.time[1]),
                    "origin_epoch": negative.epoch,
                })
        if withheld:
            report.withheld_lazy[proc.index] = withheld
    report.vt_min, report.vt_max, report.vt_width = \
        surface(report.lp_clocks.values())
    return report
