"""Liveness watchdogs: detect no-progress windows, never false-positive.

Two flavours, matching the two notions of time the backends live in:

* :class:`StepWatchdog` — for the deterministic modelled machine, where
  wall clock is meaningless.  It counts *scheduler iterations* since the
  last observable progress (GVT advance or commit-count change).
* :class:`WallClockWatchdog` — for the real-concurrency backends
  (threads/procs), where an iteration count says nothing about elapsed
  time under the GIL or a loaded host.

Both follow the same contract: feed ``tick(marker)`` a progress marker
(any equatable snapshot of "where the run is"); the watchdog returns
True when the marker has not changed for longer than the bound.  The
bounds are deliberately generous — a watchdog that trips on a slow run
is worse than none — and ``0``/``False`` disables entirely.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Optional, Union

#: Default step bound for the modelled machine.  A healthy run commits
#: or advances GVT every few hundred iterations even on the largest test
#: circuits; half a million idle iterations is a stall, not slowness.
DEFAULT_MODEL_STEPS = 500_000

#: Default wall-clock bound (seconds) for threads/procs.  The tier-1
#: suite's slowest healthy global round is well under a second.
DEFAULT_WALL_S = 30.0


class StepWatchdog:
    """Trips after ``bound`` steps without the progress marker changing.

    ``tick`` takes the current *position* (the machine's step counter)
    explicitly, so the watchdog can be probed sparsely — e.g. once per
    GVT round — while the bound stays denominated in machine steps.
    When ``position`` is omitted the probe count itself is the position.
    """

    def __init__(self, bound: int) -> None:
        self.bound = int(bound)
        self.enabled = self.bound > 0
        self._marker: Any = object()  # never equal to a real marker
        self._anchor = 0
        self._position = 0
        self.probes = 0

    def tick(self, marker: Any, position: Optional[int] = None) -> bool:
        if not self.enabled:
            return False
        self.probes += 1
        self._position = self.probes if position is None else position
        if marker != self._marker:
            self._marker = marker
            self._anchor = self._position
            return False
        return (self._position - self._anchor) >= self.bound

    @property
    def idle(self) -> int:
        """Steps elapsed since the marker last changed."""
        return self._position - self._anchor


class WallClockWatchdog:
    """Trips when the marker sits unchanged for ``bound_s`` seconds.

    ``clock`` is injectable so induced-stall tests can drive the
    watchdog deterministically with a fake monotonic source instead of
    sleeping through the bound; it defaults to ``time.monotonic``.
    """

    def __init__(self, bound_s: float,
                 clock: Callable[[], float] = _time.monotonic) -> None:
        self.bound = float(bound_s)
        self.enabled = self.bound > 0
        self._clock = clock
        self._marker: Any = object()
        self._since = self._clock()
        self.probes = 0

    def tick(self, marker: Any) -> bool:
        if not self.enabled:
            return False
        self.probes += 1
        now = self._clock()
        if marker != self._marker:
            self._marker = marker
            self._since = now
            return False
        return (now - self._since) >= self.bound

    @property
    def idle_s(self) -> float:
        return self._clock() - self._since


class FakeClock:
    """A manually-advanced monotonic clock for deterministic stall tests.

    Pass ``clock=FakeClock()`` to :class:`WallClockWatchdog` and call
    :meth:`advance` to move time forward — no sleeping, no flakiness.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self.now += seconds
        return self.now


def resolve_watchdog(value: Optional[Union[int, float]],
                     default: Union[int, float]) -> Union[int, float]:
    """Normalize a user-facing ``watchdog=`` argument.

    ``None`` means "on, at the generous default"; ``0`` (or anything
    falsy) disables; a positive number is the bound itself.
    """
    if value is None:
        return default
    if not value:
        return 0
    return value
