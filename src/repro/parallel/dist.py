"""Distributed multi-host backend: the token ring over asyncio/TCP.

This backend earns the *distributed* half of the paper's title.  Each
worker is a standalone process — launched by hand on any host with
``repro serve``, or auto-spawned on localhost by the coordinator — and
everything that crosses a machine boundary is a length-prefixed pickle
frame (:mod:`repro.fabric.wire`).  The synchronization protocol is
**unchanged**: workers run the exact
:class:`~repro.parallel.backend.WorkerCore` the procs backend runs —
same act quantum, same batched flushes, same pipelined Mattern
token-ring GVT, same :class:`~repro.fabric.batched.BatchedEndpoint`
retransmission and crash recovery.  Only the transport differs.

**Topology.**  Hub and spoke: workers never dial each other.  Every
envelope a worker addresses to a peer travels as a ``("relay", dst,
envelope)`` frame to the coordinator, which forwards it.  TCP gives
per-connection FIFO and the coordinator forwards in arrival order, so
the per-channel FIFO the ring's two-cut count argument needs survives
intact.  (A mesh would halve latency; the hub keeps connection count
linear and gives the coordinator the vantage point the recovery story
below depends on.)

**Unreliable links as FaultPlan events.**  The fabric layer is always
on for dist runs — every batch is journalled, sequence-numbered and
acked even with no FaultPlan configured — because a TCP connection is
itself a lossy link: frames written but unread when a connection dies
are gone.  That makes a dropped connection *just another fault-plan
event*: the counted-envelope stamps (``("c", src, n, inner)``) keep
the ring's channel counts gap-tolerant, the token-driven pump
retransmits unacked journal entries, and receiver dedup absorbs the
duplicates that at-least-once redelivery creates.  Three pieces of
coordinator-side state close the remaining holes:

* **Token custody** — the ring has exactly one token; a frame loss
  must not lose it.  The coordinator remembers the last token it
  relayed *to* each worker until it sees a token *from* that worker.
  On reconnect the custody copy is re-delivered; a worker that already
  consumed it drops the duplicate (and re-forwards its own outbound
  copy, which is the one the link may have lost — see
  ``WorkerCore._resend_token``).
* **Checkpoint uploads** — workers upload their durable image
  (processor checkpoint + fabric endpoint + ring bookkeeping) at every
  checkpoint.  A killed worker process is restored onto a *fresh*
  daemon from the last uploaded image.
* **The sent-tail** — the coordinator retains every counted frame it
  relayed *from* a worker since that worker's last checkpoint upload
  (per-connection FIFO makes the cut exact).  On restore the tail is
  spliced back into the fabric journal
  (``WorkerCore._restore_incarnation``), so the dead incarnation's
  post-checkpoint sends — which the world has seen — are reconciled
  through the standard lazy-cancellation crash path instead of
  becoming phantom positives.

**Security.**  Frames are pickles (the coordinator ships real models
with process-body callables).  Trusted networks only — localhost, a
private cluster, or an ssh tunnel.  See docs/distributed.md.

Like the other real backends, dist supports the static protocols only
(optimistic / conservative / mixed).
"""

from __future__ import annotations

import asyncio
import os
import pickle
import queue as queue_module
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..core.model import Model
from ..core.stats import RunStats
from ..core.vtime import MINUS_INFINITY
from ..fabric.plan import FaultPlan
from ..fabric.wire import WireError, recv_frame, send_frame
from ..resilience import DEFAULT_WALL_S, resolve_watchdog
from .backend import BackendOutcome, WorkerCore, resolve_model
from .cost import SHARED_MEMORY
from .engine import ProtocolError
from .machine import ParallelMachine
from .partition import Partition

#: Default TCP port for `repro serve`.
DEFAULT_PORT = 7421

#: Stdout announcement a daemon prints once it is listening (the
#: coordinator parses this to learn an auto-spawned worker's port).
PORT_BANNER = "REPRO-DIST-WORKER PORT="


@dataclass
class DistOutcome(BackendOutcome):
    """Result of one distributed run (the shared backend shape)."""

    #: Token-ring circulations completed (Mattern waves).
    waves: int = 0
    #: Wall-clock duration of the run, connect to harvest.
    wall_time_s: float = 0.0


@dataclass
class _DistSpec:
    """Everything a remote worker needs to rebuild its machine.

    The payload is the *pristine* pickled model — the same artifact
    discipline the procs backend uses under ``spawn``, shipped over
    TCP instead of a process-argument pickle.
    """

    model_payload: bytes
    processors: int
    protocol: str
    partition: Any
    until: Optional[int]
    quantum: int
    fault_plan: Optional[FaultPlan]
    watchdog_s: Optional[float] = None
    timeout_s: float = 120.0
    extra: Dict[str, Any] = field(default_factory=dict)


# ======================================================================
# Worker side
# ======================================================================
class _DistWorkerCore(WorkerCore):
    """The shared worker loop over a relay session."""

    backend_name = "dist"

    def __init__(self, spec: _DistSpec, session: "_Session") -> None:
        self._session = session
        model = pickle.loads(spec.model_payload)
        model.validate()
        self.model = model
        self.until = spec.until
        self.quantum = spec.quantum
        # The fabric is unconditional on dist: TCP links lose written
        # frames when a connection dies, so every batch needs the
        # journal/ack machinery even under an empty plan.
        self.plan = (spec.fault_plan if spec.fault_plan is not None
                     else FaultPlan())
        self.recovery = True
        self.use_fabric = True
        self._crash_schedule = sorted(self.plan.crashes)
        self.protocol = spec.protocol
        self.processors = spec.processors
        self.watchdog_bound = float(
            resolve_watchdog(spec.watchdog_s, DEFAULT_WALL_S))
        self._timeout_s = spec.timeout_s
        self._inner = ParallelMachine(
            model, spec.processors, protocol=spec.protocol,
            cost=SHARED_MEMORY, partition=spec.partition,
            until=spec.until)

    def run(self, index: int, restore: Optional[tuple] = None) -> None:
        self._run_worker(index, self._inner.procs[index],
                         self._inner._runtimes, self._inner.placement,
                         restore=restore)

    # -- transport hooks ------------------------------------------------
    def _send_envelope(self, target: int, envelope: tuple) -> None:
        self._session.send(("relay", target, envelope))

    def _recv_envelope(self, block_s: float):
        try:
            if block_s > 0:
                return self._session.inbox.get(timeout=block_s)
            return self._session.inbox.get_nowait()
        except queue_module.Empty:
            return None

    def _emit_result(self, message: tuple) -> None:
        self._session.send(message)

    def _checkpoint_taken(self) -> None:
        image = pickle.dumps(self._durable_image(),
                             protocol=pickle.HIGHEST_PROTOCOL)
        self._session.send(("ckpt", self._index, image))


class _Session:
    """One (run_id, index) worker living inside a daemon.

    The asyncio loop owns the socket; the :class:`WorkerCore` loop runs
    in a side thread and talks to it through a thread-safe inbox
    (inbound envelopes) and ``call_soon_threadsafe`` (outbound frames).
    Outbound frames buffer while no connection is attached and flush on
    the next attach; the final done/error frame is additionally re-sent
    on *every* attach until the coordinator says ``bye`` (the
    coordinator dedups), so a connection loss cannot eat the result.
    """

    def __init__(self, daemon: "_WorkerDaemon", index: int,
                 spec: _DistSpec,
                 restore: Optional[Tuple[bytes, list, dict]]) -> None:
        self.daemon = daemon
        self.index = index
        self.state = "running"
        self.inbox: "queue_module.Queue" = queue_module.Queue()
        self.outbound: deque = deque()
        self.final: Optional[tuple] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.loop = asyncio.get_running_loop()
        self.bytes_tx = 0
        self.bytes_rx = 0
        self._writing = False
        self.thread = threading.Thread(
            target=self._run, args=(spec, restore), daemon=True,
            name=f"repro-dist-worker-{index}")
        self.thread.start()

    # -- core thread ----------------------------------------------------
    def _run(self, spec: _DistSpec,
             restore: Optional[Tuple[bytes, list, dict]]) -> None:
        try:
            core = _DistWorkerCore(spec, self)
        except BaseException as exc:  # noqa: BLE001 - forwarded upstream
            self.send(("error", self.index,
                       f"worker rebuild failed: "
                       f"{type(exc).__name__}: {exc}", RunStats(), None))
            return
        if restore is None:
            core.run(self.index)
        else:
            image = pickle.loads(restore[0])
            core.run(self.index, restore=(image, list(restore[1]),
                                          dict(restore[2])))

    def send(self, frame: tuple) -> None:
        self.loop.call_soon_threadsafe(self._enqueue, frame)

    # -- loop thread ----------------------------------------------------
    def _enqueue(self, frame: tuple) -> None:
        if frame[0] in ("done", "error"):
            self.state = "done"
            # Fold the session's transport tallies into the result the
            # coordinator will merge (the core never sees the socket).
            stats = frame[2] if frame[0] == "done" else frame[3]
            if stats is not None:
                stats.net_bytes_tx += self.bytes_tx
                stats.net_bytes_rx += self.bytes_rx
            self.final = frame
        self.outbound.append(frame)
        self._kick()

    def attach(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        if self.final is not None and self.final not in self.outbound:
            self.outbound.append(self.final)
        self._kick()

    def detach(self, writer: asyncio.StreamWriter) -> None:
        if self.writer is writer:
            self.writer = None

    def _kick(self) -> None:
        if self.writer is not None and not self._writing:
            self.loop.create_task(self._write_all())

    async def _write_all(self) -> None:
        if self._writing:
            return
        self._writing = True
        try:
            while self.outbound and self.writer is not None:
                frame = self.outbound[0]
                writer = self.writer
                try:
                    self.bytes_tx += await send_frame(writer, frame)
                except (ConnectionError, OSError, WireError):
                    self.detach(writer)
                    return
                try:
                    self.outbound.popleft()
                except IndexError:  # pragma: no cover - defensive
                    return
        finally:
            self._writing = False


class _WorkerDaemon:
    """`repro serve`: host worker sessions, one per coordinator run."""

    def __init__(self, once: bool = False) -> None:
        self.once = once
        self.sessions: Dict[Tuple[str, int], _Session] = {}
        self.closed = asyncio.Event()

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        session: Optional[_Session] = None
        key: Optional[Tuple[str, int]] = None
        try:
            while True:
                frame, nbytes = await recv_frame(reader)
                if session is not None:
                    session.bytes_rx += nbytes
                kind = frame[0]
                if kind == "hello":
                    _tag, run_id, index = frame
                    key = (run_id, index)
                    session = self.sessions.get(key)
                    state = session.state if session is not None else "new"
                    await send_frame(
                        writer, ("hi", index, state))
                    if session is not None:
                        session.attach(writer)
                elif kind == "spec":
                    session = _Session(self, key[1], frame[1], None)
                    self.sessions[key] = session
                    session.attach(writer)
                elif kind == "restore":
                    session = _Session(self, key[1], frame[1],
                                       (frame[2], frame[3], frame[4]))
                    self.sessions[key] = session
                    session.attach(writer)
                elif kind == "env":
                    if session is not None:
                        session.inbox.put(frame[1])
                elif kind == "ping":
                    await send_frame(writer, ("pong", frame[1]))
                elif kind == "bye":
                    if key is not None:
                        self.sessions.pop(key, None)
                    if self.once:
                        self.closed.set()
                    return
                elif kind == "exit":
                    self.closed.set()
                    return
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        except WireError:
            pass
        finally:
            if session is not None:
                session.detach(writer)
            try:
                writer.close()
            except Exception:  # pragma: no cover - already torn down
                pass


async def _serve_async(host: str, port: int, once: bool,
                       announce: bool = True) -> None:
    daemon = _WorkerDaemon(once=once)
    server = await asyncio.start_server(daemon.handle, host, port)
    actual = server.sockets[0].getsockname()[1]
    if announce:
        print(f"{PORT_BANNER}{actual}", flush=True)
    async with server:
        await daemon.closed.wait()


def serve(host: str = "127.0.0.1", port: int = DEFAULT_PORT,
          once: bool = False, announce: bool = True) -> None:
    """Run a worker daemon until told to exit (`repro serve`)."""
    try:
        asyncio.run(_serve_async(host, port, once, announce=announce))
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass


# ======================================================================
# Coordinator side
# ======================================================================
class _WorkerLink:
    """Coordinator-side state of one worker connection."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.host = "127.0.0.1"
        self.port = 0
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.connected = False
        self.done = False
        #: Last token frame relayed *to* this worker, held until a
        #: token arrives *from* it (at-least-once token delivery).
        self.token_custody: Optional[tuple] = None
        #: Stop envelope relayed to this worker, held until it's done.
        self.stop_custody: Optional[tuple] = None
        #: Latest uploaded durable image (pickled).
        self.ckpt: Optional[bytes] = None
        #: Counted frames relayed *from* this worker since its last
        #: checkpoint upload: (dst, envelope) in relay order.
        self.tail: List[Tuple[int, tuple]] = []
        #: Counted envelopes owed *to* this worker while it is
        #: unreachable, flushed in order on reconnect.  Batches alone
        #: would heal via the endpoint's retransmit pump, but a lost
        #: ack/recover envelope on an otherwise-quiet channel would
        #: desync the ring's cumulative counts forever (the receiver's
        #: high-water mark only advances on *later* envelopes, and
        #: there may never be one) — so the relay parks instead of
        #: dropping.
        self.parked: List[tuple] = []
        #: Per-source counted-envelope high-water marks relayed *to*
        #: this worker.  Shipped with a restore: the durable image's
        #: receive counts are frozen at checkpoint time, but the dead
        #: incarnation kept consuming envelopes — and pure-ack
        #: envelopes are not journalled anywhere, so peers can never
        #: replay them.  Without these marks a restored worker's
        #: cumulative recv count for a quiet channel regresses below
        #: the peer's sent count forever and the GVT ring never
        #: settles again.
        self.recv_marks: Dict[int, int] = {}
        #: Popen handle when the coordinator auto-spawned the daemon.
        self.proc: Optional[subprocess.Popen] = None
        self.reconnecting = False
        self.reader_task: Optional[asyncio.Task] = None


class DistMachine:
    """Coordinate a model run across TCP worker daemons."""

    backend_name = "dist"

    def __init__(self, model: Model, processors: int,
                 protocol: str = "optimistic",
                 partition: Union[str, Partition, Callable] = "round_robin",
                 until: Optional[int] = None,
                 quantum: int = 64,
                 fault_plan: Optional[FaultPlan] = None,
                 recovery: Optional[bool] = None,
                 watchdog_s: Optional[float] = None,
                 hosts: Optional[List[str]] = None,
                 disconnects: Optional[List[Tuple[int, int]]] = None,
                 kills: Optional[List[Tuple[int, int]]] = None) -> None:
        if protocol == "dynamic":
            raise ValueError(
                "the dist backend supports static protocols only; "
                "use the modelled machine for the dynamic configuration")
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        if recovery is not None and not recovery:
            raise ValueError(
                "the dist backend cannot run without recovery: a TCP "
                "link is itself an unreliable channel")
        model = resolve_model(model)
        model.validate()
        self.model = model
        self.until = until
        self.quantum = quantum
        self.plan = fault_plan
        self.protocol = protocol
        self.processors = processors
        self._watchdog_s = watchdog_s
        self.hosts = list(hosts) if hosts else []
        if len(self.hosts) > processors:
            raise ValueError(
                f"{len(self.hosts)} hosts for {processors} workers")
        #: Deterministic mid-run network-failure injection: at the
        #: first token relay to ``worker`` with wave >= ``wave``, the
        #: coordinator closes that connection (token held in custody)
        #: and reconnects — exercising the custody/replay path without
        #: any timing dependence.
        self._disconnects = sorted(disconnects) if disconnects else []
        #: Kill injection: same trigger, but the (auto-spawned) worker
        #: process is killed and restored onto a fresh daemon from its
        #: last uploaded checkpoint + sent-tail.
        self._kills = sorted(kills) if kills else []
        if self._kills and self.hosts:
            raise ValueError(
                "kill injection requires auto-spawned workers "
                "(the coordinator cannot respawn an external daemon)")
        # The artifact discipline of the spawn start method, over TCP:
        # snapshot the pristine model before anything seeds init events.
        try:
            pickle.dumps(partition, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as failure:
            raise ValueError(
                f"the dist backend cannot ship this partition to "
                f"workers ({failure}); use a named partitioner, a "
                f"placement dict, or a module-level partitioner "
                f"function") from failure
        try:
            self._model_payload = pickle.dumps(
                model, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as failure:
            raise RuntimeError(
                f"model is not picklable ({failure}), which the dist "
                f"backend requires; make process bodies module-level "
                f"callables (see repro.circuits.bodies)") from failure
        self._partition_spec = partition
        self.watchdog_bound = float(
            resolve_watchdog(watchdog_s, DEFAULT_WALL_S))

    # ------------------------------------------------------------------
    def run(self, timeout_s: float = 120.0) -> DistOutcome:
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        return asyncio.run(self._run_async(timeout_s))

    # ------------------------------------------------------------------
    async def _run_async(self, timeout_s: float) -> DistOutcome:
        start = time.monotonic()
        self._deadline = start + timeout_s
        self._run_id = os.urandom(8).hex()
        self._net = RunStats()
        self._results: Dict[int, tuple] = {}
        self._error: Optional[tuple] = None
        self._finishing = False
        self._complete = asyncio.Event()
        self._spec = _DistSpec(
            model_payload=self._model_payload,
            processors=self.processors, protocol=self.protocol,
            partition=self._partition_spec, until=self.until,
            quantum=self.quantum, fault_plan=self.plan,
            watchdog_s=self._watchdog_s, timeout_s=timeout_s)
        self._links = [_WorkerLink(i) for i in range(self.processors)]
        self._tasks: List[asyncio.Task] = []
        try:
            for link in self._links:
                if link.index < len(self.hosts):
                    host, _sep, port = self.hosts[link.index].partition(":")
                    link.host = host or "127.0.0.1"
                    link.port = int(port) if port else DEFAULT_PORT
                else:
                    await self._spawn_local(link)
                await self._connect(link, fresh=True)
            self._tasks.append(
                asyncio.get_running_loop().create_task(self._pinger()))
            try:
                await asyncio.wait_for(
                    self._complete.wait(),
                    timeout=max(0.0, self._deadline - time.monotonic()))
            except asyncio.TimeoutError:
                pass
        finally:
            self._finishing = True
            for task in self._tasks:
                task.cancel()
            for link in self._links:
                if link.writer is not None:
                    try:
                        await send_frame(link.writer, ("bye",))
                    except Exception:
                        pass
                    try:
                        link.writer.close()
                    except Exception:
                        pass
                if link.proc is not None:
                    try:
                        link.proc.kill()
                        link.proc.wait(timeout=5.0)
                    except Exception:
                        pass
        partial = RunStats()
        for message in self._results.values():
            partial.merge(message[2])
        partial.merge(self._net)
        if self._error is not None:
            error = self._error
            if error[3] is not None:
                partial.merge(error[3])
            failure = ProtocolError(
                f"dist worker {error[1]} failed: {error[2]}")
            failure.partial_stats = partial
            if len(error) > 4 and error[4] is not None:
                failure.stall_report = error[4]
            raise failure
        if len(self._results) < self.processors:
            missing = sorted(
                set(range(self.processors)) - set(self._results))
            failure = ProtocolError(
                f"dist run exceeded its {timeout_s:.1f}s deadline; "
                f"workers {missing} never completed")
            failure.partial_stats = partial
            raise failure
        return self._harvest(time.monotonic() - start)

    def _harvest(self, wall_time_s: float) -> DistOutcome:
        stats = RunStats()
        gvt = MINUS_INFINITY
        waves = 0
        commits = 0
        for index in range(self.processors):
            _tag, _i, wstats, lp_states, wgvt, wwaves, wcommits = \
                self._results[index]
            stats.merge(wstats)
            if wgvt > gvt:
                gvt = wgvt
            waves = max(waves, wwaves)
            commits = max(commits, wcommits)
            for lp_id, (now, attrs) in lp_states.items():
                lp = self.model.lps[lp_id]
                lp.now = now
                for attr, value in attrs.items():
                    setattr(lp, attr, value)
        stats.merge(self._net)
        return DistOutcome(stats=stats, gvt=gvt,
                           processors=self.processors,
                           gvt_rounds=commits, waves=waves,
                           wall_time_s=wall_time_s)

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    async def _spawn_local(self, link: _WorkerLink) -> None:
        """Start a localhost daemon; parse its port announcement."""
        # The daemon must import the same `repro` this process runs —
        # which may have been put on sys.path programmatically (tests,
        # scripts) rather than via an exported PYTHONPATH.
        env = dict(os.environ)
        pkg_dir = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        paths = [pkg_dir] + [p for p in
                             env.get("PYTHONPATH", "").split(os.pathsep)
                             if p and p != pkg_dir]
        env["PYTHONPATH"] = os.pathsep.join(paths)
        link.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--host", "127.0.0.1", "--port", "0", "--once"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=(None if os.environ.get("REPRO_DIST_DEBUG")
                    else subprocess.DEVNULL),
            text=True)
        loop = asyncio.get_running_loop()
        try:
            line = await asyncio.wait_for(
                loop.run_in_executor(None, link.proc.stdout.readline),
                timeout=min(30.0, max(1.0,
                                      self._deadline - time.monotonic())))
        except asyncio.TimeoutError:
            raise ProtocolError(
                f"spawned worker daemon {link.index} never announced "
                f"its port")
        if not line.startswith(PORT_BANNER):
            raise ProtocolError(
                f"spawned worker daemon {link.index} printed "
                f"{line!r} instead of a port announcement")
        link.host = "127.0.0.1"
        link.port = int(line[len(PORT_BANNER):].strip())

    async def _connect(self, link: _WorkerLink, fresh: bool) -> None:
        """Dial a worker, handshake, ship spec/restore, resync."""
        reader, writer = await asyncio.open_connection(
            link.host, link.port)
        self._net.net_bytes_tx += await send_frame(
            writer, ("hello", self._run_id, link.index))
        frame, nbytes = await recv_frame(reader)
        self._net.net_bytes_rx += nbytes
        if frame[0] != "hi" or frame[1] != link.index:
            raise ProtocolError(
                f"worker {link.index} handshake returned {frame!r}")
        state = frame[2]
        if state == "new":
            if fresh or link.ckpt is None:
                # First contact (or lost before its very first
                # checkpoint upload, i.e. before it did anything).
                payload = ("spec", self._spec)
            else:
                payload = ("restore", self._spec, link.ckpt,
                           list(link.tail), dict(link.recv_marks))
            self._net.net_bytes_tx += await send_frame(writer, payload)
        link.reader, link.writer = reader, writer
        link.connected = True
        link.reader_task = asyncio.get_running_loop().create_task(
            self._reader(link))
        self._tasks.append(link.reader_task)
        # Resync: re-deliver whatever only the coordinator still holds.
        if link.token_custody is not None:
            await self._deliver(link, ("env", link.token_custody))
        if link.stop_custody is not None and not link.done:
            await self._deliver(link, ("env", link.stop_custody))
        # Flush envelopes parked while the worker was unreachable (a
        # restored incarnation wants them too: they raise its receive
        # counts to the world-visible values and carry acks its spliced
        # journal is owed).
        while link.parked and link.connected:
            envelope = link.parked.pop(0)
            await self._deliver(link, ("env", envelope))
            if not link.connected:
                link.parked.insert(0, envelope)

    async def _reader(self, link: _WorkerLink) -> None:
        try:
            while True:
                frame, nbytes = await recv_frame(link.reader)
                self._net.net_bytes_rx += nbytes
                await self._on_frame(link, frame)
        except (asyncio.IncompleteReadError, ConnectionError, OSError,
                WireError):
            pass
        except asyncio.CancelledError:
            return
        link.connected = False
        if not self._finishing and not link.done:
            self._tasks.append(
                asyncio.get_running_loop().create_task(
                    self._reconnect(link, delay=0.05)))

    async def _reconnect(self, link: _WorkerLink, delay: float) -> None:
        if link.reconnecting:
            return
        link.reconnecting = True
        try:
            # Let the dead connection's reader finish draining first:
            # frames already in the socket buffer survive the peer's
            # death, and a restore must ship the *complete* sent-tail.
            task = link.reader_task
            if task is not None and task is not asyncio.current_task():
                try:
                    await task
                except Exception:  # pragma: no cover - reader cleans up
                    pass
            await asyncio.sleep(delay)
            while not self._finishing \
                    and time.monotonic() < self._deadline:
                try:
                    await self._connect(link, fresh=False)
                except (ConnectionError, OSError, WireError,
                        asyncio.IncompleteReadError):
                    await asyncio.sleep(0.1)
                    continue
                self._net.net_reconnects += 1
                return
        except asyncio.CancelledError:
            return
        finally:
            link.reconnecting = False

    async def _deliver(self, link: _WorkerLink, frame: tuple) -> None:
        if not link.connected or link.writer is None:
            return  # custody / fabric retransmission will heal it
        try:
            self._net.net_bytes_tx += await send_frame(
                link.writer, frame)
        except (ConnectionError, OSError, WireError):
            link.connected = False

    async def _relay_env(self, link: _WorkerLink,
                         envelope: tuple) -> None:
        """Relay one counted envelope; park it while the link is down.

        Parking keeps the coordinator→worker channel lossless for
        traffic that has no other retransmission path (see
        ``_WorkerLink.parked``).  The park-when-queued check preserves
        FIFO: a fresh envelope must not overtake ones still parked.
        A send that dies mid-frame re-parks the envelope — the worker
        side discards the truncated frame with the connection, and a
        rare duplicate is harmless (counts are high-water marks, batch
        seqs dedup, acks are idempotent).
        """
        if not link.connected or link.writer is None or link.parked:
            link.parked.append(envelope)
            return
        await self._deliver(link, ("env", envelope))
        if not link.connected:
            link.parked.append(envelope)

    async def _pinger(self) -> None:
        try:
            while not self._finishing:
                await asyncio.sleep(0.25)
                for link in self._links:
                    if link.connected and not link.done:
                        await self._deliver(
                            link, ("ping", time.monotonic()))
        except asyncio.CancelledError:
            return

    # ------------------------------------------------------------------
    # Frame handling
    # ------------------------------------------------------------------
    def _pop_injection(self, schedule: List[Tuple[int, int]],
                       worker: int, wave: int) -> bool:
        for pos, (at_wave, victim) in enumerate(schedule):
            if victim == worker and wave >= at_wave:
                del schedule[pos]
                return True
        return False

    async def _on_frame(self, link: _WorkerLink, frame: tuple) -> None:
        kind = frame[0]
        if kind == "relay":
            dst, envelope = frame[1], frame[2]
            target = self._links[dst]
            if envelope[0] == "token":
                # A token FROM this worker proves it consumed its
                # input token: release custody of that copy.
                link.token_custody = None
                wave = envelope[1].get("wave", 0)
                target.token_custody = envelope
                if self._pop_injection(self._disconnects, dst, wave):
                    await self._inject_disconnect(target)
                    return  # custody re-delivers the token on reconnect
                if target.ckpt is not None and self._pop_injection(
                        self._kills, dst, wave):
                    await self._inject_kill(target)
                    return
                await self._deliver(target, ("env", envelope))
            elif envelope[0] == "stop":
                target.stop_custody = envelope
                await self._deliver(target, ("env", envelope))
            else:
                link.tail.append((dst, envelope))
                if envelope[0] == "c":
                    src, count = envelope[1], envelope[2]
                    if count > target.recv_marks.get(src, 0):
                        target.recv_marks[src] = count
                await self._relay_env(target, envelope)
        elif kind == "done":
            if frame[1] not in self._results:
                self._results[frame[1]] = frame
            link.done = True
            if len(self._results) >= self.processors:
                self._complete.set()
        elif kind == "error":
            if self._error is None:
                self._error = frame
            self._complete.set()
        elif kind == "ckpt":
            link.ckpt = frame[2]
            link.tail.clear()
        elif kind == "pong":
            rtt = time.monotonic() - frame[1]
            self._net.net_rtt_samples += 1
            self._net.net_rtt_sum += rtt
            if rtt > self._net.net_rtt_max:
                self._net.net_rtt_max = rtt
        # anything else is ignored (forward compatibility)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    async def _inject_disconnect(self, link: _WorkerLink) -> None:
        """Close the link mid-run; the reader task reconnects."""
        if link.writer is not None:
            try:
                link.writer.close()
                await link.writer.wait_closed()
            except Exception:
                pass
        link.connected = False
        # The worker daemon keeps the session alive and buffers its
        # outbound frames; the reader task (which sees EOF) drives the
        # reconnect, after which custody re-delivers the held token.

    async def _inject_kill(self, link: _WorkerLink) -> None:
        """Kill the worker process; restore onto a fresh daemon."""
        if link.proc is None:  # pragma: no cover - guarded in __init__
            return
        try:
            link.proc.kill()
            link.proc.wait(timeout=5.0)
        except Exception:
            pass
        link.connected = False
        if link.writer is not None:
            try:
                link.writer.close()
            except Exception:
                pass
        await self._spawn_local(link)
        # The reader task sees the EOF once it drains the old socket
        # and drives the reconnect with the new port: state "new" + a
        # stored ckpt => restore from image + sent-tail, then custody
        # resync.  Only if no reader is live (link was already down)
        # does the coordinator kick the reconnect itself.
        if not link.connected and not link.reconnecting \
                and (link.reader_task is None or link.reader_task.done()):
            self._tasks.append(
                asyncio.get_running_loop().create_task(
                    self._reconnect(link, delay=0.0)))


def run_dist(model: Model, processors: int,
             protocol: str = "optimistic",
             partition: Union[str, Partition, Callable] = "round_robin",
             until: Optional[int] = None,
             quantum: int = 64,
             timeout_s: float = 120.0,
             fault_plan: Optional[FaultPlan] = None,
             recovery: Optional[bool] = None,
             watchdog_s: Optional[float] = None,
             hosts: Optional[List[str]] = None,
             disconnects: Optional[List[Tuple[int, int]]] = None,
             kills: Optional[List[Tuple[int, int]]] = None) -> DistOutcome:
    """Convenience wrapper mirroring :func:`run_procs`."""
    machine = DistMachine(model, processors, protocol=protocol,
                          partition=partition, until=until,
                          quantum=quantum, fault_plan=fault_plan,
                          recovery=recovery, watchdog_s=watchdog_s,
                          hosts=hosts, disconnects=disconnects,
                          kills=kills)
    return machine.run(timeout_s=timeout_s)
