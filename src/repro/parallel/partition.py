"""LP-to-processor partitioning.

The paper used "naive partitioning (equal number of LPs to each
processor)", noting it caused occasional dips in the speedup curves, and
remarks (Sec. 3.4) that the bi-partite process/signal topology could be
exploited for better partitions.  We provide:

* :func:`round_robin` — the paper's naive scheme (LP ``i`` to processor
  ``i mod P``);
* :func:`block` — contiguous blocks of LP ids (keeps locally-built
  subcircuits together, since builders allocate ids in construction
  order);
* :func:`bfs_blocks` — topology-aware: a BFS over the (undirected)
  channel graph assigns connected runs of LPs to the same processor,
  cutting far fewer channels — the A1 ablation compares it against the
  naive scheme.

A partition is a dict ``lp_id -> processor index``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List

from ..core.model import Model

Partition = Dict[int, int]
Partitioner = Callable[[Model, int], Partition]


def round_robin(model: Model, processors: int) -> Partition:
    """The paper's naive scheme: equal LP counts, no locality."""
    return {lp.lp_id: lp.lp_id % processors for lp in model.lps}


def block(model: Model, processors: int) -> Partition:
    """Contiguous id ranges of (nearly) equal size."""
    n = len(model)
    base, extra = divmod(n, processors)
    placement: Partition = {}
    lp_id = 0
    for proc in range(processors):
        size = base + (1 if proc < extra else 0)
        for _ in range(size):
            placement[lp_id] = proc
            lp_id += 1
    return placement


def bfs_blocks(model: Model, processors: int) -> Partition:
    """Topology-aware blocks: BFS order over the channel graph.

    Connected LPs land on the same processor far more often than under
    round-robin, which slashes remote traffic on circuits whose structure
    is mostly local (datapaths, filters).
    """
    n = len(model)
    neighbours: List[List[int]] = [[] for _ in range(n)]
    for src, dst in model.edges():
        neighbours[src].append(dst)
        neighbours[dst].append(src)
    order: List[int] = []
    seen = [False] * n
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        queue = deque([start])
        while queue:
            node = queue.popleft()
            order.append(node)
            for nxt in neighbours[node]:
                if not seen[nxt]:
                    seen[nxt] = True
                    queue.append(nxt)
    base, extra = divmod(n, processors)
    placement: Partition = {}
    index = 0
    for proc in range(processors):
        size = base + (1 if proc < extra else 0)
        for _ in range(size):
            placement[order[index]] = proc
            index += 1
    return placement


PARTITIONERS: Dict[str, Partitioner] = {
    "round_robin": round_robin,
    "block": block,
    "bfs": bfs_blocks,
}


def cut_channels(model: Model, placement: Partition) -> int:
    """Number of channels crossing processor boundaries (quality metric)."""
    return sum(1 for src, dst in model.edges()
               if placement[src] != placement[dst])
