"""Per-processor synchronization engine: the mixed PDES protocol.

Each modelled processor owns a set of LP *runtimes*.  A runtime wraps one
LP with everything its synchronization mode needs:

* an input queue of timestamped events,
* per-input-channel clocks (promises used by the conservative safety
  rule),
* for optimistic mode, the processed-event log with pre-state snapshots
  and the output log used to send antimessages on rollback,
* adaptation counters for the dynamic mode.

The protocol implemented is the paper's lookahead-free self-adaptive
mixed protocol:

* **Optimistic** runtimes execute the lowest-timestamp queued event
  eagerly, snapshotting first.  A straggler (positive event with a
  timestamp *strictly* below an already-processed one) or a matching
  antimessage triggers a rollback: state is restored, squashed events are
  re-queued and antimessages are sent for every output of the squashed
  executions.  Events with *equal* timestamps never roll back — that is
  the arbitrary simultaneous-event model the ``(pt, lt)`` tie-breaking
  makes sound (and the main saving over the user-consistent model).
* **Conservative** runtimes execute their queue head only when it is
  *safe*: its timestamp must not exceed every input channel's bound.  The
  bound of a channel whose sender is conservative is the largest
  ``send_time`` promise received on it (senders emit in non-decreasing
  ``send_time`` order because sends always happen at the sender's current
  virtual time); the bound of a channel whose sender is optimistic is the
  last committed GVT — an optimistic LP can never roll back below GVT,
  so those events are final (this is how a conservative LP "must be able
  to handle events from an optimistic LP without rollback").  When
  lookahead is available, null messages raise the channel bounds; without
  it, progress beyond a stall relies on the machine's global
  deadlock-recovery rounds, exactly the lookahead-free regime the paper
  targets.
* **Dynamic** runtimes switch between the two modes using rollback-rate /
  blocking-rate hysteresis (Sec. 4: "the LPs self-adapt ... to find the
  best configuration").

A ``user_consistent=True`` engine reproduces the comparison model of the
paper's Fig. 4: optimistic runtimes also roll back on *equal* timestamps,
and conservative runtimes require a *strict* bound (they must be certain
the simultaneous set is complete), which without lookahead degenerates
into one global synchronization per event — the overhead the paper's
protocol is designed to avoid.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Optional, Set,
                    Tuple)

from ..core.event import Event, EventId, EventKind
from ..core.lp import LogicalProcess
from ..core.model import Model, SyncMode
from ..core.stats import RunStats
from ..core.vtime import INFINITY, MINUS_INFINITY, VirtualTime
from .cost import CostModel


class ProtocolError(RuntimeError):
    """A synchronization invariant was violated (engine bug trap)."""


@dataclass
class AdaptPolicy:
    """Hysteresis thresholds for the dynamic mode.

    Switching to conservative is deliberately reluctant (an LP must
    *demonstrably* thrash) and switching back is cheap: a conservative
    LP that keeps blocking shows it is paying for safety it did not
    need.  The escape path must not depend on executions — a blocked
    conservative LP may never execute again without it.
    """

    #: Window length (executions) over which rollback rate is measured.
    window: int = 48
    #: Switch OPT -> CONS when squashed/executed exceeds this in a window.
    rollback_ratio_high: float = 0.75
    #: Switch CONS -> OPT after this many blocked polls in a row (each
    #: park/re-arm cycle — i.e. roughly one per GVT round — counts one).
    blocked_polls_high: int = 6
    #: Minimum executions between OPT -> CONS switches of the same LP.
    dwell: int = 96


@dataclass
class _Entry:
    """One processed event in an optimistic runtime's log."""

    __slots__ = ("event", "pre_snapshot", "pre_now", "sent")

    event: Event
    pre_snapshot: Any
    pre_now: VirtualTime
    sent: List[Event]


class LPRuntime:
    """Synchronization wrapper around one LP on one processor."""

    __slots__ = (
        "lp", "mode", "dynamic", "cons_epoch", "queue", "cancelled",
        "negatives", "processed", "channel_clocks", "preds", "succs",
        "executed", "squashed", "window_executed", "window_squashed",
        "blocked_streak", "since_switch", "last_null_promise", "committed",
        "release_floor", "since_snapshot", "lazy_pending",
        "reuse_pending",
    )

    def __init__(self, lp: LogicalProcess, mode: SyncMode,
                 preds: Set[int], succs: Set[int]) -> None:
        if mode is SyncMode.DYNAMIC:
            resolved = (SyncMode.OPTIMISTIC if lp.checkpointable
                        else SyncMode.CONSERVATIVE)
            dynamic = lp.checkpointable
        else:
            resolved = mode
            dynamic = False
        if resolved is SyncMode.OPTIMISTIC and not lp.checkpointable:
            # Heavy-state processes cannot save their state (paper Sec. 4).
            resolved = SyncMode.CONSERVATIVE
        self.lp = lp
        self.mode = resolved
        self.dynamic = dynamic
        #: Bumped each time the LP (re)enters conservative mode; receivers
        #: only trust channel promises tagged with the current epoch.
        self.cons_epoch = 0
        self.queue: List[Tuple[tuple, Event]] = []
        self.cancelled: Set[EventId] = set()
        self.negatives: Dict[EventId, Event] = {}
        self.processed: List[_Entry] = []
        #: src lp_id -> (sender cons_epoch, promised virtual time).
        self.channel_clocks: Dict[int, Tuple[int, VirtualTime]] = {}
        self.preds = preds
        self.succs = succs
        self.executed = 0
        self.squashed = 0
        self.window_executed = 0
        self.window_squashed = 0
        self.blocked_streak = 0
        self.since_switch = 0
        self.last_null_promise: Dict[int, VirtualTime] = {}
        self.committed = 0
        #: Distance-based lower bound on future arrivals, refreshed by the
        #: machine's global rounds (see ParallelMachine._release_bounds).
        self.release_floor: VirtualTime = MINUS_INFINITY
        #: Executions since the last state snapshot (interval
        #: checkpointing; see Processor.checkpoint_interval).
        self.since_snapshot = 0
        #: Lazy cancellation: messages whose executions were rolled back
        #: but whose antimessages are withheld until re-execution either
        #: regenerates them (reuse) or provably cannot anymore (cancel).
        #: Crash-recovery reuses the same list: the journaled sends of a
        #: dead incarnation are injected here so the restored replay
        #: reuses what it regenerates and cancels what it abandons.
        self.lazy_pending: List[Event] = []
        #: Guaranteed-reuse injections (crash recovery, conservative
        #: LPs only).  A conservative LP never rolls back, so its
        #: restored replay deterministically regenerates every windowed
        #: send — these entries exist purely to suppress the duplicate
        #: re-send and can never legitimately become antimessages.
        #: Unlike ``lazy_pending`` they therefore do NOT pin the
        #: cancellation horizon or hold GVT down; pinning the horizon at
        #: an entry's own timestamp would block the very conservative
        #: execution whose re-send the entry is waiting to match (the
        #: conservative crash-recovery self-deadlock).
        self.reuse_pending: List[Event] = []

    # ------------------------------------------------------------------
    # Queue plumbing
    # ------------------------------------------------------------------
    def push(self, event: Event) -> None:
        heapq.heappush(self.queue, (event.sort_key(), event))

    def head(self) -> Optional[Event]:
        """The earliest live queued event (skipping annihilated ones)."""
        while self.queue:
            _key, event = self.queue[0]
            if event.eid in self.cancelled:
                heapq.heappop(self.queue)
                self.cancelled.discard(event.eid)
                continue
            return event
        return None

    def pop(self) -> Event:
        event = self.head()
        if event is None:
            raise ProtocolError(f"pop on empty queue of {self.lp.name}")
        heapq.heappop(self.queue)
        return event

    def queue_min_time(self) -> VirtualTime:
        event = self.head()
        return event.time if event is not None else INFINITY

    # ------------------------------------------------------------------
    # Mode-dependent views
    # ------------------------------------------------------------------
    @property
    def now(self) -> VirtualTime:
        return self.lp.now

    def rollback_ratio(self) -> float:
        if self.window_executed == 0:
            return 0.0
        return self.window_squashed / self.window_executed

    def reset_window(self) -> None:
        self.window_executed = 0
        self.window_squashed = 0
        self.blocked_streak = 0

class Processor:
    """One modelled processor: owns LP runtimes and executes the protocol.

    The processor charges every action to its model-time ``clock`` using
    the machine's :class:`CostModel`.  Message routing goes through the
    ``route`` callback installed by the machine (which decides local
    vs. remote and charges accordingly).
    """

    def __init__(self, index: int, cost: CostModel,
                 user_consistent: bool = False,
                 use_lookahead: bool = False,
                 adapt: Optional[AdaptPolicy] = None,
                 checkpoint_interval: int = 1,
                 lazy_cancellation: bool = False) -> None:
        if checkpoint_interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.index = index
        self.cost = cost
        self.user_consistent = user_consistent
        self.use_lookahead = use_lookahead
        self.adapt = adapt or AdaptPolicy()
        #: Snapshot every k-th event per LP (1 = the paper's per-event
        #: state saving).  Larger intervals trade rollback cost
        #: (coast-forward replay) for memory and snapshot time — the
        #: classic Time Warp checkpointing trade-off.
        self.checkpoint_interval = checkpoint_interval
        #: Lazy cancellation (one of the "advanced optimistic
        #: approaches" the paper cites): rollbacks withhold
        #: antimessages; a re-execution that regenerates an identical
        #: message reuses the original in place, and only messages the
        #: new execution path provably cannot regenerate are cancelled.
        self.lazy_cancellation = lazy_cancellation
        self.clock = 0.0
        self.runtimes: Dict[int, LPRuntime] = {}
        #: Inbox of (deliver_at, seq, event) from remote processors.
        self.inbox: List[Tuple[float, int, Event]] = []
        #: Same-processor messages awaiting delivery (drained in act();
        #: a FIFO queue instead of recursive delivery keeps rollback
        #: cascades iterative and preserves send order).
        self.local_fifo = deque()
        #: Runtimes with a queued head, keyed for lowest-timestamp-first.
        self.ready: List[Tuple[tuple, int]] = []
        self.blocked: Set[int] = set()
        self.stats = RunStats()
        #: Conformance hooks (repro.harness): a Tracer records every
        #: protocol-relevant action; a Scheduler turns the tie-breaking
        #: choice points into recorded/replayed decisions.  Both default
        #: to None, so the uninstrumented fast paths cost one attribute
        #: check.
        self.tracer = None
        self.scheduler = None
        # Installed by the machine:
        self.route: Callable[[Event], None] = lambda event: None
        self.runtime_of: Callable[[int], LPRuntime] = None  # type: ignore
        #: Receiver-side fabric hook: maps one popped inbox item to the
        #: events actually deliverable now (dedup/reorder handling for
        #: the reliable fabric).  None = the item *is* the event.
        self.ingress: Optional[Callable[[Any], Iterable[Event]]] = None
        self.gvt_bound: VirtualTime = MINUS_INFINITY
        #: Cancellation horizon: lower bound on the virtual time of any
        #: withheld (lazy) or in-flight cancellation anywhere in the
        #: system.  Maintained by the backend — lowered eagerly through
        #: ``cancel_note`` whenever a cancellation comes into existence,
        #: raised (recomputed exactly) only at global rounds.  The
        #: conservative safety rule may commit only strictly below it.
        self.cancel_floor: VirtualTime = INFINITY
        #: Backend hook invoked with the timestamp of every new
        #: outstanding cancellation (withheld entry or routed anti).
        self.cancel_note: Optional[Callable[[VirtualTime], None]] = None
        self.until: Optional[int] = None
        self.lookahead_of: Callable[[int, int], Optional[Tuple[int, int]]] \
            = lambda src, dst: None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def adopt(self, runtime: LPRuntime) -> None:
        self.runtimes[runtime.lp.lp_id] = runtime

    def seed(self, event: Event) -> None:
        """Insert an initial event without charging model time."""
        self.deliver(event)
        self.drain_local()

    # ------------------------------------------------------------------
    # Readiness bookkeeping
    # ------------------------------------------------------------------
    def _arm(self, runtime: LPRuntime) -> None:
        """(Re-)insert a runtime into the ready heap for its queue head."""
        lp_id = runtime.lp.lp_id
        self.blocked.discard(lp_id)
        head = runtime.head()
        if head is not None:
            heapq.heappush(self.ready, (head.sort_key(), lp_id))

    def rearm_blocked(self) -> None:
        """After a GVT advance, blocked conservative LPs may be safe."""
        for lp_id in list(self.blocked):
            self._arm(self.runtimes[lp_id])

    def has_work_at(self) -> float:
        """Earliest model time at which this processor can act.

        ``clock`` if it has a (possibly) ready runtime; otherwise the
        earliest inbox delivery; +inf when fully asleep.
        """
        if self.ready or self.local_fifo:
            return self.clock
        if self.inbox:
            return max(self.clock, self.inbox[0][0])
        return float("inf")

    # ------------------------------------------------------------------
    # One scheduling step (called by the machine)
    # ------------------------------------------------------------------
    def act(self) -> bool:
        """Ingest due messages and execute at most one event.

        Returns True if any event was executed (progress made).
        """
        if not self.ready and not self.local_fifo and self.inbox:
            self.clock = max(self.clock, self.inbox[0][0])
        self._ingest()
        progressed = self._execute_one()
        self.drain_local()
        return progressed

    def _ingest(self) -> None:
        self.drain_local()
        while self.inbox and self.inbox[0][0] <= self.clock:
            _at, _seq, item = heapq.heappop(self.inbox)
            self.clock += self.cost.remote_recv
            # The fabric's receiver-side hook turns one transmitted copy
            # into zero (duplicate / out-of-order buffering) or more
            # (gap fill) deliverable events; a perfect fabric delivers
            # the item itself.
            events = (item,) if self.ingress is None else self.ingress(item)
            for event in events:
                self.deliver(event)
                self.drain_local()

    def drain_local(self) -> None:
        """Deliver queued same-processor messages (iteratively)."""
        while self.local_fifo:
            self.deliver(self.local_fifo.popleft())

    # ------------------------------------------------------------------
    # Delivery (local or from the fabric)
    # ------------------------------------------------------------------
    def deliver(self, event: Event) -> None:
        runtime = self.runtimes[event.dst]
        if self.tracer is not None:
            self.tracer.record("recv", self.index, event.dst, event.time,
                               kind=int(event.kind), src=event.src,
                               sign=event.sign,
                               eid=(event.eid.src, event.eid.seq))
        self._note_channel_clock(runtime, event)
        if event.kind is EventKind.NULL:
            self._arm(runtime)
            return
        if event.sign > 0:
            self._deliver_positive(runtime, event)
        else:
            self._deliver_negative(runtime, event)

    def _note_channel_clock(self, runtime: LPRuntime, event: Event) -> None:
        """Update the conservative promise for the event's channel.

        The promise epoch comes from the *message* (stamped by the fabric
        at send time), never from the sender's current state: a message
        sent speculatively must not masquerade as a conservative promise
        just because the sender switched modes before it was delivered.
        """
        if event.src == event.dst or event.src not in runtime.preds:
            # Self events and external stimulus injections carry no
            # channel promise; only declared channels have clocks.
            return
        if event.epoch < 0:
            return  # speculative send or antimessage: no promise
        promise = event.time if event.kind is EventKind.NULL \
            else event.send_time
        stored = runtime.channel_clocks.get(event.src)
        if stored is None or stored[0] < event.epoch:
            runtime.channel_clocks[event.src] = (event.epoch, promise)
        elif stored[0] == event.epoch and promise > stored[1]:
            runtime.channel_clocks[event.src] = (event.epoch, promise)

    def _deliver_positive(self, runtime: LPRuntime, event: Event) -> None:
        pending = runtime.negatives.pop(event.eid, None)
        if pending is not None:
            self.stats.annihilations += 1
            if self.tracer is not None:
                self.tracer.record("annihilate", self.index, event.dst,
                                   event.time,
                                   eid=(event.eid.src, event.eid.seq),
                                   ctx="parked")
            return  # the antimessage was waiting for this positive
        if runtime.processed and runtime.mode is SyncMode.OPTIMISTIC:
            last_time = runtime.processed[-1].event.time
            is_straggler = (event.time <= last_time if self.user_consistent
                            else event.time < last_time)
            if is_straggler:
                index = self._first_entry_not_before(runtime, event.time)
                self._rollback(runtime, index)
        elif runtime.mode is SyncMode.CONSERVATIVE:
            if event.time < runtime.lp.now:
                raise ProtocolError(
                    f"conservative LP {runtime.lp.name} at {runtime.lp.now} "
                    f"received straggler {event}")
        runtime.push(event)
        self._arm(runtime)

    def _deliver_negative(self, runtime: LPRuntime, event: Event) -> None:
        head_match = any(e.eid == event.eid for _k, e in runtime.queue)
        if head_match:
            runtime.cancelled.add(event.eid)
            self.stats.annihilations += 1
            if self.tracer is not None:
                self.tracer.record("annihilate", self.index, event.dst,
                                   event.time,
                                   eid=(event.eid.src, event.eid.seq),
                                   ctx="queued")
            self._arm(runtime)
            return
        for index, entry in enumerate(runtime.processed):
            if entry.event.eid == event.eid:
                # The rollback re-queues the cancelled event along with the
                # other squashed ones; the cancelled-set entry annihilates
                # that single re-queued copy lazily.
                self._rollback(runtime, index)
                runtime.cancelled.add(event.eid)
                self.stats.annihilations += 1
                if self.tracer is not None:
                    self.tracer.record("annihilate", self.index, event.dst,
                                       event.time,
                                       eid=(event.eid.src, event.eid.seq),
                                       ctx="processed")
                self._arm(runtime)
                return
        # The positive has not arrived yet (possible across processors).
        runtime.negatives[event.eid] = event

    def _first_entry_not_before(self, runtime: LPRuntime,
                                time: VirtualTime) -> int:
        """Index of the first processed entry to squash for a straggler.

        Arbitrary model: squash entries with a *strictly greater*
        timestamp (equal-time events commute).  User-consistent model:
        squash equal-time entries too, so the simultaneous set is
        re-processed together.
        """
        entries = runtime.processed
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.user_consistent:
                before = entries[mid].event.time < time
            else:
                before = entries[mid].event.time <= time
            if before:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    # Rollback (Time Warp)
    # ------------------------------------------------------------------
    def _rollback(self, runtime: LPRuntime, index: int) -> None:
        entries = runtime.processed
        if index >= len(entries):
            return
        squashed = entries[index:]
        del entries[index:]
        first = squashed[0]
        if first.pre_snapshot is not None:
            runtime.lp.restore(first.pre_snapshot)
            runtime.lp.now = first.pre_now
        else:
            # Interval checkpointing: land on the nearest earlier
            # snapshot and coast forward — silently re-execute the
            # retained entries up to the rollback target.  Their outputs
            # were already sent and remain valid (only squashed entries'
            # messages get cancelled), and the LPs are deterministic, so
            # replay rebuilds the exact pre-straggler state.
            base = len(entries) - 1
            while entries[base].pre_snapshot is None:
                base -= 1
            anchor = entries[base]
            runtime.lp.restore(anchor.pre_snapshot)
            runtime.lp.now = anchor.pre_now
            for entry in entries[base:]:
                runtime.lp.now = entry.event.time
                runtime.lp.simulate(entry.event)
                runtime.lp.drain_outbox()  # duplicates; discard
                self.clock += self.cost.event
                self.stats.coast_forward_events += 1
        # Force a snapshot on the next execution: rollback hotspots
        # should not pay the coast-forward replay repeatedly.
        runtime.since_snapshot = 10**9
        self.clock += (self.cost.rollback_fixed
                       + self.cost.rollback_per_event * len(squashed))
        self.stats.rollbacks += 1
        lp_id = runtime.lp.lp_id
        if self.tracer is not None:
            self.tracer.record("rollback", self.index, lp_id,
                               first.event.time, squashed=len(squashed))
        for entry in squashed:
            runtime.push(entry.event)
            runtime.squashed += 1
            runtime.window_squashed += 1
            self.stats.events_rolled_back += 1
            for sent in entry.sent:
                # Lazy cancellation only withholds CROSS-LP messages —
                # that is where the antimessage traffic it saves lives.
                # Self-messages are cancelled eagerly: a withheld
                # cancellation for an event in this LP's own queue/log,
                # which the very rollbacks that withhold it keep
                # rewriting, has no stable owner to reconcile against.
                if self.lazy_cancellation and sent.dst != lp_id:
                    runtime.lazy_pending.append(sent)
                    if self.cancel_note is not None:
                        self.cancel_note(sent.time)
                else:
                    self.stats.antimessages += 1
                    if self.tracer is not None:
                        self.tracer.record("anti", self.index, lp_id,
                                           sent.time, dst=sent.dst,
                                           eid=(sent.eid.src,
                                                sent.eid.seq),
                                           ctx="rollback")
                    if self.cancel_note is not None:
                        self.cancel_note(sent.time)
                    self.route(sent.antimessage())
        self._arm(runtime)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_one(self) -> bool:
        if self.scheduler is not None:
            return self._execute_one_controlled()
        while self.ready:
            key, lp_id = heapq.heappop(self.ready)
            runtime = self.runtimes[lp_id]
            head = runtime.head()
            if head is None:
                continue
            if head.sort_key() != key:
                # Stale entry: the queue changed; re-arm with the truth.
                self._arm(runtime)
                continue
            if self.until is not None and head.time.pt > self.until:
                # Beyond the simulation horizon; park it unarmed.
                continue
            if not self._safe(runtime, head):
                self.blocked.add(lp_id)
                runtime.blocked_streak += 1
                self.stats.blocked_polls += 1
                if self.use_lookahead:
                    self._send_nulls(runtime)
                self._maybe_go_optimistic(runtime)
                continue
            self._execute(runtime, runtime.pop())
            return True
        return False

    def _execute_one_controlled(self) -> bool:
        """Controlled-scheduler variant of :meth:`_execute_one`.

        Same validation as the base loop, but instead of executing the
        canonical first safe runtime, gather every safe runtime whose
        head ties with it under ``scheduler.tie_key`` and let the
        scheduler pick (choice point ``lp``).  The chosen runtime's
        same-tie queued events then go through
        :meth:`_controlled_pop` (choice point ``event``).
        """
        sched = self.scheduler
        candidates: List[Tuple[tuple, int]] = []
        group_key = None
        while self.ready:
            key, lp_id = heapq.heappop(self.ready)
            runtime = self.runtimes[lp_id]
            head = runtime.head()
            if head is None:
                continue
            if head.sort_key() != key:
                self._arm(runtime)
                continue
            if self.until is not None and head.time.pt > self.until:
                continue
            if not self._safe(runtime, head):
                self.blocked.add(lp_id)
                runtime.blocked_streak += 1
                self.stats.blocked_polls += 1
                if self.use_lookahead:
                    self._send_nulls(runtime)
                self._maybe_go_optimistic(runtime)
                continue
            tie = sched.tie_key(head.time)
            if group_key is None:
                group_key = tie
            elif tie != group_key:
                # Beyond the simultaneous group; defer back to the heap.
                heapq.heappush(self.ready, (key, lp_id))
                break
            candidates.append((key, lp_id))
        if not candidates:
            return False
        choice = sched.choose("lp", len(candidates)) \
            if len(candidates) > 1 else 0
        for i, item in enumerate(candidates):
            if i != choice:
                heapq.heappush(self.ready, item)
        runtime = self.runtimes[candidates[choice][1]]
        self._execute(runtime, self._controlled_pop(runtime))
        return True

    def _controlled_pop(self, runtime: LPRuntime) -> Event:
        """Pop one of the runtime's same-tie queue-head events.

        The heap's canonical order fixes which same-``(pt, lt)`` event
        an LP consumes first; the protocol claims that order is
        irrelevant too.  Surface it as choice point ``event``: collect
        every live queued event tying with the head under
        ``scheduler.tie_key`` and let the scheduler pick.
        """
        sched = self.scheduler
        first = runtime.pop()
        group_key = sched.tie_key(first.time)
        ties = [first]
        while True:
            nxt = runtime.head()
            if nxt is None or sched.tie_key(nxt.time) != group_key:
                break
            ties.append(runtime.pop())
        choice = sched.choose("event", len(ties)) if len(ties) > 1 else 0
        chosen = ties.pop(choice)
        for event in ties:
            runtime.push(event)
        return chosen

    def _safe(self, runtime: LPRuntime, event: Event) -> bool:
        if runtime.mode is SyncMode.OPTIMISTIC:
            return True
        bound = self._input_bound(runtime)
        if self.user_consistent:
            return event.time < bound
        if event.time > bound:
            return False
        # Arbitrary model: execution *at* the bound is normally safe —
        # simultaneous positives commute.  Cancellations do not: they
        # annihilate.  A conservative execution commits irrevocably, so
        # it must additionally stay strictly below the cancellation
        # horizon — the earliest virtual time at which a withheld
        # (lazy) or in-flight antimessage anywhere in the system could
        # still arrive.  Without this clause a release floor pinned at
        # a withheld cancellation's own timestamp lets the receiver
        # commit the very event that cancellation targets (the
        # orphaned-antimessage deadlock; see docs/protocol.md).
        return event.time < self.cancel_floor

    def _input_bound(self, runtime: LPRuntime) -> VirtualTime:
        """Lower bound on this LP's future arrivals.

        The channel part is the min over input channels of the channel's
        promise (GVT for optimistic/stale senders).  The distance-based
        ``release_floor`` computed by the machine's global rounds is an
        independent valid bound; the tighter (larger) one wins.
        """
        bound = INFINITY
        for src in runtime.preds:
            sender = self.runtime_of(src)
            stored = runtime.channel_clocks.get(src)
            if (sender.mode is SyncMode.CONSERVATIVE and stored is not None
                    and stored[0] == sender.cons_epoch):
                promise = max(stored[1], self.gvt_bound)
            else:
                promise = self.gvt_bound
            if promise < bound:
                bound = promise
        return max(bound, runtime.release_floor)

    def _execute(self, runtime: LPRuntime, event: Event) -> None:
        lp = runtime.lp
        optimistic = runtime.mode is SyncMode.OPTIMISTIC
        if optimistic:
            take = (not runtime.processed
                    or runtime.since_snapshot
                    >= self.checkpoint_interval - 1)
            if take:
                snapshot = lp.snapshot()
                self.clock += self.cost.snapshot
                self.stats.snapshots += 1
                runtime.since_snapshot = 0
                if self.tracer is not None:
                    self.tracer.record("checkpoint", self.index,
                                       lp.lp_id, lp.now, ctx="snapshot")
            else:
                snapshot = None
                runtime.since_snapshot += 1
            entry = _Entry(event, snapshot, lp.now, [])
        if self.tracer is not None:
            self.tracer.record("exec", self.index, lp.lp_id, event.time,
                               kind=int(event.kind),
                               mode=runtime.mode.name,
                               eid=(event.eid.src, event.eid.seq))
        lp.now = event.time
        lp.simulate(event)
        out = lp.drain_outbox()
        self.clock += self.cost.event
        self.stats.count_execution(lp.lp_id)
        runtime.executed += 1
        runtime.window_executed += 1
        runtime.since_switch += 1
        runtime.blocked_streak = 0
        # lazy_pending is non-empty under lazy cancellation OR after a
        # crash-recovery injected the dead incarnation's journaled sends
        # for reuse-matching; reuse_pending holds the guaranteed-reuse
        # (conservative) flavour of the latter.  All want the same filter.
        if runtime.lazy_pending or runtime.reuse_pending:
            to_route, sent_record = self._lazy_filter(runtime, out)
        else:
            to_route = sent_record = out
        if optimistic:
            entry.sent = sent_record
            runtime.processed.append(entry)
        else:
            runtime.committed += 1
            self.stats.events_committed += 1
            self.stats.final_time = max(self.stats.final_time, event.time)
            if self.tracer is not None:
                self.tracer.record("commit", self.index, lp.lp_id,
                                   event.time, ctx="conservative",
                                   eid=(event.eid.src, event.eid.seq))
        for message in to_route:
            self.route(message)
        if runtime.lazy_pending or runtime.reuse_pending:
            self._lazy_cancel_passed(runtime)
        if self.use_lookahead and runtime.mode is SyncMode.CONSERVATIVE:
            self._send_nulls(runtime)
        self._maybe_go_conservative(runtime)
        self._arm(runtime)

    # ------------------------------------------------------------------
    # Lazy cancellation
    # ------------------------------------------------------------------
    def _lazy_filter(self, runtime: LPRuntime, out: List[Event]):
        """Match regenerated messages against withheld cancellations.

        A re-execution that produces a message identical (destination,
        timestamp, kind, payload) to a withheld one *reuses* it: the
        receiver already has the original, so nothing is sent — and the
        processed-entry records the ORIGINAL event, so a future rollback
        cancels the message the receiver actually holds.
        """
        to_route: List[Event] = []
        sent_record: List[Event] = []
        for message in out:
            match = None
            for pool in (runtime.lazy_pending, runtime.reuse_pending):
                for i, pending in enumerate(pool):
                    if (pending.dst == message.dst
                            and pending.time == message.time
                            and pending.kind == message.kind
                            and pending.payload == message.payload):
                        match = pool.pop(i)
                        break
                if match is not None:
                    break
            if match is not None:
                sent_record.append(match)
                self.stats.lazy_reused += 1
            else:
                to_route.append(message)
                sent_record.append(message)
        return to_route, sent_record

    def _lazy_cancel_passed(self, runtime: LPRuntime) -> None:
        """Cancel withheld messages the LP has provably moved past.

        Once the LP's virtual time is strictly beyond a withheld
        message's send time, no future execution can regenerate it
        (emissions never predate the event that causes them).
        """
        now = runtime.lp.now
        keep: List[Event] = []
        for pending in runtime.lazy_pending:
            if pending.send_time < now:
                self.stats.antimessages += 1
                if self.tracer is not None:
                    self.tracer.record("anti", self.index,
                                       runtime.lp.lp_id, pending.time,
                                       dst=pending.dst,
                                       eid=(pending.eid.src,
                                            pending.eid.seq),
                                       ctx="lazy-passed")
                self.route(pending.antimessage())
            else:
                keep.append(pending)
        runtime.lazy_pending = keep
        self._sweep_reuse(runtime, now, "reuse-diverged")

    def _sweep_reuse(self, runtime: LPRuntime, bound: VirtualTime,
                     ctx: str) -> None:
        """Defensive sweep of guaranteed-reuse (conservative crash)
        entries the replay provably skipped.

        Unreachable while the conservative replay is deterministic — a
        send below the LP's clock is always regenerated and matched
        first.  If the trajectory somehow diverged, cancel the orphaned
        original loudly rather than leave a phantom at the receiver.
        """
        if not runtime.reuse_pending:
            return
        keep: List[Event] = []
        for pending in runtime.reuse_pending:
            if pending.send_time < bound:
                self.stats.antimessages += 1
                if self.tracer is not None:
                    self.tracer.record("anti", self.index,
                                       runtime.lp.lp_id, pending.time,
                                       dst=pending.dst,
                                       eid=(pending.eid.src,
                                            pending.eid.seq),
                                       ctx=ctx)
                self.route(pending.antimessage())
            else:
                keep.append(pending)
        runtime.reuse_pending = keep

    def flush_lazy(self, runtime: LPRuntime, bound: VirtualTime) -> None:
        """Cancel withheld messages below ``bound`` (GVT flush).

        Once GVT passes a withheld message's send time, the LP can never
        execute at or below it again, so regeneration is impossible.
        """
        self._sweep_reuse(runtime, bound, "reuse-flush")
        if not runtime.lazy_pending:
            return
        keep: List[Event] = []
        for pending in runtime.lazy_pending:
            if pending.send_time < bound:
                self.stats.antimessages += 1
                if self.tracer is not None:
                    self.tracer.record("anti", self.index,
                                       runtime.lp.lp_id, pending.time,
                                       dst=pending.dst,
                                       eid=(pending.eid.src,
                                            pending.eid.seq),
                                       ctx="lazy-flush")
                self.route(pending.antimessage())
            else:
                keep.append(pending)
        runtime.lazy_pending = keep

    # ------------------------------------------------------------------
    # Null messages (conservative with lookahead)
    # ------------------------------------------------------------------
    def _send_nulls(self, runtime: LPRuntime) -> None:
        # Two floors bound this LP's future outputs:
        #  * events still arriving on input channels produce outputs at
        #    least one LP-lookahead later than the channel bound;
        #  * events already queued (including self-scheduled timeouts and
        #    run events, which emit at their own timestamp) bound outputs
        #    with NO lookahead added — a process resuming on a timeout
        #    assigns signals at exactly the timeout's virtual time.
        bound = self._input_bound(runtime)
        queue_floor = runtime.queue_min_time()
        # Events already emitted but not yet delivered (sitting in the
        # local FIFO) also bound this LP's future outputs: a process that
        # just scheduled its own run/timeout will emit at that event's
        # exact virtual time, possibly below bound + lookahead.
        lp_id = runtime.lp.lp_id
        for pending in self.local_fifo:
            if pending.dst == lp_id and pending.sign > 0 \
                    and pending.time < queue_floor:
                queue_floor = pending.time
        if bound == INFINITY and queue_floor == INFINITY:
            return
        for dst in runtime.succs:
            lookahead = self.lookahead_of(runtime.lp.lp_id, dst)
            if lookahead is None:
                continue
            dpt, dlt = lookahead
            if bound == INFINITY:
                shifted = INFINITY
            elif dpt > 0:
                shifted = VirtualTime(bound.pt + dpt, 0)
            else:
                shifted = VirtualTime(bound.pt, bound.lt + dlt)
            promise = min(shifted, queue_floor)
            last = runtime.last_null_promise.get(dst)
            if last is not None and promise <= last:
                continue
            runtime.last_null_promise[dst] = promise
            self.stats.null_messages += 1
            self.clock += self.cost.null_msg
            null = Event(time=promise, kind=EventKind.NULL, dst=dst,
                         src=runtime.lp.lp_id, send_time=runtime.lp.now)
            self.route(null)

    # ------------------------------------------------------------------
    # Dynamic adaptation
    # ------------------------------------------------------------------
    def _maybe_go_conservative(self, runtime: LPRuntime) -> None:
        if (not runtime.dynamic
                or runtime.mode is not SyncMode.OPTIMISTIC
                or runtime.since_switch < self.adapt.dwell
                or runtime.window_executed < self.adapt.window):
            return
        if runtime.rollback_ratio() <= self.adapt.rollback_ratio_high:
            runtime.reset_window()
            return
        # Roll back to the provably-safe horizon, then run conservatively.
        bound = max(self._input_bound(runtime), self.gvt_bound)
        index = self._first_safe_cut(runtime, bound)
        self._rollback(runtime, index)
        self._commit_log(runtime, ctx="switch")
        runtime.mode = SyncMode.CONSERVATIVE
        runtime.cons_epoch += 1
        runtime.since_switch = 0
        runtime.reset_window()
        self.clock += self.cost.mode_switch
        self.stats.mode_switches += 1
        self._arm(runtime)

    def _maybe_go_optimistic(self, runtime: LPRuntime) -> None:
        # No dwell gate here: the dwell counts *executions*, and a
        # conservative LP that blocks forever never executes — it must
        # still be able to escape.  Flapping is bounded by the dwell on
        # the opposite (OPT -> CONS) switch.
        if (not runtime.dynamic
                or runtime.mode is not SyncMode.CONSERVATIVE
                or not runtime.lp.checkpointable
                or runtime.blocked_streak < self.adapt.blocked_polls_high):
            return
        runtime.mode = SyncMode.OPTIMISTIC
        runtime.since_switch = 0
        runtime.reset_window()
        self.clock += self.cost.mode_switch
        self.stats.mode_switches += 1
        self._arm(runtime)

    def _first_safe_cut(self, runtime: LPRuntime,
                        bound: VirtualTime) -> int:
        """First log entry that may NOT be committed at a mode switch.

        Strictly below the bound only: an antimessage may still arrive
        *at* the bound (GVT floors at a withheld or in-flight
        cancellation's own timestamp, inclusively), and a committed
        entry can never be cancelled.  Entries at exactly the bound are
        rolled back and re-executed instead.
        """
        entries = runtime.processed
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if entries[mid].event.time < bound:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _commit_log(self, runtime: LPRuntime, ctx: str = "final") -> None:
        """Finalize all remaining processed entries (now irrevocable)."""
        for entry in runtime.processed:
            runtime.committed += 1
            self.stats.events_committed += 1
            self.stats.final_time = max(self.stats.final_time,
                                        entry.event.time)
            if self.tracer is not None:
                self.tracer.record("commit", self.index,
                                   runtime.lp.lp_id, entry.event.time,
                                   ctx=ctx,
                                   eid=(entry.event.eid.src,
                                        entry.event.eid.seq))
        runtime.processed.clear()

    # ------------------------------------------------------------------
    # GVT support (driven by the machine)
    # ------------------------------------------------------------------
    def local_min_time(self) -> VirtualTime:
        """min timestamp over queued events and parked negatives."""
        low = INFINITY
        for runtime in self.runtimes.values():
            t = runtime.queue_min_time()
            if t < low:
                low = t
            for negative in runtime.negatives.values():
                if negative.time < low:
                    low = negative.time
            # A withheld (lazy) cancellation may still become an
            # antimessage at its own timestamp: GVT must not pass it.
            for pending in runtime.lazy_pending:
                if pending.time < low:
                    low = pending.time
        for _at, _seq, event in self.inbox:
            if event.time < low:
                low = event.time
        return low

    def fossil_collect(self, gvt: VirtualTime) -> None:
        """Commit and drop log entries strictly below GVT.

        One snapshot at or below GVT must survive as the restore anchor,
        which is automatic here: entries at or after GVT keep their
        ``pre_snapshot``, and an LP can never be rolled back below GVT.
        """
        self.clock += self.cost.fossil
        for runtime in self.runtimes.values():
            entries = runtime.processed
            cut = 0
            while cut < len(entries) and entries[cut].event.time < gvt:
                cut += 1
            # Interval checkpointing: the first retained entry must be a
            # coast-forward anchor (have a snapshot), otherwise a future
            # rollback into the retained region would have no base state.
            # (Dropping the whole log is fine: the next execution takes
            # a fresh snapshot on an empty log.)
            while 0 < cut < len(entries) and \
                    entries[cut].pre_snapshot is None:
                cut -= 1
            if cut:
                for entry in entries[:cut]:
                    runtime.committed += 1
                    self.stats.events_committed += 1
                    self.stats.final_time = max(self.stats.final_time,
                                                entry.event.time)
                    if self.tracer is not None:
                        self.tracer.record(
                            "commit", self.index, runtime.lp.lp_id,
                            entry.event.time, ctx="fossil",
                            gvt=(gvt[0], gvt[1]),
                            eid=(entry.event.eid.src,
                                 entry.event.eid.seq))
                del entries[:cut]
                self.stats.fossils_collected += cut
