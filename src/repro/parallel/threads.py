"""Real-thread backend: the distributed kernel on actual OS threads.

The modelled machine (machine.py) is how the benchmarks measure
*speedup* — CPython's GIL makes wall-clock thread speedup unobtainable,
as documented in DESIGN.md.  This backend exists for a different
purpose: to demonstrate that the protocol really is a distributed
algorithm — LPs partitioned over concurrently running workers that
communicate only through message queues, with a stop-the-world
coordinator standing in for the paper's global synchronization — and
that it still commits exactly the sequential results.

Scope: the static protocols (optimistic / conservative / mixed).  The
dynamic mode is excluded because a receiver may sample a sender's mode
while it is mid-switch; the modelled machine serializes those reads,
real threads would need extra locking for no demonstrative gain.

Locking discipline: each worker owns its processor's state and touches
it under the processor's big lock; cross-processor routing only ever
touches the *target's inbox lock*, a leaf lock that is never held while
acquiring anything else — so there is no lock-order cycle.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from ..core.event import Event
from ..core.model import Model, SyncMode
from ..core.stats import RunStats
from ..core.vtime import MINUS_INFINITY, VirtualTime
from .cost import SHARED_MEMORY
from .engine import Processor, ProtocolError
from .machine import ParallelMachine
from .partition import Partition


@dataclass
class ThreadedOutcome:
    stats: RunStats
    gvt: VirtualTime
    processors: int
    gvt_rounds: int


class _Worker:
    """One thread driving one Processor."""

    def __init__(self, processor: Processor) -> None:
        self.processor = processor
        self.lock = threading.Lock()
        self.inbox_lock = threading.Lock()
        self.pending: List[Event] = []
        self.idle = threading.Event()
        self.thread: Optional[threading.Thread] = None

    def post(self, event: Event) -> None:
        with self.inbox_lock:
            self.pending.append(event)
        self.idle.clear()

    def drain_pending(self) -> bool:
        with self.inbox_lock:
            batch, self.pending = self.pending, []
        for event in batch:
            self.processor.deliver(event)
            self.processor.drain_local()
        return bool(batch)


class ThreadedMachine:
    """Run a Model on real threads; commits identical results."""

    def __init__(self, model: Model, processors: int,
                 protocol: str = "optimistic",
                 partition: Union[str, Partition, Callable] = "round_robin",
                 until: Optional[int] = None,
                 gvt_interval_s: float = 0.002) -> None:
        if protocol == "dynamic":
            raise ValueError(
                "the threaded backend supports static protocols only; "
                "use the modelled machine for the dynamic configuration")
        model.validate()
        self.model = model
        self.until = until
        self.gvt = MINUS_INFINITY
        self.gvt_interval_s = gvt_interval_s
        self.gvt_rounds = 0
        self._stop = threading.Event()
        self._pause = threading.Event()
        self._paused = threading.Barrier(processors + 1)
        self._error: Optional[BaseException] = None
        # Build processors exactly like the modelled machine, then strip
        # the model-time aspects we do not need.
        inner = ParallelMachine(model, processors, protocol=protocol,
                                cost=SHARED_MEMORY, partition=partition,
                                until=until)
        self._inner = inner
        self.workers = [_Worker(proc) for proc in inner.procs]
        for worker in self.workers:
            proc = worker.processor
            proc.route = self._make_route(proc)

    def _make_route(self, sender: Processor):
        placement = self._inner.placement
        runtimes = self._inner._runtimes

        def route(event: Event) -> None:
            src_rt = runtimes.get(event.src)
            if (event.sign > 0 and src_rt is not None
                    and src_rt.mode is SyncMode.CONSERVATIVE):
                event = event.stamped(src_rt.cons_epoch)
            target = self.workers[placement[event.dst]]
            if target.processor is sender:
                sender.local_fifo.append(event)
            else:
                target.post(event)
        return route

    # ------------------------------------------------------------------
    def run(self, timeout_s: float = 120.0) -> ThreadedOutcome:
        for worker in self.workers:
            worker.thread = threading.Thread(
                target=self._worker_loop, args=(worker,), daemon=True)
            worker.thread.start()
        try:
            self._coordinate(timeout_s)
        finally:
            self._stop.set()
            self._paused.abort()
            for worker in self.workers:
                if worker.thread is not None:
                    worker.thread.join(timeout=5.0)
        if self._error is not None:
            raise self._error
        return self._finish()

    def _worker_loop(self, worker: _Worker) -> None:
        try:
            while not self._stop.is_set():
                if self._pause.is_set():
                    # Double rendezvous: all workers pause, the
                    # coordinator works, everyone resumes.  A broken
                    # barrier is the shutdown signal (a thread released
                    # from a completed generation can still observe a
                    # subsequent abort), not an error: loop and re-check
                    # the stop flag.
                    try:
                        self._paused.wait()
                        self._paused.wait()
                    except threading.BrokenBarrierError:
                        continue
                progressed = False
                with worker.lock:
                    progressed |= worker.drain_pending()
                    progressed |= worker.processor.act()
                if not progressed:
                    worker.idle.set()
                    # Back off briefly; delivery or GVT will wake us.
                    worker.idle.wait(timeout=0.0005)
        except BaseException as exc:  # pragma: no cover - defensive
            self._error = exc
            self._stop.set()
        finally:
            # Unblock the coordinator if we die mid-pause.
            if self._error is not None:
                self._paused.abort()

    def _coordinate(self, timeout_s: float) -> None:
        import time
        deadline = time.monotonic() + timeout_s
        while not self._stop.is_set():
            if time.monotonic() > deadline:
                raise ProtocolError("threaded run exceeded its deadline")
            time.sleep(self.gvt_interval_s)
            if not self._global_round():
                return
            if self._error is not None:
                return

    def _global_round(self) -> bool:
        """Stop the world, advance GVT, release blocked LPs.

        Returns True while work remains.  Quiescence MUST be evaluated
        here, with every worker parked at the barrier: checked while
        workers run, a message in flight between two of them looks like
        global completion and the run would terminate with events
        unprocessed.
        """
        work_remains = True
        self._pause.set()
        for worker in self.workers:
            worker.idle.set()
        try:
            self._paused.wait(timeout=10.0)
        except threading.BrokenBarrierError:
            if self._error is None and not self._stop.is_set():
                raise ProtocolError("worker failed to reach the barrier")
            return False
        try:
            # The world is stopped: flush cross-thread inboxes, compute
            # exact GVT, refresh bounds, fossil-collect, re-arm.  The
            # flush must run to a FIXPOINT: delivering one worker's
            # messages can trigger rollbacks whose antimessages land in
            # the pending queue of a worker drained moments earlier, and
            # a GVT computed with such a message outstanding is too
            # high — fossil collection would then commit speculative
            # events that the in-flight antimessage is about to cancel.
            drained = True
            while drained:
                drained = False
                for worker in self.workers:
                    drained |= worker.drain_pending()
            gvt = self._inner.compute_gvt()
            if gvt > self.gvt:
                self.gvt = gvt
            self._inner.gvt = self.gvt
            self._inner._refresh_release_floors()
            for worker in self.workers:
                proc = worker.processor
                proc.gvt_bound = self.gvt
                proc.stats.gvt_rounds += 1
                proc.fossil_collect(self.gvt)
                proc.rearm_blocked()
            self.gvt_rounds += 1
            work_remains = self._has_work()
        finally:
            # Release: clear the flag *before* the second rendezvous so
            # resumed workers observe it down.
            self._pause.clear()
            try:
                self._paused.wait(timeout=10.0)
            except threading.BrokenBarrierError:
                pass
        return work_remains

    def _has_work(self) -> bool:
        for worker in self.workers:
            with worker.inbox_lock:
                if worker.pending:
                    return True
            proc = worker.processor
            if proc.local_fifo or proc.inbox:
                return True
            for runtime in proc.runtimes.values():
                head = runtime.head()
                if head is None:
                    continue
                if self.until is None or head.time.pt <= self.until:
                    return True
        return False

    def _finish(self) -> ThreadedOutcome:
        for worker in self.workers:
            proc = worker.processor
            for runtime in proc.runtimes.values():
                proc._commit_log(runtime)
        stats = RunStats()
        for worker in self.workers:
            stats.merge(worker.processor.stats)
        return ThreadedOutcome(stats=stats, gvt=self.gvt,
                               processors=len(self.workers),
                               gvt_rounds=self.gvt_rounds)


def run_threaded(model: Model, processors: int,
                 protocol: str = "optimistic",
                 partition: Union[str, Partition, Callable] = "round_robin",
                 until: Optional[int] = None,
                 timeout_s: float = 120.0) -> ThreadedOutcome:
    """Convenience wrapper mirroring :func:`run_parallel`."""
    machine = ThreadedMachine(model, processors, protocol=protocol,
                              partition=partition, until=until)
    return machine.run(timeout_s=timeout_s)
