"""Real-thread backend: the distributed kernel on actual OS threads.

The modelled machine (machine.py) is how the benchmarks measure
*speedup* — CPython's GIL makes wall-clock thread speedup unobtainable,
as documented in DESIGN.md.  This backend exists for a different
purpose: to demonstrate that the protocol really is a distributed
algorithm — LPs partitioned over concurrently running workers that
communicate only through message queues, with a stop-the-world
coordinator standing in for the paper's global synchronization — and
that it still commits exactly the sequential results.

Scope: the static protocols (optimistic / conservative / mixed).  The
dynamic mode is excluded because a receiver may sample a sender's mode
while it is mid-switch; the modelled machine serializes those reads,
real threads would need extra locking for no demonstrative gain.

Locking discipline: each worker owns its processor's state and touches
it under the processor's big lock; cross-processor routing only ever
touches the *target's inbox lock*, a leaf lock that is never held while
acquiring anything else — so there is no lock-order cycle.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from ..core.event import Event
from ..core.model import Model
from ..core.stats import RunStats
from ..core.vtime import INFINITY, MINUS_INFINITY, VirtualTime
from ..fabric.plan import FaultPlan
from ..fabric.threaded import ThreadedFabric
from ..resilience import (DEFAULT_WALL_S, WallClockWatchdog, build_report,
                          resolve_watchdog, surface)
from .backend import (BackendOutcome, proc_has_work, resolve_model,
                      stamp_epoch)
from .cost import SHARED_MEMORY
from .engine import Processor, ProtocolError
from .machine import ParallelMachine
from .partition import Partition


@dataclass
class ThreadedOutcome(BackendOutcome):
    """Result of one threaded run (the shared backend shape)."""


class _Worker:
    """One thread driving one Processor."""

    def __init__(self, processor: Processor,
                 fabric: Optional[ThreadedFabric] = None) -> None:
        self.processor = processor
        self.fabric = fabric
        self.lock = threading.Lock()
        self.inbox_lock = threading.Lock()
        self.pending: List[Event] = []
        self.idle = threading.Event()
        self.thread: Optional[threading.Thread] = None

    def post(self, item) -> None:
        with self.inbox_lock:
            self.pending.append(item)
        self.idle.clear()

    def drain_pending(self) -> bool:
        with self.inbox_lock:
            batch, self.pending = self.pending, []
        for item in batch:
            # With a fabric, posted items are fabric packets that must be
            # unwrapped (dedup / reorder-buffer) into in-order events.
            events = ((item,) if self.fabric is None
                      else self.fabric.receive(item))
            for event in events:
                self.processor.deliver(event)
                self.processor.drain_local()
        return bool(batch)


class ThreadedMachine:
    """Run a Model on real threads; commits identical results."""

    def __init__(self, model: Model, processors: int,
                 protocol: str = "optimistic",
                 partition: Union[str, Partition, Callable] = "round_robin",
                 until: Optional[int] = None,
                 gvt_interval_s: float = 0.002,
                 fault_plan: Optional[FaultPlan] = None,
                 recovery: Optional[bool] = None,
                 watchdog_s: Optional[float] = None) -> None:
        if protocol == "dynamic":
            raise ValueError(
                "the threaded backend supports static protocols only; "
                "use the modelled machine for the dynamic configuration")
        model = resolve_model(model)
        model.validate()
        self.model = model
        self.until = until
        self.gvt = MINUS_INFINITY
        self.gvt_interval_s = gvt_interval_s
        self.gvt_rounds = 0
        self._stop = threading.Event()
        self._pause = threading.Event()
        self._paused = threading.Barrier(processors + 1)
        self._error: Optional[BaseException] = None
        # Delivery fabric: None keeps the historical raw-Event fast path;
        # a fault plan routes every remote message through the reliable
        # layer (see repro.fabric.threaded).
        if fault_plan is not None and (fault_plan.faulty or recovery):
            self.fabric: Optional[ThreadedFabric] = ThreadedFabric(
                fault_plan, recovery=recovery)
        else:
            self.fabric = None
        #: Crash schedule: (completed-global-rounds, processor) pairs.
        self._crashes = sorted(
            fault_plan.crashes) if fault_plan is not None else []
        # Build processors exactly like the modelled machine, then strip
        # the model-time aspects we do not need.
        inner = ParallelMachine(model, processors, protocol=protocol,
                                cost=SHARED_MEMORY, partition=partition,
                                until=until)
        self._inner = inner
        self.workers = [_Worker(proc, self.fabric) for proc in inner.procs]
        if self.fabric is not None:
            self.fabric.bind(self)
        # Liveness: wall-clock no-progress watchdog probed at global
        # rounds, plus the shared cancellation-horizon maintenance.
        # Eager lowering happens from worker threads (any rollback may
        # mint a cancellation) so it takes a leaf lock; the exact raise
        # happens only in _global_round with the world stopped.
        self.watchdog_bound = float(
            resolve_watchdog(watchdog_s, DEFAULT_WALL_S))
        self._watchdog = WallClockWatchdog(self.watchdog_bound)
        self._floor_lock = threading.Lock()
        self._liveness = RunStats()
        for worker in self.workers:
            proc = worker.processor
            proc.route = self._make_route(proc)
            proc.cancel_note = self._note_cancellation

    def _note_cancellation(self, time: VirtualTime) -> None:
        with self._floor_lock:
            for worker in self.workers:
                proc = worker.processor
                if time < proc.cancel_floor:
                    proc.cancel_floor = time

    def _cancellation_floor(self) -> VirtualTime:
        """Exact horizon recompute — called at quiescence, world stopped.

        At quiescence the cross-thread network is empty, so outstanding
        cancellations are withheld lazy entries plus any negatives still
        sitting in local FIFOs.  Computed *before* the lazy flush: every
        antimessage the flush then routes originates from a withheld
        entry this scan already counted, so the value stays a valid
        (at worst conservative) lower bound until the next round.
        """
        low = INFINITY
        for worker in self.workers:
            proc = worker.processor
            for runtime in proc.runtimes.values():
                for pending in runtime.lazy_pending:
                    if pending.time < low:
                        low = pending.time
            for event in proc.local_fifo:
                if event.sign < 0 and event.time < low:
                    low = event.time
            with worker.inbox_lock:
                for item in worker.pending:
                    event = item if isinstance(item, Event) else None
                    if event is not None and event.sign < 0 \
                            and event.time < low:
                        low = event.time
        return low

    def _make_route(self, sender: Processor):
        placement = self._inner.placement
        runtimes = self._inner._runtimes

        def route(event: Event) -> None:
            event = stamp_epoch(runtimes, event)
            target = self.workers[placement[event.dst]]
            if target.processor is sender:
                sender.local_fifo.append(event)
            elif self.fabric is None:
                target.post(event)
            else:
                self.fabric.send(sender.index, target, event)
        return route

    # ------------------------------------------------------------------
    def run(self, timeout_s: float = 120.0) -> ThreadedOutcome:
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        deadline = time.monotonic() + timeout_s
        # Shutdown grace: how long a signalled worker may take to exit.
        # Derived from the run budget (a 2 s run should not hang 5 s in
        # joins) but bounded so joins stay snappy on long budgets.
        grace = max(0.5, min(5.0, timeout_s / 10.0))
        if self.fabric is not None and self.fabric.recovery:
            # Initial durable checkpoints, before any thread runs: a
            # crash in the first round recovers to the seeded state.
            self.fabric.take_checkpoints(self.workers)
        for worker in self.workers:
            worker.thread = threading.Thread(
                target=self._worker_loop, args=(worker,), daemon=True)
            worker.thread.start()
        failure: Optional[ProtocolError] = None
        try:
            self._coordinate(deadline)
        except ProtocolError as exc:
            failure = exc
        finally:
            self._stop.set()
            self._paused.abort()
            for worker in self.workers:
                worker.idle.set()
            join_deadline = time.monotonic() + grace
            laggards = []
            for worker in self.workers:
                if worker.thread is not None:
                    worker.thread.join(timeout=max(
                        0.05, join_deadline - time.monotonic()))
                    if worker.thread.is_alive():
                        laggards.append(worker.processor.index)
        if self._error is not None:
            raise self._error
        if failure is not None:
            # Attach what the run managed before the deadline so callers
            # (and test diagnostics) can see how far it got.
            failure.partial_stats = self._partial_stats()
            if laggards:
                failure.args = (
                    f"{failure.args[0]}; workers {laggards} did not stop "
                    f"within the {grace:.1f}s shutdown grace",)
            raise failure
        if laggards:
            exc = ProtocolError(
                f"workers {laggards} still alive {grace:.1f}s after the "
                f"run completed (wedged worker thread?)")
            exc.partial_stats = self._partial_stats()
            raise exc
        return self._finish()

    def _partial_stats(self) -> RunStats:
        """Best-effort counters for error reporting (post-shutdown)."""
        stats = RunStats()
        for worker in self.workers:
            stats.merge(worker.processor.stats)
        if self.fabric is not None:
            stats.merge(self.fabric.stats)
        self._liveness.watchdog_probes = self._watchdog.probes
        stats.merge(self._liveness)
        return stats

    def _worker_loop(self, worker: _Worker) -> None:
        try:
            while not self._stop.is_set():
                if self._pause.is_set():
                    # Double rendezvous: all workers pause, the
                    # coordinator works, everyone resumes.  A broken
                    # barrier is the shutdown signal (a thread released
                    # from a completed generation can still observe a
                    # subsequent abort), not an error: loop and re-check
                    # the stop flag.
                    try:
                        self._paused.wait()
                        self._paused.wait()
                    except threading.BrokenBarrierError:
                        continue
                progressed = False
                with worker.lock:
                    progressed |= worker.drain_pending()
                    progressed |= worker.processor.act()
                if not progressed:
                    worker.idle.set()
                    # Back off briefly; delivery or GVT will wake us.
                    worker.idle.wait(timeout=0.0005)
        except BaseException as exc:  # pragma: no cover - defensive
            self._error = exc
            self._stop.set()
        finally:
            # Unblock the coordinator if we die mid-pause.
            if self._error is not None:
                self._paused.abort()

    def _coordinate(self, deadline: float) -> None:
        while not self._stop.is_set():
            if time.monotonic() > deadline:
                error = ProtocolError(
                    f"threaded run exceeded its deadline after "
                    f"{self.gvt_rounds} global rounds (gvt {self.gvt})")
                # Best-effort forensics: workers are still running, but
                # attribute reads are atomic enough for a diagnosis.
                error.stall_report = build_report(
                    "threads", "run deadline exceeded",
                    (w.processor for w in self.workers), gvt=self.gvt,
                    bound=self.watchdog_bound)
                raise error
            time.sleep(self.gvt_interval_s)
            if not self._global_round(deadline):
                return
            if self._error is not None:
                return

    def _barrier_timeout(self, deadline: float) -> float:
        """Barrier waits are bounded by the run deadline, not a magic
        constant: a 2 s run must fail within ~2 s, and a generous budget
        may legitimately wait longer for a slow machine."""
        return max(0.1, min(10.0, deadline - time.monotonic()))

    def _pause_diagnostic(self) -> str:
        parked = self._paused.n_waiting
        alive = [w.processor.index for w in self.workers
                 if w.thread is not None and w.thread.is_alive()]
        return (f"{parked}/{len(self.workers) + 1} parties reached the "
                f"barrier; alive workers: {alive}")

    def _drain_to_quiescence(self) -> None:
        """Flush cross-thread inboxes to a fixpoint (world stopped).

        Delivering one worker's messages can trigger rollbacks whose
        antimessages land in the pending queue of a worker drained
        moments earlier, so the flush loops until nothing moves.  With a
        fabric, each pass also runs the retransmit pump: every
        unacknowledged (possibly dropped) message is re-posted — the
        per-message drop budget bounds the loop — so quiescence implies
        the *network* is empty too, not merely the queues.
        """
        while True:
            drained = False
            for worker in self.workers:
                drained |= worker.drain_pending()
            if self.fabric is not None and self.fabric.pump(self.workers):
                drained = True
            if drained:
                continue
            if self.fabric is not None and not self.fabric.quiet():
                # A pump pass may post nothing yet leave messages owed:
                # every retransmit die came up "drop".  The per-message
                # drop budget caps how often that can happen, so keep
                # pumping — the next passes are guaranteed to post.
                continue
            break

    def _global_round(self, deadline: float) -> bool:
        """Stop the world, advance GVT, release blocked LPs.

        Returns True while work remains.  Quiescence MUST be evaluated
        here, with every worker parked at the barrier: checked while
        workers run, a message in flight between two of them looks like
        global completion and the run would terminate with events
        unprocessed.
        """
        work_remains = True
        self._pause.set()
        for worker in self.workers:
            worker.idle.set()
        timeout = self._barrier_timeout(deadline)
        try:
            self._paused.wait(timeout=timeout)
        except threading.BrokenBarrierError:
            if self._error is None and not self._stop.is_set():
                raise ProtocolError(
                    f"worker failed to pause within {timeout:.1f}s "
                    f"({self._pause_diagnostic()})")
            return False
        try:
            self._drain_to_quiescence()
            # Crash schedule: fire with the world stopped and the
            # network provably empty, then re-drain — recovery re-posts
            # the peers' journals for the restored processor.
            while self._crashes and self._crashes[0][0] <= self.gvt_rounds:
                _at, victim = self._crashes.pop(0)
                self.fabric.crash(self.workers, victim, self.gvt)
                self._drain_to_quiescence()
            gvt = self._inner.compute_gvt()
            if gvt > self.gvt:
                self.gvt = gvt
            self._inner.gvt = self.gvt
            self._inner._refresh_release_floors()
            with self._floor_lock:
                floor = self._cancellation_floor()
                for worker in self.workers:
                    worker.processor.cancel_floor = floor
            for worker in self.workers:
                proc = worker.processor
                proc.gvt_bound = self.gvt
                proc.stats.gvt_rounds += 1
                for runtime in proc.runtimes.values():
                    proc.flush_lazy(runtime, self.gvt)
                proc.fossil_collect(self.gvt)
                proc.rearm_blocked()
            if self.fabric is not None and self.fabric.recovery:
                self.fabric.take_checkpoints(self.workers)
            self.gvt_rounds += 1
            self._sample_spread()
            if self._watchdog.tick(self._progress_marker()):
                self._stall(
                    f"no GVT advance or commit for "
                    f"{self._watchdog.idle_s:.1f}s "
                    f"(bound {self.watchdog_bound:.1f}s) at round "
                    f"{self.gvt_rounds}")
            work_remains = self._has_work()
        finally:
            # Release: clear the flag *before* the second rendezvous so
            # resumed workers observe it down.
            self._pause.clear()
            try:
                self._paused.wait(timeout=self._barrier_timeout(deadline))
            except threading.BrokenBarrierError:
                pass
        return work_remains

    def _sample_spread(self) -> None:
        """Korniss surface width, sampled with the world stopped."""
        if not self._watchdog.enabled:
            # watchdog_s=0 disables the liveness layer, sampling too.
            return
        lo, hi, width = surface(
            runtime.lp.now
            for worker in self.workers
            for runtime in worker.processor.runtimes.values())
        if lo is None:
            return
        self._liveness.vt_spread_samples += 1
        self._liveness.vt_spread_width_sum += width
        if width > self._liveness.vt_spread_width_max:
            self._liveness.vt_spread_width_max = width

    def _progress_marker(self):
        return (self.gvt,
                sum(worker.processor.stats.events_committed
                    for worker in self.workers))

    def _stall(self, reason: str) -> None:
        """Diagnose an unrecoverable stall (world stopped): raise with
        forensics; run() attaches the partial stats on the way out."""
        self._liveness.watchdog_stalls += 1
        pending = sum(len(worker.pending) for worker in self.workers)
        in_flight = {"worker_pending": pending}
        if self.fabric is not None:
            in_flight["fabric_quiet"] = self.fabric.quiet()
        error = ProtocolError(f"stall diagnosed: {reason}")
        error.stall_report = build_report(
            "threads", reason,
            (worker.processor for worker in self.workers),
            gvt=self.gvt, bound=self.watchdog_bound, in_flight=in_flight)
        raise error

    def _has_work(self) -> bool:
        if self.fabric is not None and not self.fabric.quiet():
            return True
        for worker in self.workers:
            with worker.inbox_lock:
                if worker.pending:
                    return True
            if proc_has_work(worker.processor, self.until):
                return True
        return False

    def _finish(self) -> ThreadedOutcome:
        for worker in self.workers:
            proc = worker.processor
            for runtime in proc.runtimes.values():
                proc._commit_log(runtime)
        stats = self._partial_stats()
        return ThreadedOutcome(stats=stats, gvt=self.gvt,
                               processors=len(self.workers),
                               gvt_rounds=self.gvt_rounds)


def run_threaded(model: Model, processors: int,
                 protocol: str = "optimistic",
                 partition: Union[str, Partition, Callable] = "round_robin",
                 until: Optional[int] = None,
                 timeout_s: float = 120.0,
                 fault_plan: Optional[FaultPlan] = None,
                 recovery: Optional[bool] = None,
                 watchdog_s: Optional[float] = None) -> ThreadedOutcome:
    """Convenience wrapper mirroring :func:`run_parallel`."""
    machine = ThreadedMachine(model, processors, protocol=protocol,
                              partition=partition, until=until,
                              fault_plan=fault_plan, recovery=recovery,
                              watchdog_s=watchdog_s)
    return machine.run(timeout_s=timeout_s)
