"""Cost model for the modelled multiprocessor.

The paper measured wall-clock speedups on a 14-processor SGI Challenge.
A pure-Python reproduction cannot demonstrate wall-clock thread speedup
(the GIL serializes execution), so — per the documented substitution in
DESIGN.md — the parallel run time is the *makespan* of a deterministic
discrete-event model of the multiprocessor: each protocol action charges
model time to the processor performing it, and inter-processor messages
take latency to arrive.

All costs are in abstract units where executing one event costs 1.0.
The defaults model a shared-memory multiprocessor (cheap messages, like
the SGI Challenge); what the benchmarks claim is the *shape* of the
speedup curves under these relative costs, not absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Model-time charges for every protocol action."""

    #: Executing one event at an LP (the unit).
    event: float = 1.0
    #: Enqueueing a message for an LP on the same processor.
    local_msg: float = 0.02
    #: Sender-side overhead of a remote message.
    remote_send: float = 0.12
    #: Transit latency of a remote message (does not occupy the sender).
    remote_latency: float = 0.8
    #: Receiver-side overhead of ingesting one remote message.
    remote_recv: float = 0.05
    #: Taking one state snapshot (optimistic LPs, before each event).
    snapshot: float = 0.15
    #: Fixed part of a rollback (restore state, reset queues).
    rollback_fixed: float = 0.4
    #: Per squashed event during a rollback (requeue + antimessage prep).
    rollback_per_event: float = 0.25
    #: Sending one null message (conservative with lookahead).
    null_msg: float = 0.05
    #: Per-processor charge of one global synchronization (GVT /
    #: deadlock-recovery barrier).
    gvt_round: float = 3.0
    #: Per-processor charge of fossil-collecting after a GVT round.
    fossil: float = 0.3
    #: Switching an LP between optimistic and conservative mode.
    mode_switch: float = 0.5

    def scaled(self, **overrides: float) -> "CostModel":
        """A copy with some charges replaced (for sensitivity studies)."""
        from dataclasses import replace
        return replace(self, **overrides)


#: Shared-memory multiprocessor, the paper's platform.
SHARED_MEMORY = CostModel()

#: A cluster / message-passing flavour: expensive remote traffic.  Used by
#: ablation benchmarks to show how the protocol ranking shifts.
DISTRIBUTED = CostModel(remote_send=0.5, remote_latency=8.0,
                        remote_recv=0.3, gvt_round=12.0)
