"""Modelled multiprocessor, synchronization protocols, partitioning."""

from .backend import BackendOutcome, WorkerCore
from .cost import DISTRIBUTED, SHARED_MEMORY, CostModel
from .dist import DistMachine, DistOutcome, run_dist, serve
from .engine import AdaptPolicy, LPRuntime, Processor, ProtocolError
from .machine import (PROTOCOLS, ParallelMachine, ParallelOutcome,
                      run_parallel)
from .partition import (PARTITIONERS, bfs_blocks, block, cut_channels,
                        round_robin)
from .procs import ProcsMachine, ProcsOutcome, run_procs
from .threads import ThreadedMachine, ThreadedOutcome, run_threaded

__all__ = [
    "BackendOutcome", "WorkerCore",
    "CostModel", "SHARED_MEMORY", "DISTRIBUTED",
    "DistMachine", "DistOutcome", "run_dist", "serve",
    "AdaptPolicy", "LPRuntime", "Processor", "ProtocolError",
    "PROTOCOLS", "ParallelMachine", "ParallelOutcome", "run_parallel",
    "PARTITIONERS", "round_robin", "block", "bfs_blocks", "cut_channels",
    "ProcsMachine", "ProcsOutcome", "run_procs",
    "ThreadedMachine", "ThreadedOutcome", "run_threaded",
]
