"""The modelled multiprocessor: deterministic parallel-machine simulation.

The machine executes a :class:`~repro.core.model.Model` over ``P``
modelled processors.  It is itself a discrete-event simulation in *model
time* (cost units): at every step the processor that can act earliest
does one unit of protocol work, and inter-processor messages arrive after
a latency.  Determinism comes from the strict (time, index) scheduling
order, so the same run always produces the same makespan — and the same
committed simulation results as the sequential engine, which the test
suite checks exhaustively.

Global services implemented here:

* **GVT** — computed exactly (the machine sees all queues and in-flight
  messages).  Periodic rounds advance the commit horizon used both for
  fossil collection and as the safety bound that lets conservative LPs
  accept events from optimistic senders.
* **Deadlock recovery** — the paper's protocol is lookahead-free: when no
  processor can act but unprocessed events remain, a global
  synchronization (modelled as a barrier costing ``gvt_round`` on every
  processor) computes the minimum pending timestamp; events at that
  minimum become safe and the simulation resumes.  Under the
  user-consistent comparison model without lookahead this degenerates to
  (nearly) one global round per simultaneous set — the overhead the
  paper's Fig. 4 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.event import Event
from ..core.model import Model, SyncMode
from ..core.stats import RunStats
from ..core.vtime import INFINITY, MINUS_INFINITY, VirtualTime
from ..fabric.plan import FaultPlan
from ..fabric.transport import PerfectFabric, ReliableFabric
from ..resilience import (DEFAULT_MODEL_STEPS, StepWatchdog, build_report,
                          resolve_watchdog, surface)
from .backend import resolve_model, stamp_epoch
from .cost import SHARED_MEMORY, CostModel
from .engine import AdaptPolicy, LPRuntime, Processor, ProtocolError
from .partition import PARTITIONERS, Partition

#: Named protocol configurations (paper Sec. 4).
PROTOCOLS = ("optimistic", "conservative", "mixed", "dynamic")


@dataclass
class ParallelOutcome:
    """Result of one modelled parallel run."""

    stats: RunStats
    #: Model-time makespan (max processor clock at completion).
    makespan: float
    #: Final GVT (== furthest committed virtual time).
    gvt: VirtualTime
    processors: int
    #: Final clock of each processor (load-balance observation).
    clocks: List[float]
    #: Channels that crossed processor boundaries.
    remote_channels: int


class ParallelMachine:
    """Co-simulation of ``P`` processors running the mixed protocol."""

    def __init__(self, model: Model, processors: int,
                 protocol: str = "dynamic",
                 cost: CostModel = SHARED_MEMORY,
                 partition: Union[str, Partition, Callable] = "round_robin",
                 user_consistent: bool = False,
                 lookahead: Optional[str] = None,
                 gvt_interval: int = 0,
                 adapt: Optional[AdaptPolicy] = None,
                 checkpoint_interval: int = 1,
                 lazy_cancellation: bool = False,
                 until: Optional[int] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 recovery: Optional[bool] = None,
                 watchdog: Optional[int] = None,
                 tracer=None, scheduler=None) -> None:
        model = resolve_model(model)
        model.validate()
        if processors < 1:
            raise ValueError("need at least one processor")
        if protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {protocol!r}; "
                             f"choose from {PROTOCOLS}")
        self.model = model
        self.cost = cost
        self.protocol = protocol
        self.user_consistent = user_consistent
        self.lookahead = lookahead
        self.until = until
        self.placement = self._resolve_partition(partition, processors)
        self.procs: List[Processor] = [
            Processor(i, cost, user_consistent=user_consistent,
                      use_lookahead=lookahead is not None, adapt=adapt,
                      checkpoint_interval=checkpoint_interval,
                      lazy_cancellation=lazy_cancellation)
            for i in range(processors)
        ]
        self.gvt = MINUS_INFINITY
        self._runtimes: Dict[int, LPRuntime] = {}
        #: Conformance hooks (repro.harness): both default to None and
        #: are propagated to every processor, LP and the fabric.
        self.tracer = tracer
        self.scheduler = scheduler
        for proc in self.procs:
            proc.tracer = tracer
            proc.scheduler = scheduler
        # Delivery fabric: perfect FIFO links by default; a fault plan
        # switches to the reliable (ack/retransmit/dedup) layer so the
        # protocol still commits sequential-identical results.
        if fault_plan is not None and (fault_plan.faulty or recovery):
            self.fabric = ReliableFabric(fault_plan, recovery=recovery)
        else:
            self.fabric = PerfectFabric()
        #: Crash schedule (executed-step, processor) pairs, soonest first.
        self._crash_schedule = sorted(
            fault_plan.crashes) if fault_plan is not None else []
        # GVT cadence: every `gvt_interval` executed events (0 = auto).
        # A second, blocking-driven trigger keeps conservative LPs fed in
        # mixed populations: when blocked polls accumulate faster than
        # events, the commit horizon is what they are starving for.
        self.gvt_interval = gvt_interval or max(64, 16 * processors)
        self.blocked_poll_trigger = 8 * processors
        # The blocking-driven trigger is rate-limited: in an all-
        # conservative population every round re-arms hundreds of LPs
        # that immediately re-block, and an unthrottled trigger then
        # fires a round per event (a round storm that erases all
        # parallelism).
        self.blocked_gvt_min_interval = max(24, 3 * processors)
        self._since_gvt = 0
        self._blocked_at_gvt = 0
        self._peak_speculative = 0
        # Liveness: step-count watchdog (wall clock is meaningless on the
        # modelled machine) probed at GVT rounds — a healthy machine runs
        # rounds every few dozen events, so the marker is examined often,
        # while the per-step loop stays free of liveness bookkeeping.
        self.watchdog_bound = int(
            resolve_watchdog(watchdog, DEFAULT_MODEL_STEPS))
        self._watchdog = StepWatchdog(self.watchdog_bound)
        self._steps = 0
        #: Monotone main-loop iteration counter — the watchdog's
        #: *position*.  Ticking on ``_steps`` (productive executions
        #: only) starves the watchdog exactly when it is needed most:
        #: a machine spinning through barrier GVT rounds or idle act()
        #: iterations freezes ``_steps``, so a step-denominated probe
        #: can never observe enough elapsed distance to trip.  Work
        #: units advance on every iteration, productive or not.
        self._work = 0
        #: Progress marker of the previous barrier GVT round — see run().
        self._barrier_marker: Optional[Tuple] = None
        #: Machine-level liveness counters (vt-surface spread samples,
        #: watchdog probes) merged into the outcome stats at _finish.
        self._liveness = RunStats()
        if tracer is not None:
            self.fabric.tracer = tracer
        self._build()
        self.fabric.bind(self)

    def install_fabric(self, fabric) -> None:
        """Swap the delivery fabric (must happen before :meth:`run`).

        Used by :func:`repro.fabric.install_jitter` and tests to attach a
        pre-built fabric to a machine constructed with default arguments.
        """
        if self.tracer is not None:
            fabric.tracer = self.tracer
        self.fabric = fabric
        fabric.bind(self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _resolve_partition(self, partition, processors: int) -> Partition:
        if isinstance(partition, str):
            return PARTITIONERS[partition](self.model, processors)
        if callable(partition):
            return partition(self.model, processors)
        return dict(partition)

    def _mode_for(self, lp_id: int) -> SyncMode:
        if self.protocol == "optimistic":
            return SyncMode.OPTIMISTIC
        if self.protocol == "conservative":
            return SyncMode.CONSERVATIVE
        if self.protocol == "dynamic":
            return SyncMode.DYNAMIC
        # "mixed": the static per-LP assignment recorded in the model
        # (the paper's heuristic: synchronous components conservative,
        # asynchronous ones optimistic).
        mode = self.model.sync_modes[lp_id]
        return SyncMode.OPTIMISTIC if mode is SyncMode.DYNAMIC else mode

    def _lookahead_for(self, src: int, dst: int) -> Optional[Tuple[int, int]]:
        if self.lookahead is None:
            return None
        channel = self.model.channels.get((src, dst))
        if channel is None:
            return None
        if self.lookahead == "vhdl":
            # Every VHDL kernel channel advances the logical clock by at
            # least one phase from cause to effect.
            return (0, 1)
        if self.lookahead == "delays":
            if channel.lookahead is None:
                return (0, 1)
            la = channel.lookahead
            return (la.pt, la.lt) if isinstance(la, VirtualTime) else la
        raise ValueError(f"unknown lookahead policy {self.lookahead!r}")

    def _build(self) -> None:
        for lp in self.model.lps:
            runtime = LPRuntime(lp, self._mode_for(lp.lp_id),
                                self.model.predecessors(lp.lp_id),
                                self.model.successors(lp.lp_id))
            self._runtimes[lp.lp_id] = runtime
            self.procs[self.placement[lp.lp_id]].adopt(runtime)
            if self.tracer is not None:
                self.tracer.register_lp(lp)
                lp.tracer = self.tracer
        for proc in self.procs:
            proc.runtime_of = self._runtimes.__getitem__
            proc.route = self._make_route(proc)
            proc.until = self.until
            proc.lookahead_of = self._lookahead_for
            proc.gvt_bound = self.gvt
            proc.cancel_note = self._note_cancellation
        for lp in self.model.lps:
            runtime = self._runtimes[lp.lp_id]
            for event in lp.init_events():
                if runtime.mode is SyncMode.CONSERVATIVE:
                    event = event.stamped(runtime.cons_epoch)
                self.procs[self.placement[event.dst]].seed(event)

    def _make_route(self, sender: Processor) -> Callable[[Event], None]:
        def route(event: Event) -> None:
            # Stamp the conservative-promise epoch at send time (shared
            # backend obligation; see repro.parallel.backend).
            event = stamp_epoch(self._runtimes, event)
            dst_proc = self.procs[self.placement[event.dst]]
            if dst_proc is sender:
                sender.clock += self.cost.local_msg
                sender.local_fifo.append(event)
            else:
                self.fabric.send(sender, dst_proc, event)
        return route

    # ------------------------------------------------------------------
    # Global services
    # ------------------------------------------------------------------
    def compute_gvt(self) -> VirtualTime:
        """Exact GVT: min over all queued and in-flight event times."""
        low = INFINITY
        for proc in self.procs:
            t = proc.local_min_time()
            if t < low:
                low = t
            for event in proc.local_fifo:
                if event.time < low:
                    low = event.time
        # Messages the fabric still owes (unacked or parked in reorder
        # buffers) are in-flight work and must pin the commit horizon.
        for event in self.fabric.pending_events():
            if event.time < low:
                low = event.time
        return low

    def _gvt_round(self, barrier: bool) -> None:
        """Advance the commit horizon; optionally synchronize clocks.

        Periodic rounds are asynchronous (Mattern-style, each processor
        pays the token cost); deadlock recovery is a true barrier (every
        processor waits for the slowest before the minimum is known).
        """
        if barrier:
            fence = max(proc.clock for proc in self.procs)
            for proc in self.procs:
                proc.clock = fence + self.cost.gvt_round
            # A stalled machine must not deadlock on a dropped message:
            # force every pending retransmission timer to fire now.
            self.fabric.fire_all()
        else:
            for proc in self.procs:
                proc.clock += self.cost.gvt_round
        gvt = self.compute_gvt()
        if gvt > self.gvt:
            self.gvt = gvt
        if self.tracer is not None:
            g = self.gvt
            self.tracer.record(
                "gvt", time=g,
                gvt=None if g in (INFINITY, MINUS_INFINITY)
                else (g[0], g[1]),
                barrier=barrier)
        self._note_speculative_peak()
        self._refresh_release_floors()
        for proc in self.procs:
            proc.gvt_bound = self.gvt
            proc.stats.gvt_rounds += 1
            for runtime in proc.runtimes.values():
                proc.flush_lazy(runtime, self.gvt)
            proc.drain_local()
            proc.fossil_collect(self.gvt)
            proc.rearm_blocked()
        self.fabric.on_gvt_round(self)
        # Cancellation horizon: exact recompute now that flushes/drains
        # settled — the only point where the floor may *rise*.  (It is
        # lowered eagerly through cancel_note between rounds.)
        floor = self._cancellation_floor()
        for proc in self.procs:
            proc.cancel_floor = floor
            proc.rearm_blocked()
        self._sample_spread()
        self._since_gvt = 0
        self._blocked_at_gvt = self._blocked_polls()
        if self._watchdog.tick(self._progress_marker(), self._work):
            self._stall("no GVT advance or commit in "
                        f"{self._watchdog.idle} steps "
                        f"(bound {self.watchdog_bound})")

    def _blocked_polls(self) -> int:
        return sum(proc.stats.blocked_polls for proc in self.procs)

    # ------------------------------------------------------------------
    # Liveness (repro.resilience)
    # ------------------------------------------------------------------
    def _note_cancellation(self, time: VirtualTime) -> None:
        """Eagerly lower every processor's cancellation horizon.

        Invoked by processors (``cancel_note``) the moment a cancellation
        comes into existence — withheld under lazy cancellation or routed
        as an antimessage.  Lowering is always sound; the horizon is
        raised (recomputed exactly) only at GVT rounds.
        """
        for proc in self.procs:
            if time < proc.cancel_floor:
                proc.cancel_floor = time

    def _cancellation_floor(self) -> VirtualTime:
        """Min virtual time over every outstanding cancellation.

        Counts withheld lazy entries and in-flight antimessages (local
        FIFOs, processor inboxes, fabric backlog).  Negatives parked in
        ``runtime.negatives`` are excluded: their positive has not
        arrived, so the event they target cannot be executed —
        ``_deliver_positive`` annihilates against the parked negative
        before the positive can ever be queued.
        """
        low = INFINITY
        for proc in self.procs:
            for runtime in proc.runtimes.values():
                for pending in runtime.lazy_pending:
                    if pending.time < low:
                        low = pending.time
            for event in proc.local_fifo:
                if event.sign < 0 and event.time < low:
                    low = event.time
            for _at, _seq, event in proc.inbox:
                if event.sign < 0 and event.time < low:
                    low = event.time
        for event in self.fabric.pending_events():
            if event.sign < 0 and event.time < low:
                low = event.time
        return low

    def _sample_spread(self) -> None:
        """Record the Korniss virtual-time surface width at this round."""
        if not self._watchdog.enabled:
            # watchdog=0 turns the whole liveness layer off, sampling
            # included — the uninstrumented baseline the overhead
            # benchmark measures against.
            return
        lo, hi, width = surface(
            runtime.lp.now
            for proc in self.procs
            for runtime in proc.runtimes.values())
        if lo is None:
            return
        self._liveness.vt_spread_samples += 1
        self._liveness.vt_spread_width_sum += width
        if width > self._liveness.vt_spread_width_max:
            self._liveness.vt_spread_width_max = width

    def _progress_marker(self) -> Tuple:
        return (self.gvt,
                sum(proc.stats.events_committed for proc in self.procs))

    def _partial_stats(self) -> RunStats:
        stats = RunStats()
        for proc in self.procs:
            stats.merge(proc.stats)
        stats.merge(self.fabric.stats)
        self._liveness.watchdog_probes = self._watchdog.probes
        stats.merge(self._liveness)
        stats.peak_speculative = self._peak_speculative
        return stats

    def _stall(self, reason: str) -> None:
        """Diagnose an unrecoverable stall: raise with full forensics."""
        self._liveness.watchdog_stalls += 1
        report = build_report(
            "model", reason, self.procs, gvt=self.gvt,
            bound=self.watchdog_bound,
            in_flight={
                "fabric_pending": sum(1 for _ in
                                      self.fabric.pending_events()),
                "inbox": sum(len(proc.inbox) for proc in self.procs),
                "local_fifo": sum(len(proc.local_fifo)
                                  for proc in self.procs),
            })
        error = ProtocolError(f"stall diagnosed: {reason}")
        error.stall_report = report
        error.partial_stats = self._partial_stats()
        raise error

    def _note_speculative_peak(self) -> None:
        total = sum(len(runtime.processed)
                    for proc in self.procs
                    for runtime in proc.runtimes.values())
        if total > self._peak_speculative:
            self._peak_speculative = total

    def _refresh_release_floors(self) -> None:
        """Distance-based release bounds (bounded-lag refinement).

        GVT alone releases only events *at* the global minimum, which for
        the VHDL kernel means one delta phase per global round — exactly
        the serialization the paper's conservative configuration avoids.
        Because every kernel LP reacts to an arrival at least one phase
        later (``react_lookahead_phases``), the earliest time anything
        can still *arrive* at LP ``i`` is

            A_i = min over predecessors j of B_j
            B_j = min(m_j, min over predecessors k of B_k + react_la(j))

        where ``m_j`` is the minimum timestamp queued at / in flight to
        ``j``.  This is a multi-source shortest-path problem solved with
        one Dijkstra sweep; the bounds remain valid until refreshed
        (consuming events only raises them).  For LP classes with zero
        declared lookahead the sweep degenerates to reachability, which
        is still sound and still better than plain GVT.
        """
        import heapq as _heapq

        potentials: Dict[int, VirtualTime] = {}
        #: Undelivered messages are *future arrivals* at their target and
        #: must cap its release floor directly — the predecessor's output
        #: bound cannot stand in for a message already under way.
        inflight_floor: Dict[int, VirtualTime] = {}

        def note(lp_id: int, time: VirtualTime,
                 arriving: bool = False) -> None:
            current = potentials.get(lp_id)
            if current is None or time < current:
                potentials[lp_id] = time
            if arriving:
                current = inflight_floor.get(lp_id)
                if current is None or time < current:
                    inflight_floor[lp_id] = time

        for proc in self.procs:
            for lp_id, runtime in proc.runtimes.items():
                t = runtime.queue_min_time()
                if t != INFINITY:
                    note(lp_id, t)
                for negative in runtime.negatives.values():
                    # A parked negative implies its positive twin is still
                    # under way: treat it as a pending arrival.
                    note(lp_id, negative.time, arriving=True)
                for pending in runtime.lazy_pending:
                    # A withheld cancellation may yet arrive at its
                    # destination as an antimessage.
                    note(pending.dst, pending.time, arriving=True)
            for _at, _seq, event in proc.inbox:
                note(event.dst, event.time, arriving=True)
            for event in proc.local_fifo:
                note(event.dst, event.time, arriving=True)
        for event in self.fabric.pending_events():
            # Dropped-but-unacked and reorder-parked copies will arrive
            # eventually (retransmission guarantees it).
            note(event.dst, event.time, arriving=True)

        # Dijkstra over B (earliest future output/occupancy per LP).
        settled: Dict[int, VirtualTime] = {}
        heap = [(time, lp_id) for lp_id, time in potentials.items()]
        _heapq.heapify(heap)
        succ = self.model.successors
        lps = self.model.lps
        while heap:
            time, lp_id = _heapq.heappop(heap)
            if lp_id in settled:
                continue
            settled[lp_id] = time
            for nxt in succ(lp_id):
                if nxt in settled:
                    continue
                la = lps[nxt].react_lookahead_phases
                candidate = VirtualTime(time.pt, time.lt + la) if la \
                    else time
                if candidate < potentials.get(nxt, INFINITY):
                    potentials[nxt] = candidate
                    _heapq.heappush(heap, (candidate, nxt))

        preds = self.model.predecessors
        for proc in self.procs:
            for lp_id, runtime in proc.runtimes.items():
                floor = inflight_floor.get(lp_id, INFINITY)
                for j in preds(lp_id):
                    b = settled.get(j, INFINITY)
                    if b < floor:
                        floor = b
                if floor > runtime.release_floor:
                    runtime.release_floor = floor

    def _pending_work(self) -> bool:
        """Any unprocessed event within the simulation horizon?"""
        if self.fabric.has_pending():
            return True  # unacked/parked copies must still be delivered
        for proc in self.procs:
            if proc.inbox or proc.local_fifo:
                return True
            for runtime in proc.runtimes.values():
                if runtime.lazy_pending:
                    return True  # withheld cancellations must resolve
                head = runtime.head()
                if head is None:
                    continue
                if self.until is None or head.time.pt <= self.until:
                    return True
        return False

    def _force_minimum(self) -> bool:
        """User-consistent dispensation: execute the single globally
        minimal event despite the strict safety rule.

        Without lookahead the user-consistent conservative model cannot
        prove any simultaneous set complete; real systems serialize on a
        global synchronization per step.  Returns True if an event ran.
        """
        best: Optional[Tuple[tuple, Processor, LPRuntime]] = None
        for proc in self.procs:
            for runtime in proc.runtimes.values():
                head = runtime.head()
                if head is None:
                    continue
                if self.until is not None and head.time.pt > self.until:
                    continue
                key = head.sort_key()
                if best is None or key < best[0]:
                    best = (key, proc, runtime)
        if best is None:
            return False
        _key, proc, runtime = best
        proc._execute(runtime, runtime.pop())
        proc.drain_local()
        return True

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_steps: Optional[int] = None) -> ParallelOutcome:
        steps = 0
        self.fabric.on_run_start(self)
        crashes = list(self._crash_schedule)
        while True:
            self._work += 1
            if max_steps is not None and steps >= max_steps:
                self._stall(f"machine exceeded {max_steps} steps "
                            f"(livelock?)")
            while crashes and crashes[0][0] <= steps:
                _at, victim = crashes.pop(0)
                self.kill(victim)
            proc = self._next_processor()
            if proc is None:
                if not self._pending_work():
                    break
                before = self.gvt
                self._gvt_round(barrier=True)
                for p in self.procs:
                    p.stats.deadlock_recoveries += 1
                # The round's rearm_blocked often makes blocked
                # conservative runtimes *look* ready again, so checking
                # _next_processor() alone never reaches the recovery
                # ladder below: the machine spins barrier-round <->
                # failed-poll forever (mixed protocol with lazy
                # cancellation pinning the safe bound — found by
                # repro.campaign).  A barrier interval that executed no
                # event with GVT frozen proves the readiness is a
                # mirage: every rearmed runtime was re-polled and
                # blocked again before _next_processor() could return
                # None, so the ladder must engage regardless.
                marker = (self.gvt, sum(p.stats.events_executed
                                        for p in self.procs))
                stuck = marker == self._barrier_marker
                self._barrier_marker = marker
                if stuck or self._next_processor() is None:
                    # A dropped message can be the whole stall: its only
                    # copy lives in a sender's retransmit buffer.  Each
                    # barrier round force-fires the timers, and the
                    # per-message drop budget bounds how many rounds the
                    # fault plan can keep losing the retransmissions, so
                    # looping here terminates.
                    if self.fabric.has_pending():
                        continue
                    # GVT alone did not unblock anything.  A withheld
                    # lazy cancellation whose send time equals GVT can
                    # pin it: with the whole machine stalled no event at
                    # or below GVT can ever be generated again, so an
                    # inclusive flush is sound, and its antimessages
                    # restart the machine.
                    if self._flush_lazy_at_gvt():
                        continue
                    # Otherwise: the user-consistent strictness or a
                    # genuine stall.
                    if not self._force_minimum():
                        self._stall(
                            "deadlock recovery failed to make progress "
                            f"(gvt {before} -> {self.gvt})")
                    # The forced execution is a real step: a machine
                    # that only ever advances through this dispensation
                    # (one event per barrier round) must still be
                    # bounded by max_steps, or a slow livelock cycle
                    # evades both guards (found by repro.campaign).
                    steps += 1
                    self._steps = steps
                continue
            if proc.act():
                self.fabric.poll(proc)
                self._since_gvt += 1
                steps += 1
                self._steps = steps
                due = self._since_gvt >= self.gvt_interval
                blocked_due = (
                    self._since_gvt >= self.blocked_gvt_min_interval
                    and self._blocked_polls() - self._blocked_at_gvt
                    >= self.blocked_poll_trigger)
                if due or blocked_due:
                    self._gvt_round(barrier=False)
        return self._finish()

    def _flush_lazy_at_gvt(self) -> bool:
        """Cancel withheld lazy messages up to and including GVT.

        Only called when the machine is fully stalled (see run()); the
        inclusive bound is what makes progress when a withheld message's
        own timestamp IS the GVT.
        """
        flushed = False
        for proc in self.procs:
            for runtime in proc.runtimes.values():
                if not runtime.lazy_pending:
                    continue
                keep = []
                for pending in runtime.lazy_pending:
                    # Either bound suffices at a full stall.  A message
                    # whose *receive* time pins GVT must be released
                    # even though its sender might re-emit an identical
                    # copy at exactly GVT later: cancel-plus-resend is
                    # observably equivalent to reuse, so correctness is
                    # unaffected — only the reuse optimization is lost
                    # for that one message.
                    if pending.send_time <= self.gvt \
                            or pending.time <= self.gvt:
                        proc.stats.antimessages += 1
                        if self.tracer is not None:
                            self.tracer.record(
                                "anti", proc.index, runtime.lp.lp_id,
                                pending.time, dst=pending.dst,
                                eid=(pending.eid.src, pending.eid.seq),
                                ctx="gvt-flush")
                        proc.route(pending.antimessage())
                        flushed = True
                    else:
                        keep.append(pending)
                runtime.lazy_pending = keep
            proc.drain_local()
        return flushed

    def kill(self, index: int) -> None:
        """Crash processor ``index`` and recover it from its latest
        durable checkpoint.

        Requires a fabric with crash-recovery enabled (a
        :class:`~repro.fabric.transport.ReliableFabric` built with
        ``recovery=True`` or a fault plan carrying a crash schedule).
        The crashed processor loses all volatile state; peers replay
        their per-link journals to rebuild its in-flight input, and its
        own journaled output is reconciled through the lazy-cancellation
        machinery so surviving receivers keep consistent queues.
        """
        self.fabric.crash(index)

    def _next_processor(self) -> Optional[Processor]:
        best = None
        best_time = float("inf")
        for proc in self.procs:
            t = proc.has_work_at()
            if t < best_time:
                best = proc
                best_time = t
        if best is None or self.scheduler is None:
            return best
        # Controlled scheduling: processors tied at the same model time
        # form choice point ``proc`` (canonical order = processor index).
        tied = [proc for proc in self.procs
                if proc.has_work_at() == best_time]
        if len(tied) <= 1:
            return best
        return tied[self.scheduler.choose("proc", len(tied))]

    def _finish(self) -> ParallelOutcome:
        # Commit everything that remains speculative: the run is over, no
        # event can arrive anymore, so all processed work is final.
        self._note_speculative_peak()
        final_gvt = self.compute_gvt()  # INFINITY when fully drained
        for proc in self.procs:
            for runtime in proc.runtimes.values():
                proc._commit_log(runtime)
        stats = self._partial_stats()
        from .partition import cut_channels
        return ParallelOutcome(
            stats=stats,
            makespan=max(proc.clock for proc in self.procs),
            gvt=final_gvt,
            processors=len(self.procs),
            clocks=[proc.clock for proc in self.procs],
            remote_channels=cut_channels(self.model, self.placement),
        )


def run_parallel(model: Model, processors: int,
                 until: Optional[int] = None,
                 protocol: str = "dynamic",
                 cost: CostModel = SHARED_MEMORY,
                 partition: Union[str, Partition, Callable] = "round_robin",
                 user_consistent: bool = False,
                 lookahead: Optional[str] = None,
                 gvt_interval: int = 0,
                 adapt: Optional[AdaptPolicy] = None,
                 checkpoint_interval: int = 1,
                 lazy_cancellation: bool = False,
                 max_steps: Optional[int] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 recovery: Optional[bool] = None,
                 watchdog: Optional[int] = None,
                 tracer=None, scheduler=None) -> ParallelOutcome:
    """Convenience wrapper: build a machine and run it to completion."""
    machine = ParallelMachine(model, processors, protocol=protocol,
                              cost=cost, partition=partition,
                              user_consistent=user_consistent,
                              lookahead=lookahead,
                              gvt_interval=gvt_interval, adapt=adapt,
                              checkpoint_interval=checkpoint_interval,
                              lazy_cancellation=lazy_cancellation,
                              until=until, fault_plan=fault_plan,
                              recovery=recovery, watchdog=watchdog,
                              tracer=tracer, scheduler=scheduler)
    return machine.run(max_steps=max_steps)
