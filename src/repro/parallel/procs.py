"""True multiprocess backend: the distributed kernel on worker processes.

The threaded backend proves the protocol is a distributed algorithm but
cannot show wall-clock speedup (CPython's GIL serializes it).  This
backend runs one :class:`~repro.parallel.engine.Processor` per
``multiprocessing`` worker — genuinely isolated address spaces that
communicate **only** through pickled messages — and is where the
paper's headline claim (speedup from parallel execution) becomes
measurable on real hardware (``benchmarks/bench_procs_speedup.py``).

The worker protocol itself — act quantum, batched flushes, the
pipelined Mattern token-ring GVT, fabric compatibility, crash
recovery — lives in :class:`repro.parallel.backend.WorkerCore`, shared
verbatim with the distributed backend (:mod:`repro.parallel.dist`).
This module supplies the ``multiprocessing`` transport (one queue per
worker, one result queue) and the parent-side lifecycle.

Three design decisions carry the backend:

* **Batched IPC.**  Serialization is the dominant cost of process
  isolation, so events are never shipped one at a time.  Workers run an
  *act quantum* (up to ``quantum`` event executions), collecting remote
  sends per destination, then flush each destination's collected events
  as one pickled envelope.  ``RunStats.ipc_summary()`` reports the
  achieved amortization (events per envelope).

* **Asynchronous token-ring GVT (Mattern-style).**  There is no
  stop-the-world coordinator.  A single token circulates the worker
  ring ``0 -> 1 -> ... -> P-1 -> 0`` carrying, per wave, the minimum
  timestamp observed at each worker's cut (local queues *plus* the
  send-minimum of everything shipped since the previous cut) and the
  cumulative per-channel envelope counts.  When the token returns, the
  initiator (worker 0) checks the classic two-cut validity condition —
  every envelope sent before the *previous* wave's cuts has been
  received before this wave's cuts (per-channel ``recv_w >= sent_w-1``;
  the queues are per-producer FIFO) — and, if it holds, commits the
  wave's minimum as the new GVT.  The commit rides the next wave's
  token; each worker applies it at its visit (fossil collection, lazy
  flush, releasing blocked conservative LPs) without ever stopping the
  world.  Termination is the same machinery: a wave on which every
  worker was idle at its cut and every channel's send/receive counts
  agree proves there is no in-flight message and no runnable event
  (any later activation would need an envelope that the matched counts
  exclude), so the initiator broadcasts the stop.

* **Fabric compatibility.**  A :class:`~repro.fabric.plan.FaultPlan`
  routes every batch through the per-worker
  :class:`~repro.fabric.batched.BatchedEndpoint` (sequence numbers,
  journals, acks, dedup/reorder buffers); retransmission is
  token-driven (the pump runs at every token visit).  Crash-recovery
  works on real processes: durable checkpoints are taken at commit
  application, a crash is delivered as a ``die`` envelope, and the
  victim restores its checkpoint, reconciles its journaled output
  window through the lazy-cancellation machinery, rewinds its delivery
  horizons and broadcasts a recovery notice that makes every peer
  replay its journal and distrust stale conservative promises (epoch
  bump) — all without a global barrier.

Like the threaded backend, the procs backend supports the static
protocols only (optimistic / conservative / mixed); the dynamic mode's
cross-processor mode sampling has no sound remote implementation
without extra synchronization.

**Start methods.**  Under ``fork`` workers inherit the pre-built
machine and nothing but events, tokens and final states ever crosses a
pickle boundary.  Under ``spawn``/``forkserver`` each worker instead
receives a :class:`_WorkerSpec` — the *pristine* pickled model
(snapshotted before the inner machine seeds init events) plus the
machine parameters — and deterministically rebuilds its own machine
locally: same model, same partition spec, same placement, same seeded
queues as every sibling.  This is the artifact discipline of
:mod:`repro.vhdl.artifact` applied at the worker boundary, and it is
what the dist backend ships over the wire.  The method is chosen by
the ``start_method`` parameter, then the ``REPRO_PROCS_START``
environment variable, then ``fork`` when the platform offers it, else
``spawn``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Union

from ..core.model import Model
from ..core.stats import RunStats
from ..core.vtime import MINUS_INFINITY
from ..fabric.plan import FaultPlan
from ..resilience import DEFAULT_WALL_S, resolve_watchdog
from .backend import BackendOutcome, WorkerCore, resolve_model
from .cost import SHARED_MEMORY
from .engine import ProtocolError
from .machine import ParallelMachine
from .partition import Partition


@dataclass
class ProcsOutcome(BackendOutcome):
    """Result of one multiprocess run (the shared backend shape)."""

    #: Token-ring circulations completed (Mattern waves).
    waves: int = 0
    #: Wall-clock duration of the run, workers live to joined.
    wall_time_s: float = 0.0


#: Environment override for the worker start method.
START_ENV = "REPRO_PROCS_START"


def resolve_start_method(start_method: Optional[str] = None) -> str:
    """Pick the multiprocessing start method for the procs backend.

    Explicit argument > ``REPRO_PROCS_START`` env var > ``fork`` when
    the platform offers it (cheapest: no model pickling) > ``spawn``.
    """
    if start_method is None:
        start_method = os.environ.get(START_ENV) or None
    available = multiprocessing.get_all_start_methods()
    if start_method is None:
        return "fork" if "fork" in available else "spawn"
    if start_method not in available:
        raise ValueError(
            f"start method {start_method!r} not available on this "
            f"platform (have: {available})")
    return start_method


@dataclass
class _WorkerSpec:
    """Everything a spawned worker needs to rebuild its machine.

    ``model_payload`` is the pristine model pickled *before* the
    parent's inner machine seeded init events, so the child's build —
    same parameters, same deterministic partitioner — reproduces the
    exact machine a forked worker would have inherited.
    """

    model_payload: bytes
    processors: int
    protocol: str
    partition: Any
    until: Optional[int]
    quantum: int
    fault_plan: Optional[FaultPlan]
    recovery: bool
    watchdog_s: Optional[float] = None
    timeout_s: float = 120.0
    extra: Dict[str, Any] = field(default_factory=dict)


def _spawn_worker(spec: _WorkerSpec, index: int, queues: list,
                  result_queue) -> None:
    """Spawn-mode worker entry point (module-level: picklable by ref).

    Rebuilds the machine from the spec, wires in the parent-created
    queues, and runs the standard worker loop — from here on the two
    start methods are indistinguishable.
    """
    try:
        model = pickle.loads(spec.model_payload)
        machine = ProcsMachine(
            model, spec.processors, protocol=spec.protocol,
            partition=spec.partition, until=spec.until,
            quantum=spec.quantum, fault_plan=spec.fault_plan,
            recovery=spec.recovery, watchdog_s=spec.watchdog_s,
            _snapshot=False)
    except BaseException as exc:  # noqa: BLE001 - forwarded to parent
        try:
            result_queue.put(("error", index,
                              f"worker rebuild failed: "
                              f"{type(exc).__name__}: {exc}",
                              RunStats(), None))
        except Exception:  # pragma: no cover - queue already broken
            pass
        return
    machine._queues = queues
    machine._result_queue = result_queue
    machine._timeout_s = spec.timeout_s
    machine._worker_main(index)


class ProcsMachine(WorkerCore):
    """Run a Model on real worker processes; commits identical results."""

    backend_name = "procs"

    def __init__(self, model: Model, processors: int,
                 protocol: str = "optimistic",
                 partition: Union[str, Partition, Callable] = "round_robin",
                 until: Optional[int] = None,
                 quantum: int = 64,
                 fault_plan: Optional[FaultPlan] = None,
                 recovery: Optional[bool] = None,
                 watchdog_s: Optional[float] = None,
                 start_method: Optional[str] = None,
                 _snapshot: bool = True) -> None:
        if protocol == "dynamic":
            raise ValueError(
                "the procs backend supports static protocols only; "
                "use the modelled machine for the dynamic configuration")
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        model = resolve_model(model)
        model.validate()
        self.model = model
        self.until = until
        self.quantum = quantum
        self.plan = fault_plan
        self.recovery = bool(
            (fault_plan.needs_recovery if fault_plan is not None else False)
            if recovery is None else recovery)
        self.use_fabric = (fault_plan is not None
                          and (fault_plan.faulty or self.recovery))
        #: Crash schedule: (completed-GVT-commits, worker) pairs.
        self._crash_schedule = sorted(
            fault_plan.crashes) if fault_plan is not None else []
        if self._crash_schedule and not self.recovery:
            raise ValueError("a crash schedule requires recovery=True")
        self.start_method = resolve_start_method(start_method)
        self._watchdog_s = watchdog_s
        self._spawn_payload: Optional[bytes] = None
        if _snapshot and self.start_method != "fork":
            # Snapshot the *pristine* model before the inner machine
            # build mutates it (init-event seeding): spawned workers
            # rebuild from this payload and must reproduce exactly the
            # state a forked worker would inherit.
            try:
                pickle.dumps(partition,
                             protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as failure:
                raise ValueError(
                    f"the {self.start_method!r} start method cannot "
                    f"ship this partition to workers ({failure}); use "
                    f"a named partitioner, a placement dict, a module-"
                    f"level partitioner function, or "
                    f"start_method='fork'") from failure
            try:
                self._spawn_payload = pickle.dumps(
                    model, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as failure:
                raise RuntimeError(
                    f"model is not picklable ({failure}), which the "
                    f"{self.start_method!r} start method requires; "
                    f"make process bodies module-level callables (see "
                    f"repro.circuits.bodies) or use "
                    f"start_method='fork'") from failure
        self._partition_spec = partition
        # Build processors exactly like the other real backend; under
        # fork workers inherit the fully seeded machine, under spawn
        # they rebuild it from the pristine payload.
        inner = ParallelMachine(model, processors, protocol=protocol,
                                cost=SHARED_MEMORY, partition=partition,
                                until=until)
        self._inner = inner
        self.protocol = protocol
        self.processors = processors
        self.watchdog_bound = float(
            resolve_watchdog(watchdog_s, DEFAULT_WALL_S))

    # ==================================================================
    # Parent side
    # ==================================================================
    def run(self, timeout_s: float = 120.0) -> ProcsOutcome:
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        start = time.monotonic()
        grace = max(0.5, min(5.0, timeout_s / 10.0))
        ctx = multiprocessing.get_context(self.start_method)
        count = self.processors
        # Under fork: created before the fork so every worker inherits
        # every queue.  Under spawn: passed explicitly as process
        # arguments (multiprocessing duplicates the queue handles).
        self._queues = [ctx.Queue() for _ in range(count)]
        self._result_queue = ctx.Queue()
        self._timeout_s = timeout_s
        if self.start_method == "fork":
            spec = None
        else:
            spec = _WorkerSpec(
                model_payload=self._spawn_payload,
                processors=count, protocol=self.protocol,
                partition=self._partition_spec, until=self.until,
                quantum=self.quantum, fault_plan=self.plan,
                recovery=self.recovery, watchdog_s=self._watchdog_s,
                timeout_s=timeout_s)
        workers = []
        for index in range(count):
            if spec is None:
                proc = ctx.Process(target=self._worker_main,
                                   args=(index,), daemon=True)
            else:
                proc = ctx.Process(
                    target=_spawn_worker,
                    args=(spec, index, self._queues,
                          self._result_queue),
                    daemon=True)
            proc.start()
            workers.append(proc)
        results: Dict[int, tuple] = {}
        error: Optional[tuple] = None
        deadline = start + timeout_s + grace
        while len(results) < count and error is None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                message = self._result_queue.get(
                    timeout=min(0.5, remaining))
            except queue_module.Empty:
                dead = [i for i, w in enumerate(workers)
                        if not w.is_alive() and i not in results]
                if dead:
                    error = ("error", dead[0],
                             f"worker {dead[0]} died without reporting "
                             f"(exit codes: "
                             f"{[workers[i].exitcode for i in dead]})",
                             RunStats(), None)
                continue
            if message[0] == "done":
                results[message[1]] = message
            else:
                error = message
        for worker in workers:
            worker.join(timeout=max(0.05, deadline - time.monotonic()))
        laggards = [i for i, w in enumerate(workers) if w.is_alive()]
        for index in laggards:
            workers[index].terminate()
            workers[index].join(timeout=grace)
        partial = RunStats()
        for message in results.values():
            partial.merge(message[2])
        if error is not None:
            if error[3] is not None:
                partial.merge(error[3])
            failure = ProtocolError(
                f"procs worker {error[1]} failed: {error[2]}")
            failure.partial_stats = partial
            if len(error) > 4 and error[4] is not None:
                failure.stall_report = error[4]
            raise failure
        if len(results) < count:
            missing = sorted(set(range(count)) - set(results))
            failure = ProtocolError(
                f"procs run exceeded its {timeout_s:.1f}s deadline; "
                f"workers {missing} never completed")
            failure.partial_stats = partial
            raise failure
        return self._harvest(results, time.monotonic() - start)

    def _harvest(self, results: Dict[int, tuple],
                 wall_time_s: float) -> ProcsOutcome:
        stats = RunStats()
        gvt = MINUS_INFINITY
        waves = 0
        commits = 0
        for index in range(self.processors):
            _tag, _i, wstats, lp_states, wgvt, wwaves, wcommits = \
                results[index]
            stats.merge(wstats)
            if wgvt > gvt:
                gvt = wgvt
            waves = max(waves, wwaves)
            commits = max(commits, wcommits)
            # Pull each worker's final LP states back into the parent's
            # model so callers (e.g. the VHDL kernel's trace collection)
            # read results exactly as they do for the other backends.
            for lp_id, (now, attrs) in lp_states.items():
                lp = self.model.lps[lp_id]
                lp.now = now
                for attr, value in attrs.items():
                    setattr(lp, attr, value)
        return ProcsOutcome(stats=stats, gvt=gvt,
                            processors=self.processors,
                            gvt_rounds=commits, waves=waves,
                            wall_time_s=wall_time_s)

    # ==================================================================
    # Worker side: the shared WorkerCore over multiprocessing queues
    # ==================================================================
    def _worker_main(self, index: int) -> None:
        self._run_worker(index, self._inner.procs[index],
                         self._inner._runtimes, self._inner.placement)

    def _send_envelope(self, target: int, envelope: tuple) -> None:
        self._queues[target].put(envelope)

    def _recv_envelope(self, block_s: float):
        inbound = self._queues[self._index]
        try:
            if block_s > 0:
                return inbound.get(timeout=block_s)
            return inbound.get_nowait()
        except queue_module.Empty:
            return None

    def _emit_result(self, message: tuple) -> None:
        self._result_queue.put(message)


def run_procs(model: Model, processors: int,
              protocol: str = "optimistic",
              partition: Union[str, Partition, Callable] = "round_robin",
              until: Optional[int] = None,
              quantum: int = 64,
              timeout_s: float = 120.0,
              fault_plan: Optional[FaultPlan] = None,
              recovery: Optional[bool] = None,
              watchdog_s: Optional[float] = None,
              start_method: Optional[str] = None) -> ProcsOutcome:
    """Convenience wrapper mirroring :func:`run_threaded`."""
    machine = ProcsMachine(model, processors, protocol=protocol,
                           partition=partition, until=until,
                           quantum=quantum, fault_plan=fault_plan,
                           recovery=recovery, watchdog_s=watchdog_s,
                           start_method=start_method)
    return machine.run(timeout_s=timeout_s)
