"""True multiprocess backend: the distributed kernel on worker processes.

The threaded backend proves the protocol is a distributed algorithm but
cannot show wall-clock speedup (CPython's GIL serializes it).  This
backend runs one :class:`~repro.parallel.engine.Processor` per
``multiprocessing`` worker — genuinely isolated address spaces that
communicate **only** through pickled messages — and is where the
paper's headline claim (speedup from parallel execution) becomes
measurable on real hardware (``benchmarks/bench_procs_speedup.py``).

Three design decisions carry the backend:

* **Batched IPC.**  Serialization is the dominant cost of process
  isolation, so events are never shipped one at a time.  Workers run an
  *act quantum* (up to ``quantum`` event executions), collecting remote
  sends per destination, then flush each destination's collected events
  as one pickled envelope.  ``RunStats.ipc_summary()`` reports the
  achieved amortization (events per envelope).

* **Asynchronous token-ring GVT (Mattern-style).**  There is no
  stop-the-world coordinator.  A single token circulates the worker
  ring ``0 -> 1 -> ... -> P-1 -> 0`` carrying, per wave, the minimum
  timestamp observed at each worker's cut (local queues *plus* the
  send-minimum of everything shipped since the previous cut) and the
  cumulative per-channel envelope counts.  When the token returns, the
  initiator (worker 0) checks the classic two-cut validity condition —
  every envelope sent before the *previous* wave's cuts has been
  received before this wave's cuts (per-channel ``recv_w >= sent_w-1``;
  the queues are per-producer FIFO) — and, if it holds, commits the
  wave's minimum as the new GVT.  The commit rides the next wave's
  token; each worker applies it at its visit (fossil collection, lazy
  flush, releasing blocked conservative LPs) without ever stopping the
  world.  Termination is the same machinery: a wave on which every
  worker was idle at its cut and every channel's send/receive counts
  agree proves there is no in-flight message and no runnable event
  (any later activation would need an envelope that the matched counts
  exclude), so the initiator broadcasts the stop.

* **Fabric compatibility.**  A :class:`~repro.fabric.plan.FaultPlan`
  routes every batch through the per-worker
  :class:`~repro.fabric.batched.BatchedEndpoint` (sequence numbers,
  journals, acks, dedup/reorder buffers); retransmission is
  token-driven (the pump runs at every token visit).  Crash-recovery
  works on real processes: durable checkpoints are taken at commit
  application, a crash is delivered as a ``die`` envelope, and the
  victim restores its checkpoint, reconciles its journaled output
  window through the lazy-cancellation machinery, rewinds its delivery
  horizons and broadcasts a recovery notice that makes every peer
  replay its journal and distrust stale conservative promises (epoch
  bump) — all without a global barrier.

Like the threaded backend, the procs backend supports the static
protocols only (optimistic / conservative / mixed); the dynamic mode's
cross-processor mode sampling has no sound remote implementation
without extra synchronization.

**Start methods.**  Under ``fork`` workers inherit the pre-built
machine and nothing but events, tokens and final states ever crosses a
pickle boundary.  Under ``spawn``/``forkserver`` each worker instead
receives a :class:`_WorkerSpec` — the *pristine* pickled model
(snapshotted before the inner machine seeds init events) plus the
machine parameters — and deterministically rebuilds its own machine
locally: same model, same partition spec, same placement, same seeded
queues as every sibling.  This is the artifact discipline of
:mod:`repro.vhdl.artifact` applied at the worker boundary, and it is
what a future multi-host backend ships over the wire.  The method is
chosen by the ``start_method`` parameter, then the
``REPRO_PROCS_START`` environment variable, then ``fork`` when the
platform offers it, else ``spawn``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..core.event import Event
from ..core.model import Model
from ..core.stats import RunStats
from ..core.vtime import INFINITY, MINUS_INFINITY, VirtualTime
from ..fabric.batched import BatchedEndpoint
from ..fabric.plan import FaultPlan
from ..fabric.recovery import checkpoint_processor, restore_processor
from ..resilience import (DEFAULT_WALL_S, WallClockWatchdog, build_report,
                          resolve_watchdog)
from .backend import (BackendOutcome, proc_has_work, resolve_model,
                      stamp_epoch)
from .cost import SHARED_MEMORY
from .engine import Processor, ProtocolError
from .machine import ParallelMachine
from .partition import Partition


@dataclass
class ProcsOutcome(BackendOutcome):
    """Result of one multiprocess run (the shared backend shape)."""

    #: Token-ring circulations completed (Mattern waves).
    waves: int = 0
    #: Wall-clock duration of the run, workers live to joined.
    wall_time_s: float = 0.0


#: Environment override for the worker start method.
START_ENV = "REPRO_PROCS_START"


def resolve_start_method(start_method: Optional[str] = None) -> str:
    """Pick the multiprocessing start method for the procs backend.

    Explicit argument > ``REPRO_PROCS_START`` env var > ``fork`` when
    the platform offers it (cheapest: no model pickling) > ``spawn``.
    """
    if start_method is None:
        start_method = os.environ.get(START_ENV) or None
    available = multiprocessing.get_all_start_methods()
    if start_method is None:
        return "fork" if "fork" in available else "spawn"
    if start_method not in available:
        raise ValueError(
            f"start method {start_method!r} not available on this "
            f"platform (have: {available})")
    return start_method


@dataclass
class _WorkerSpec:
    """Everything a spawned worker needs to rebuild its machine.

    ``model_payload`` is the pristine model pickled *before* the
    parent's inner machine seeded init events, so the child's build —
    same parameters, same deterministic partitioner — reproduces the
    exact machine a forked worker would have inherited.
    """

    model_payload: bytes
    processors: int
    protocol: str
    partition: Any
    until: Optional[int]
    quantum: int
    fault_plan: Optional[FaultPlan]
    recovery: bool
    watchdog_s: Optional[float] = None
    timeout_s: float = 120.0
    extra: Dict[str, Any] = field(default_factory=dict)


def _spawn_worker(spec: _WorkerSpec, index: int, queues: list,
                  result_queue) -> None:
    """Spawn-mode worker entry point (module-level: picklable by ref).

    Rebuilds the machine from the spec, wires in the parent-created
    queues, and runs the standard worker loop — from here on the two
    start methods are indistinguishable.
    """
    try:
        model = pickle.loads(spec.model_payload)
        machine = ProcsMachine(
            model, spec.processors, protocol=spec.protocol,
            partition=spec.partition, until=spec.until,
            quantum=spec.quantum, fault_plan=spec.fault_plan,
            recovery=spec.recovery, watchdog_s=spec.watchdog_s,
            _snapshot=False)
    except BaseException as exc:  # noqa: BLE001 - forwarded to parent
        try:
            result_queue.put(("error", index,
                              f"worker rebuild failed: "
                              f"{type(exc).__name__}: {exc}",
                              RunStats(), None))
        except Exception:  # pragma: no cover - queue already broken
            pass
        return
    machine._queues = queues
    machine._result_queue = result_queue
    machine._timeout_s = spec.timeout_s
    machine._worker_main(index)


def _fresh_token(wave: int, commit: Optional[VirtualTime],
                 floor: VirtualTime = INFINITY,
                 settled: bool = False) -> dict:
    return {"wave": wave, "low": INFINITY, "sent": {}, "recv": {},
            "busy": False, "commit": commit,
            # Liveness additions (PR 6): "anti_low" accumulates each
            # worker's min outstanding-cancellation time at its cut;
            # "floor" carries the committed global cancellation horizon
            # alongside the GVT commit; "settled" tells workers the
            # previous wave's channel counts matched exactly (nothing in
            # flight), letting them prune their anti buckets one wave
            # earlier; "vt_min"/"vt_max" accumulate the per-LP clock
            # surface for the Korniss roughness signal.
            "anti_low": INFINITY, "floor": floor, "settled": settled,
            "vt_min": None, "vt_max": None}


class ProcsMachine:
    """Run a Model on real worker processes; commits identical results."""

    def __init__(self, model: Model, processors: int,
                 protocol: str = "optimistic",
                 partition: Union[str, Partition, Callable] = "round_robin",
                 until: Optional[int] = None,
                 quantum: int = 64,
                 fault_plan: Optional[FaultPlan] = None,
                 recovery: Optional[bool] = None,
                 watchdog_s: Optional[float] = None,
                 start_method: Optional[str] = None,
                 _snapshot: bool = True) -> None:
        if protocol == "dynamic":
            raise ValueError(
                "the procs backend supports static protocols only; "
                "use the modelled machine for the dynamic configuration")
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        model = resolve_model(model)
        model.validate()
        self.model = model
        self.until = until
        self.quantum = quantum
        self.plan = fault_plan
        self.recovery = bool(
            (fault_plan.needs_recovery if fault_plan is not None else False)
            if recovery is None else recovery)
        self.use_fabric = (fault_plan is not None
                          and (fault_plan.faulty or self.recovery))
        #: Crash schedule: (completed-GVT-commits, worker) pairs.
        self._crash_schedule = sorted(
            fault_plan.crashes) if fault_plan is not None else []
        if self._crash_schedule and not self.recovery:
            raise ValueError("a crash schedule requires recovery=True")
        self.start_method = resolve_start_method(start_method)
        self._watchdog_s = watchdog_s
        self._spawn_payload: Optional[bytes] = None
        if _snapshot and self.start_method != "fork":
            # Snapshot the *pristine* model before the inner machine
            # build mutates it (init-event seeding): spawned workers
            # rebuild from this payload and must reproduce exactly the
            # state a forked worker would inherit.
            try:
                pickle.dumps(partition,
                             protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as failure:
                raise ValueError(
                    f"the {self.start_method!r} start method cannot "
                    f"ship this partition to workers ({failure}); use "
                    f"a named partitioner, a placement dict, a module-"
                    f"level partitioner function, or "
                    f"start_method='fork'") from failure
            try:
                self._spawn_payload = pickle.dumps(
                    model, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as failure:
                raise RuntimeError(
                    f"model is not picklable ({failure}), which the "
                    f"{self.start_method!r} start method requires; "
                    f"make process bodies module-level callables (see "
                    f"repro.circuits.bodies) or use "
                    f"start_method='fork'") from failure
        self._partition_spec = partition
        # Build processors exactly like the other real backend; under
        # fork workers inherit the fully seeded machine, under spawn
        # they rebuild it from the pristine payload.
        inner = ParallelMachine(model, processors, protocol=protocol,
                                cost=SHARED_MEMORY, partition=partition,
                                until=until)
        self._inner = inner
        self.protocol = protocol
        self.processors = processors
        self.watchdog_bound = float(
            resolve_watchdog(watchdog_s, DEFAULT_WALL_S))

    # ==================================================================
    # Parent side
    # ==================================================================
    def run(self, timeout_s: float = 120.0) -> ProcsOutcome:
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        start = time.monotonic()
        grace = max(0.5, min(5.0, timeout_s / 10.0))
        ctx = multiprocessing.get_context(self.start_method)
        count = self.processors
        # Under fork: created before the fork so every worker inherits
        # every queue.  Under spawn: passed explicitly as process
        # arguments (multiprocessing duplicates the queue handles).
        self._queues = [ctx.Queue() for _ in range(count)]
        self._result_queue = ctx.Queue()
        self._timeout_s = timeout_s
        if self.start_method == "fork":
            spec = None
        else:
            spec = _WorkerSpec(
                model_payload=self._spawn_payload,
                processors=count, protocol=self.protocol,
                partition=self._partition_spec, until=self.until,
                quantum=self.quantum, fault_plan=self.plan,
                recovery=self.recovery, watchdog_s=self._watchdog_s,
                timeout_s=timeout_s)
        workers = []
        for index in range(count):
            if spec is None:
                proc = ctx.Process(target=self._worker_main,
                                   args=(index,), daemon=True)
            else:
                proc = ctx.Process(
                    target=_spawn_worker,
                    args=(spec, index, self._queues,
                          self._result_queue),
                    daemon=True)
            proc.start()
            workers.append(proc)
        results: Dict[int, tuple] = {}
        error: Optional[tuple] = None
        deadline = start + timeout_s + grace
        while len(results) < count and error is None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                message = self._result_queue.get(
                    timeout=min(0.5, remaining))
            except queue_module.Empty:
                dead = [i for i, w in enumerate(workers)
                        if not w.is_alive() and i not in results]
                if dead:
                    error = ("error", dead[0],
                             f"worker {dead[0]} died without reporting "
                             f"(exit codes: "
                             f"{[workers[i].exitcode for i in dead]})",
                             RunStats(), None)
                continue
            if message[0] == "done":
                results[message[1]] = message
            else:
                error = message
        for worker in workers:
            worker.join(timeout=max(0.05, deadline - time.monotonic()))
        laggards = [i for i, w in enumerate(workers) if w.is_alive()]
        for index in laggards:
            workers[index].terminate()
            workers[index].join(timeout=grace)
        partial = RunStats()
        for message in results.values():
            partial.merge(message[2])
        if error is not None:
            if error[3] is not None:
                partial.merge(error[3])
            failure = ProtocolError(
                f"procs worker {error[1]} failed: {error[2]}")
            failure.partial_stats = partial
            if len(error) > 4 and error[4] is not None:
                failure.stall_report = error[4]
            raise failure
        if len(results) < count:
            missing = sorted(set(range(count)) - set(results))
            failure = ProtocolError(
                f"procs run exceeded its {timeout_s:.1f}s deadline; "
                f"workers {missing} never completed")
            failure.partial_stats = partial
            raise failure
        return self._harvest(results, time.monotonic() - start)

    def _harvest(self, results: Dict[int, tuple],
                 wall_time_s: float) -> ProcsOutcome:
        stats = RunStats()
        gvt = MINUS_INFINITY
        waves = 0
        commits = 0
        for index in range(self.processors):
            _tag, _i, wstats, lp_states, wgvt, wwaves, wcommits = \
                results[index]
            stats.merge(wstats)
            if wgvt > gvt:
                gvt = wgvt
            waves = max(waves, wwaves)
            commits = max(commits, wcommits)
            # Pull each worker's final LP states back into the parent's
            # model so callers (e.g. the VHDL kernel's trace collection)
            # read results exactly as they do for the other backends.
            for lp_id, (now, attrs) in lp_states.items():
                lp = self.model.lps[lp_id]
                lp.now = now
                for attr, value in attrs.items():
                    setattr(lp, attr, value)
        return ProcsOutcome(stats=stats, gvt=gvt,
                            processors=self.processors,
                            gvt_rounds=commits, waves=waves,
                            wall_time_s=wall_time_s)

    # ==================================================================
    # Worker side (everything below runs in a forked child)
    # ==================================================================
    def _worker_main(self, index: int) -> None:
        self._index = index
        self._proc: Processor = self._inner.procs[index]
        self._runtimes = self._inner._runtimes
        self._placement = self._inner.placement
        self._net = RunStats()        # transport counters (crash-durable)
        self._outbox: Dict[int, List[Event]] = {
            i: [] for i in range(self.processors) if i != index}
        self._sent_to: Dict[int, int] = {}
        self._recv_from: Dict[int, int] = {}
        self._send_min: VirtualTime = INFINITY
        self._progressed = False
        self._gvt: VirtualTime = MINUS_INFINITY
        self._held_token: Optional[dict] = None
        self._completed_token: Optional[dict] = None
        self._stop_info: Optional[tuple] = None
        self._ckpt = None
        self._ckpt_marks: Tuple[Dict[int, int], Dict[int, int]] = ({}, {})
        # Cancellation-horizon bookkeeping (see docs/protocol.md):
        # antimessages this worker routed, bucketed by the token wave
        # period they were sent in; buckets are pruned once the ring's
        # two-cut argument proves delivery.  ``_floor_committed`` is the
        # last global horizon that rode in with a GVT commit.
        self._anti_mins: Dict[int, VirtualTime] = {}
        self._cut_wave = -1
        self._floor_committed: VirtualTime = INFINITY
        self._watchdog = WallClockWatchdog(self.watchdog_bound)
        self._stall_report = None
        self.endpoint: Optional[BatchedEndpoint] = (
            BatchedEndpoint(self.plan, index) if self.use_fabric else None)
        if index == 0:
            # Initiator state: a sentinel "completed wave -1" primes the
            # ring (busy, nothing sent, nothing committable).
            self._completed_token = {"wave": -1, "low": INFINITY,
                                     "sent": {}, "recv": {},
                                     "busy": True, "commit": None}
            self._prev_sent: Dict[tuple, int] = {}
            self._gvt_committed: VirtualTime = MINUS_INFINITY
            self._commits = 0
        try:
            self._install_route()
            if self.recovery:
                self._take_checkpoint()
            self._worker_loop()
            self._report_done()
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            partial = RunStats()
            try:
                self._net.watchdog_probes += self._watchdog.probes
                partial.merge(self._proc.stats)
                if self.endpoint is not None:
                    partial.merge(self.endpoint.stats)
                partial.merge(self._net)
            except Exception:  # pragma: no cover - diagnostics only
                pass
            try:
                self._result_queue.put(
                    ("error", index, f"{type(exc).__name__}: {exc}",
                     partial, self._stall_report))
            except Exception:  # pragma: no cover - queue already broken
                pass

    def _install_route(self) -> None:
        proc = self._proc
        runtimes = self._runtimes
        placement = self._placement
        outbox = self._outbox
        index = self._index

        def route(event: Event) -> None:
            event = stamp_epoch(runtimes, event)
            target = placement[event.dst]
            if target == index:
                proc.local_fifo.append(event)
            else:
                outbox[target].append(event)

        proc.route = route
        # Override the hook the inner ParallelMachine installed at build
        # time: in a forked worker only this processor is live, and its
        # horizon must be maintained by the ring (which also *raises* it
        # again) — the inherited machine-wide note would lower it
        # forever and starve every conservative LP.
        proc.cancel_note = self._note_cancellation
        proc.cancel_floor = INFINITY

    def _note_cancellation(self, time: VirtualTime) -> None:
        """Eager horizon lowering: a cancellation just came into
        existence on this worker (withheld entry or routed anti).

        The time is also bucketed under the wave period it was minted
        in; the bucket is dropped once the token ring's two-cut
        condition proves every envelope of that period was received.
        """
        bucket = self._cut_wave + 1
        current = self._anti_mins.get(bucket)
        if current is None or time < current:
            self._anti_mins[bucket] = time
        proc = self._proc
        if time < proc.cancel_floor:
            proc.cancel_floor = time

    def _local_anti_low(self) -> VirtualTime:
        """Min outstanding-cancellation time this worker knows about:
        unpruned anti buckets, withheld lazy entries (crash-recovery
        reconciliation), and negatives owed by the fabric endpoint."""
        low = INFINITY
        for value in self._anti_mins.values():
            if value < low:
                low = value
        for runtime in self._proc.runtimes.values():
            for pending in runtime.lazy_pending:
                if pending.time < low:
                    low = pending.time
        if self.endpoint is not None:
            for event in self.endpoint.pending_events():
                if event.sign < 0 and event.time < low:
                    low = event.time
        return low

    def _prune_anti_buckets(self, before_wave: int) -> None:
        for bucket in [b for b in self._anti_mins if b <= before_wave]:
            del self._anti_mins[bucket]

    def _stall(self, reason: str) -> None:
        """Diagnose an unrecoverable worker stall: checkpoint (so a
        post-mortem restore is possible), assemble the forensics report
        and abort.  The report ships to the parent through the error
        pipe and surfaces on the raised :class:`ProtocolError`."""
        self._net.watchdog_stalls += 1
        if self.recovery:
            self._take_checkpoint()
        in_flight = {
            "sent_to": {dst: n for dst, n in sorted(self._sent_to.items())},
            "recv_from": {src: n
                          for src, n in sorted(self._recv_from.items())},
            "outbox": sum(len(v) for v in self._outbox.values()),
            "cut_wave": self._cut_wave,
        }
        if self.endpoint is not None:
            in_flight["fabric_pending"] = len(
                list(self.endpoint.pending_events()))
        gvt = self._gvt if self._gvt != MINUS_INFINITY else None
        self._stall_report = build_report(
            "procs", reason, [self._proc], gvt=gvt,
            bound=self._watchdog.bound, in_flight=in_flight,
            origin=self._index)
        raise ProtocolError("stall diagnosed: " + reason)

    def _worker_loop(self) -> None:
        deadline = time.monotonic() + self._timeout_s
        proc = self._proc
        quantum = self.quantum
        while self._stop_info is None:
            progressed = self._drain(0.0)
            for _ in range(quantum):
                if self._stop_info is not None:
                    return
                if not proc.act():
                    break
                progressed = True
            if progressed:
                self._progressed = True
            self._flush()
            if self._index == 0 and self._completed_token is not None:
                self._initiate()
            elif self._held_token is not None:
                token, self._held_token = self._held_token, None
                self._visit(token)
                self._forward(token)
            if self._stop_info is not None:
                return
            if not progressed and self._held_token is None \
                    and self._completed_token is None:
                # Idle: block briefly on the inbound queue; a batch, the
                # token or the stop will wake us.
                self._drain(0.0008)
            if self._watchdog.tick(
                    (self._gvt, proc.stats.events_committed)):
                self._stall(
                    f"no GVT advance or commit on worker {self._index} "
                    f"in {self._watchdog.bound:.1f}s "
                    f"(gvt {self._gvt}, "
                    f"{proc.stats.events_executed} executed)")
            if time.monotonic() > deadline:
                self._stall(
                    f"worker {self._index} exceeded the "
                    f"{self._timeout_s:.1f}s deadline "
                    f"(gvt {self._gvt}, "
                    f"{self._proc.stats.events_executed} executed)")

    # ------------------------------------------------------------------
    # Envelope plumbing
    # ------------------------------------------------------------------
    def _post(self, target: int, envelope: tuple) -> None:
        """Ship one counted envelope (anything but token/stop)."""
        self._queues[target].put(envelope)
        self._sent_to[target] = self._sent_to.get(target, 0) + 1

    def _post_batch(self, target: int, items: list) -> None:
        self._post(target, ("batch", self._index, items))
        self._net.ipc_batches += 1
        self._net.ipc_events += len(items)
        wrapped = self.endpoint is not None
        for item in items:
            event = item[1] if wrapped else item
            if event.time < self._send_min:
                self._send_min = event.time

    def _flush(self) -> bool:
        """Ship every destination's collected events as one envelope."""
        sent_any = False
        endpoint = self.endpoint
        for target, events in self._outbox.items():
            if not events:
                continue
            self._outbox[target] = []
            if endpoint is not None:
                items = endpoint.encode(target, events)
                if not items:
                    continue  # every copy dropped or held back
            else:
                items = events
            self._post_batch(target, items)
            sent_any = True
        return sent_any

    def _drain(self, block_s: float) -> bool:
        """Process inbound envelopes; True if any work was delivered."""
        inbound = self._queues[self._index]
        progressed = False
        if block_s > 0:
            try:
                envelope = inbound.get(timeout=block_s)
            except queue_module.Empty:
                return False
            progressed |= self._dispatch(envelope)
        for _ in range(512):
            try:
                envelope = inbound.get_nowait()
            except queue_module.Empty:
                break
            progressed |= self._dispatch(envelope)
        return progressed

    def _dispatch(self, envelope: tuple) -> bool:
        kind = envelope[0]
        if kind == "batch":
            self._on_batch(envelope[1], envelope[2])
            return True
        if kind == "acks":
            src = envelope[1]
            self._recv_from[src] = self._recv_from.get(src, 0) + 1
            self.endpoint.ack(src, envelope[2])
            return True
        if kind == "token":
            if self._index == 0:
                self._completed_token = envelope[1]
            else:
                self._held_token = envelope[1]
            return False
        if kind == "recover":
            self._on_recover(envelope[1], envelope[2], envelope[3])
            return True
        if kind == "die":
            src = envelope[1]
            self._recv_from[src] = self._recv_from.get(src, 0) + 1
            self._crash()
            return True
        if kind == "stop":
            self._stop_info = envelope[1:]
            return True
        raise ProtocolError(f"unknown envelope kind {kind!r}")

    def _on_batch(self, src: int, items: list) -> None:
        self._recv_from[src] = self._recv_from.get(src, 0) + 1
        endpoint = self.endpoint
        if endpoint is not None:
            events = endpoint.decode(src, items)
            # Flush acks immediately: one ack envelope per batch keeps
            # sender unacked maps (and the retransmit pump) small.
            for peer, seqs in endpoint.take_acks().items():
                self._post(peer, ("acks", self._index, seqs))
                self._net.ipc_batches += 1
        else:
            events = items
        proc = self._proc
        for event in events:
            proc.deliver(event)
            proc.drain_local()

    # ------------------------------------------------------------------
    # Token-ring GVT
    # ------------------------------------------------------------------
    def _local_low(self) -> VirtualTime:
        """This worker's cut contribution: local state + sends since
        the previous cut (the Mattern send-minimum)."""
        low = self._proc.local_min_time()
        for event in self._proc.local_fifo:
            if event.time < low:
                low = event.time
        for events in self._outbox.values():
            for event in events:
                if event.time < low:
                    low = event.time
        if self.endpoint is not None:
            for event in self.endpoint.pending_events():
                if event.time < low:
                    low = event.time
        if self._send_min < low:
            low = self._send_min
        return low

    def _busy(self) -> bool:
        if self._progressed:
            return True
        if self._proc.local_fifo:
            return True
        if any(self._outbox.values()):
            return True
        if self.endpoint is not None and not self.endpoint.quiet():
            return True
        return proc_has_work(self._proc, self.until)

    def _visit(self, token: dict) -> None:
        """One worker's token visit: apply the piggybacked commit, cut,
        merge counts, run the retransmit pump."""
        wave = token["wave"]
        commit = token.get("commit")
        if commit is not None:
            # The commit proves wave-1 was two-cut valid: everything
            # sent before cut wave-2 was received.  Bucket b holds antis
            # minted between cuts b-1 and b; the envelope carrying one
            # may only leave at the end of visit b, i.e. before cut b+1
            # — so bucket b is provably delivered once b+1 <= wave-2.
            self._prune_anti_buckets(wave - 3)
            self._apply_commit(commit)
        if token.get("settled"):
            # The previous wave's channel counts matched exactly:
            # everything sent before cut wave-1 was received, which
            # covers buckets up to wave-2 (same +1 flush slack).
            self._prune_anti_buckets(wave - 2)
        floor = token.get("floor", INFINITY)
        if floor != INFINITY or self._floor_committed != INFINITY:
            # The global horizon needs no two-cut validity: every
            # outstanding cancellation stays in its originator's
            # bucket/lazy list until delivery is *proven*, so last
            # wave's anti_low covers everything that existed at the
            # cuts, and anything minted since is strictly above the
            # GVT that bounds conservative execution anyway.
            self._floor_committed = floor
            self._refresh_cancel_floor()
        self._cut_wave = wave
        low = self._local_low()
        if low < token["low"]:
            token["low"] = low
        anti_low = self._local_anti_low()
        if anti_low < token["anti_low"]:
            token["anti_low"] = anti_low
        if self._watchdog.enabled:
            # watchdog_s=0 disables the liveness layer; skipping the
            # fold keeps vt_min None so the initiator never samples.
            for runtime in self._proc.runtimes.values():
                now = runtime.lp.now
                if token["vt_min"] is None or now < token["vt_min"]:
                    token["vt_min"] = now
                if token["vt_max"] is None or now > token["vt_max"]:
                    token["vt_max"] = now
        self._send_min = INFINITY
        index = self._index
        for dst, n in self._sent_to.items():
            token["sent"][(index, dst)] = n
        for src, n in self._recv_from.items():
            token["recv"][(src, index)] = n
        if not token["busy"] and self._busy():
            token["busy"] = True
        self._progressed = False
        if self.endpoint is not None:
            self.endpoint.wave = token["wave"]
            for dst, items in self.endpoint.pump(token["wave"]).items():
                self._post_batch(dst, items)
        # Commit application may have produced antimessages (lazy flush)
        # or released blocked LPs whose sends are already queued.
        self._flush()

    def _forward(self, token: dict) -> None:
        self._queues[(self._index + 1) % self.processors].put(
            ("token", token))

    def _apply_commit(self, gvt: VirtualTime) -> None:
        if gvt <= self._gvt:
            return
        self._gvt = gvt
        proc = self._proc
        proc.gvt_bound = gvt
        proc.stats.gvt_rounds += 1
        for runtime in proc.runtimes.values():
            proc.flush_lazy(runtime, gvt)
        proc.drain_local()
        proc.fossil_collect(gvt)
        proc.rearm_blocked()
        if self.recovery:
            self._take_checkpoint()

    def _refresh_cancel_floor(self) -> None:
        """Raise (or lower) the horizon to the freshest sound value:
        the globally committed floor capped by local knowledge.  Blocked
        conservative LPs are re-armed — a raised floor may be exactly
        what they were waiting for."""
        proc = self._proc
        floor = self._floor_committed
        local = self._local_anti_low()
        if local < floor:
            floor = local
        if floor != proc.cancel_floor:
            proc.cancel_floor = floor
            proc.rearm_blocked()

    def _initiate(self) -> None:
        """Initiator: evaluate the completed wave, start the next one."""
        token, self._completed_token = self._completed_token, None
        wave = token["wave"]
        commit: Optional[VirtualTime] = None
        floor: VirtualTime = INFINITY
        settled = False
        if wave >= 0:
            self._net.token_waves += 1
            sent, recv = token["sent"], token["recv"]
            # Two-cut validity: everything sent before the PREVIOUS
            # wave's cuts has been received before this wave's cuts, so
            # any message still in flight was sent inside the window the
            # send-minimums cover.
            valid = all(recv.get(channel, 0) >= n
                        for channel, n in self._prev_sent.items())
            candidate = token["low"]
            settled = self._counts_settled(sent, recv)
            if valid and candidate != INFINITY \
                    and candidate > self._gvt_committed:
                commit = candidate
                self._gvt_committed = candidate
                self._commits += 1
                while self._crash_schedule and \
                        self._crash_schedule[0][0] <= self._commits:
                    _at, victim = self._crash_schedule.pop(0)
                    self._post(victim, ("die", self._index))
            if not token["busy"] and commit is None and settled:
                self._broadcast_stop()
                return
            self._prev_sent = dict(sent)
            # The completed wave's cancellation horizon rides the next
            # token regardless of commit validity (see _visit for why
            # it needs no two-cut argument).
            floor = token["anti_low"]
            vt_min, vt_max = token["vt_min"], token["vt_max"]
            if vt_min is not None and vt_max is not None:
                # Korniss virtual-time surface sample, one per wave.
                width = int(vt_max[0] - vt_min[0])
                self._net.vt_spread_samples += 1
                self._net.vt_spread_width_sum += width
                if width > self._net.vt_spread_width_max:
                    self._net.vt_spread_width_max = width
        fresh = _fresh_token(wave + 1, commit, floor=floor,
                             settled=settled)
        self._visit(fresh)
        if self._stop_info is not None:  # pragma: no cover - defensive
            return
        self._forward(fresh)

    @staticmethod
    def _counts_settled(sent: Dict[tuple, int],
                        recv: Dict[tuple, int]) -> bool:
        """Every channel's cumulative send/receive counts agree: no
        envelope is in flight anywhere."""
        for channel in set(sent) | set(recv):
            if sent.get(channel, 0) != recv.get(channel, 0):
                return False
        return True

    def _broadcast_stop(self) -> None:
        info = (self._gvt_committed, self._net.token_waves, self._commits)
        for peer in range(1, self.processors):
            self._queues[peer].put(("stop",) + info)
        self._stop_info = info

    # ------------------------------------------------------------------
    # Crash-recovery
    # ------------------------------------------------------------------
    def _take_checkpoint(self) -> None:
        """Durable-by-fiat checkpoint (log-before-send model): the
        processor image plus the fabric's sequence horizons."""
        self._ckpt = checkpoint_processor(self._proc)
        self._ckpt_marks = (self.endpoint.checkpoint_marks()
                            if self.endpoint is not None else ({}, {}))

    def _crash(self) -> None:
        """Lose all volatile state, recover from the durable checkpoint,
        reconcile with the world.  Mirrors ``ThreadedFabric.crash`` but
        needs no stop-the-world: the fabric endpoint (journals, unacked
        maps, sequence counters) is durable, in-flight input is
        re-created by the peers' journal replay, and stale conservative
        promises are invalidated by an epoch-bump broadcast.
        """
        endpoint = self.endpoint
        if endpoint is None:  # pragma: no cover - guarded at build time
            raise ProtocolError("crash injection requires the fabric")
        if self._ckpt is None:  # pragma: no cover - taken before loop
            raise ProtocolError(
                f"no durable checkpoint for worker {self._index}")
        endpoint.stats.crashes += 1
        proc = self._proc
        pre_epochs = {lp_id: runtime.cons_epoch
                      for lp_id, runtime in proc.runtimes.items()}
        restore_processor(proc, self._ckpt)
        proc.gvt_bound = self._gvt
        for lp_id, runtime in proc.runtimes.items():
            runtime.cons_epoch = max(pre_epochs.get(lp_id, 0),
                                     runtime.cons_epoch) + 1
        # The un-encoded outbox is volatile: nothing in it was ever
        # journalled or promised, and the restored replay regenerates
        # (or abandons) each message on its own authority.
        for target in self._outbox:
            self._outbox[target] = []
        # Outgoing reconciliation: the dead incarnation's journalled
        # post-checkpoint output feeds the lazy-cancellation machinery —
        # regenerated messages are reused in place, abandoned ones are
        # cancelled, and journalled antimessages suppress one re-send.
        sender_marks, recv_floors = self._ckpt_marks
        live_sender, _live_recv = endpoint.checkpoint_marks()
        for dst in live_sender:
            base = sender_marks.get(dst, 0)
            window = endpoint.sender_window(dst, base)
            anti_eids = {e.eid for e in window if e.sign < 0}
            if anti_eids:
                endpoint.mark_spent_anti(dst, anti_eids)
            for event in window:
                if (event.sign > 0 and not event.is_null
                        and event.eid not in anti_eids):
                    runtime = proc.runtimes.get(event.src)
                    if runtime is not None:
                        runtime.lazy_pending.append(event)
                        # Each injected entry is an outstanding
                        # cancellation: lower the horizon so no
                        # conservative LP commits at its timestamp
                        # before the squash-or-cancel decision lands.
                        self._note_cancellation(event.time)
        endpoint.rewind_receiver(recv_floors)
        endpoint.stats.recoveries += 1
        # Tell every peer: bump your replica epochs (stale conservative
        # promises from the dead incarnation must not be trusted) and
        # replay your journal from my checkpoint's delivery horizon.
        epochs = {lp_id: runtime.cons_epoch
                  for lp_id, runtime in proc.runtimes.items()}
        for peer in range(self.processors):
            if peer == self._index:
                continue
            self._post(peer, ("recover", self._index, epochs,
                              recv_floors.get(peer, 0)))

    def _on_recover(self, victim: int, epochs: Dict[int, int],
                    floor: int) -> None:
        """Peer side of a crash: epoch bump + journal replay."""
        self._recv_from[victim] = self._recv_from.get(victim, 0) + 1
        for lp_id, epoch in epochs.items():
            runtime = self._runtimes.get(lp_id)
            if runtime is not None and runtime.cons_epoch < epoch:
                runtime.cons_epoch = epoch
        items = self.endpoint.replay_for(victim, floor)
        if items:
            self._post_batch(victim, items)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _report_done(self) -> None:
        proc = self._proc
        for runtime in proc.runtimes.values():
            proc._commit_log(runtime)
        self._net.watchdog_probes += self._watchdog.probes
        stats = RunStats()
        stats.merge(proc.stats)
        if self.endpoint is not None:
            stats.merge(self.endpoint.stats)
        stats.merge(self._net)
        lp_states = {
            lp_id: (runtime.lp.now,
                    {attr: getattr(runtime.lp, attr)
                     for attr in runtime.lp.state_attrs})
            for lp_id, runtime in proc.runtimes.items()}
        gvt, waves, commits = self._stop_info
        self._result_queue.put(
            ("done", self._index, stats, lp_states, gvt, waves, commits))


def run_procs(model: Model, processors: int,
              protocol: str = "optimistic",
              partition: Union[str, Partition, Callable] = "round_robin",
              until: Optional[int] = None,
              quantum: int = 64,
              timeout_s: float = 120.0,
              fault_plan: Optional[FaultPlan] = None,
              recovery: Optional[bool] = None,
              watchdog_s: Optional[float] = None,
              start_method: Optional[str] = None) -> ProcsOutcome:
    """Convenience wrapper mirroring :func:`run_threaded`."""
    machine = ProcsMachine(model, processors, protocol=protocol,
                           partition=partition, until=until,
                           quantum=quantum, fault_plan=fault_plan,
                           recovery=recovery, watchdog_s=watchdog_s,
                           start_method=start_method)
    return machine.run(timeout_s=timeout_s)
