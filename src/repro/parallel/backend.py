"""Shared plumbing for the parallel backends.

Four backends run the same per-processor engine (:mod:`.engine`):

* the **modelled** machine (:mod:`.machine`) — deterministic
  co-simulation in model time, the benchmark instrument;
* the **threaded** backend (:mod:`.threads`) — real OS threads with a
  stop-the-world coordinator, the concurrency demonstration;
* the **procs** backend (:mod:`.procs`) — real ``multiprocessing``
  worker processes with batched IPC and an asynchronous token-ring GVT,
  the wall-clock-speedup backend;
* the **dist** backend (:mod:`.dist`) — the same worker protocol over
  an asyncio/TCP transport, so workers run on separate hosts.

They share protocol obligations that used to be duplicated:

* **Epoch stamping at send time** (:func:`stamp_epoch`): a message
  leaving a currently-conservative LP is a promise its receiver may
  build safety bounds on, and must carry the sender's conservative
  epoch; everything else travels unstamped (``epoch = -1``).
* **The per-processor work predicate** (:func:`proc_has_work`):
  whether a processor still owes protocol work — queued events within
  the horizon, undelivered local messages, or withheld lazy
  cancellations.  Both real-concurrency backends evaluate it at their
  global synchronization points (barrier round / token visit).
* **The whole worker loop** (:class:`WorkerCore`): act quanta, batched
  flushes, the pipelined Mattern token ring, the cancellation horizon,
  fabric pump/checkpoint cadence and crash recovery.  The procs and
  dist backends differ *only* in how an envelope physically reaches a
  peer, so the loop lives here once, parameterized over three
  transport hooks (:meth:`WorkerCore._send_envelope`,
  :meth:`WorkerCore._recv_envelope`, :meth:`WorkerCore._emit_result`).

:class:`BackendOutcome` is the common result shape; the per-backend
outcome types extend it so callers can treat any backend's stats/GVT
uniformly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.event import Event
from ..core.model import SyncMode
from ..core.stats import RunStats
from ..core.vtime import INFINITY, MINUS_INFINITY, VirtualTime
from ..fabric.batched import BatchedEndpoint
from ..fabric.recovery import checkpoint_processor, restore_processor
from ..resilience import WallClockWatchdog, build_report
from .engine import LPRuntime, Processor, ProtocolError


def resolve_model(design_or_model):
    """Accept a Model, a Design, or a DesignArtifact; return a Model.

    Every backend entry point funnels through this, so callers can hand
    any representation of an elaborated design to any machine:

    * a :class:`~repro.vhdl.artifact.DesignArtifact` is instantiated
      into a *fresh* runtime (``instantiate_model()``) — artifacts are
      immutable and reusable, so this is the re-runnable path;
    * a :class:`~repro.vhdl.design.Design` is elaborated (single-use:
      a second run of the same Design raises — snapshot to an artifact
      to re-run);
    * a :class:`~repro.core.model.Model` passes through unchanged.

    Duck-typed rather than isinstance-dispatched so the core parallel
    layer keeps no import dependency on the VHDL front-end.
    """
    instantiate = getattr(design_or_model, "instantiate_model", None)
    if instantiate is not None:
        return instantiate()
    elaborate = getattr(design_or_model, "elaborate", None)
    if elaborate is not None and hasattr(design_or_model, "signals"):
        return elaborate()
    return design_or_model


def stamp_epoch(runtimes: Dict[int, LPRuntime], event: Event) -> Event:
    """Stamp a send with the sender's conservative-promise epoch.

    Only a *positive* message leaving a (currently) conservative LP is a
    promise; speculative sends and antimessages carry no epoch.  The
    stamp is taken at send time — the one moment the sender's mode is
    authoritative for this message.
    """
    src_rt = runtimes.get(event.src)
    if (event.sign > 0 and src_rt is not None
            and src_rt.mode is SyncMode.CONSERVATIVE):
        return event.stamped(src_rt.cons_epoch)
    return event


def proc_has_work(proc, until: Optional[int]) -> bool:
    """Does this processor still owe protocol work?

    True when it holds undelivered local/remote messages, a withheld
    lazy cancellation (which must eventually resolve to a reuse or an
    antimessage), or any queued event within the simulation horizon.
    Blocked conservative heads count: they are waiting for a safety
    bound, not finished.
    """
    if proc.local_fifo or proc.inbox:
        return True
    for runtime in proc.runtimes.values():
        if runtime.lazy_pending:
            return True  # withheld cancellations must resolve
        head = runtime.head()
        if head is None:
            continue
        if until is None or head.time.pt <= until:
            return True
    return False


@dataclass
class BackendOutcome:
    """Result shape shared by the real-concurrency backends."""

    stats: RunStats
    gvt: VirtualTime
    processors: int
    gvt_rounds: int


def fresh_token(wave: int, commit: Optional[VirtualTime],
                floor: VirtualTime = INFINITY,
                settled: bool = False) -> dict:
    """A blank Mattern token for the next wave (see :class:`WorkerCore`)."""
    return {"wave": wave, "low": INFINITY, "sent": {}, "recv": {},
            "busy": False, "commit": commit,
            # Liveness additions (PR 6): "anti_low" accumulates each
            # worker's min outstanding-cancellation time at its cut;
            # "floor" carries the committed global cancellation horizon
            # alongside the GVT commit; "settled" tells workers the
            # previous wave's channel counts matched exactly (nothing in
            # flight), letting them prune their anti buckets one wave
            # earlier; "vt_min"/"vt_max" accumulate the per-LP clock
            # surface for the Korniss roughness signal.
            "anti_low": INFINITY, "floor": floor, "settled": settled,
            "vt_min": None, "vt_max": None}


class WorkerCore:
    """The transport-agnostic worker: one processor on the token ring.

    Everything protocol — the act-quantum loop, batched flushes through
    an optional :class:`~repro.fabric.batched.BatchedEndpoint`, the
    pipelined Mattern token-ring GVT with two-cut channel counts, the
    cancellation horizon, checkpoint cadence and crash recovery — lives
    here once, shared by the procs and dist backends.  A concrete
    backend supplies the physical transport:

    * :meth:`_send_envelope` — ship one envelope to a peer worker;
    * :meth:`_recv_envelope` — next inbound envelope (or ``None``);
    * :meth:`_emit_result` — deliver a done/error message upstream.

    and sets the run parameters (``processors``, ``quantum``, ``until``,
    ``plan``, ``recovery``, ``use_fabric``, ``watchdog_bound``,
    ``backend_name``, ``_crash_schedule``, ``_timeout_s``) before
    calling :meth:`_run_worker`.

    **Envelope format.**  Counted envelopes — anything that enters the
    ring's per-channel send/receive counts, i.e. everything except the
    token and the stop — travel wrapped as ``("c", src, n, inner)``
    where ``n`` is the sender's cumulative count for that channel.  On
    a lossless transport (multiprocessing queues) the stamp is
    redundant: FIFO delivery makes the receiver's max-update identical
    to counting arrivals.  On a lossy transport (a dropped TCP
    connection) it is what keeps the two-cut argument honest: a lost
    envelope leaves a count *gap*, not a permanently frozen deficit —
    the next envelope on the channel (a fabric retransmission, a
    regenerated ack, a recovery notice) raises the receiver's count to
    the sender's, and the channel can settle again.  The lost *content*
    is recovered by the fabric layer (unacked map + token-driven pump;
    acks are regenerated on dedup re-receipt), never by the stamp.
    """

    # -- transport hooks (concrete backends override) -------------------
    def _send_envelope(self, target: int, envelope: tuple) -> None:
        raise NotImplementedError

    def _recv_envelope(self, block_s: float):
        """Next inbound envelope; ``None`` on timeout/empty."""
        raise NotImplementedError

    def _emit_result(self, message: tuple) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _setup_worker(self, index: int, proc: Processor,
                      runtimes: Dict[int, LPRuntime],
                      placement: Dict[int, int]) -> None:
        self._index = index
        self._proc = proc
        self._runtimes = runtimes
        self._placement = placement
        self._net = RunStats()        # transport counters (crash-durable)
        self._outbox: Dict[int, List[Event]] = {
            i: [] for i in range(self.processors) if i != index}
        self._sent_to: Dict[int, int] = {}
        self._recv_from: Dict[int, int] = {}
        self._send_min: VirtualTime = INFINITY
        self._progressed = False
        self._gvt: VirtualTime = MINUS_INFINITY
        self._held_token: Optional[dict] = None
        self._completed_token: Optional[dict] = None
        self._last_token_out: Optional[dict] = None
        self._stop_info: Optional[tuple] = None
        self._ckpt = None
        self._ckpt_marks: Tuple[Dict[int, int], Dict[int, int]] = ({}, {})
        # Cancellation-horizon bookkeeping (see docs/protocol.md):
        # antimessages this worker routed, bucketed by the token wave
        # period they were sent in; buckets are pruned once the ring's
        # two-cut argument proves delivery.  ``_floor_committed`` is the
        # last global horizon that rode in with a GVT commit.
        self._anti_mins: Dict[int, VirtualTime] = {}
        self._cut_wave = -1
        self._floor_committed: VirtualTime = INFINITY
        self._watchdog = WallClockWatchdog(self.watchdog_bound)
        self._stall_report = None
        # Waves the initiator must sit out after a fresh-process restore
        # (dist kill-recovery): the checkpoint-old `_prev_sent` baseline
        # is too weak to anchor the two-cut argument, so wave one runs
        # invalid/unsettled and wave two re-bases the counts.
        self._revalidate = 0
        self._max_stale_resent = -1
        self.endpoint: Optional[BatchedEndpoint] = (
            BatchedEndpoint(self.plan, index) if self.use_fabric else None)
        if index == 0:
            # Initiator state: a sentinel "completed wave -1" primes the
            # ring (busy, nothing sent, nothing committable).
            self._completed_token = {"wave": -1, "low": INFINITY,
                                     "sent": {}, "recv": {},
                                     "busy": True, "commit": None}
            self._prev_sent: Dict[tuple, int] = {}
            self._gvt_committed: VirtualTime = MINUS_INFINITY
            self._commits = 0
            self._last_completed_wave = -1

    def _run_worker(self, index: int, proc: Processor,
                    runtimes: Dict[int, LPRuntime],
                    placement: Dict[int, int],
                    restore: Optional[tuple] = None) -> None:
        self._setup_worker(index, proc, runtimes, placement)
        try:
            self._install_route()
            if restore is not None:
                image, tail, recv_marks = restore
                self._restore_incarnation(image, tail, recv_marks)
            elif self.recovery:
                self._take_checkpoint()
            self._worker_loop()
            self._report_done()
        except BaseException as exc:  # noqa: BLE001 - forwarded upstream
            partial = RunStats()
            try:
                self._net.watchdog_probes += self._watchdog.probes
                partial.merge(self._proc.stats)
                if self.endpoint is not None:
                    partial.merge(self.endpoint.stats)
                partial.merge(self._net)
            except Exception:  # pragma: no cover - diagnostics only
                pass
            try:
                self._emit_result(
                    ("error", index, f"{type(exc).__name__}: {exc}",
                     partial, self._stall_report))
            except Exception:  # pragma: no cover - transport broken
                pass

    def _install_route(self) -> None:
        proc = self._proc
        runtimes = self._runtimes
        placement = self._placement
        outbox = self._outbox
        index = self._index

        def route(event: Event) -> None:
            event = stamp_epoch(runtimes, event)
            target = placement[event.dst]
            if target == index:
                proc.local_fifo.append(event)
            else:
                outbox[target].append(event)

        proc.route = route
        # Override the hook the inner ParallelMachine installed at build
        # time: in a worker only this processor is live, and its
        # horizon must be maintained by the ring (which also *raises* it
        # again) — the inherited machine-wide note would lower it
        # forever and starve every conservative LP.
        proc.cancel_note = self._note_cancellation
        proc.cancel_floor = INFINITY

    def _note_cancellation(self, time: VirtualTime) -> None:
        """Eager horizon lowering: a cancellation just came into
        existence on this worker (withheld entry or routed anti).

        The time is also bucketed under the wave period it was minted
        in; the bucket is dropped once the token ring's two-cut
        condition proves every envelope of that period was received.
        """
        bucket = self._cut_wave + 1
        current = self._anti_mins.get(bucket)
        if current is None or time < current:
            self._anti_mins[bucket] = time
        proc = self._proc
        if time < proc.cancel_floor:
            proc.cancel_floor = time

    def _local_anti_low(self) -> VirtualTime:
        """Min outstanding-cancellation time this worker knows about:
        unpruned anti buckets, withheld lazy entries (crash-recovery
        reconciliation), and negatives owed by the fabric endpoint."""
        low = INFINITY
        for value in self._anti_mins.values():
            if value < low:
                low = value
        for runtime in self._proc.runtimes.values():
            for pending in runtime.lazy_pending:
                if pending.time < low:
                    low = pending.time
        if self.endpoint is not None:
            for event in self.endpoint.pending_events():
                if event.sign < 0 and event.time < low:
                    low = event.time
        return low

    def _prune_anti_buckets(self, before_wave: int) -> None:
        for bucket in [b for b in self._anti_mins if b <= before_wave]:
            del self._anti_mins[bucket]

    def _stall(self, reason: str) -> None:
        """Diagnose an unrecoverable worker stall: checkpoint (so a
        post-mortem restore is possible), assemble the forensics report
        and abort.  The report ships upstream through the error
        path and surfaces on the raised :class:`ProtocolError`."""
        self._net.watchdog_stalls += 1
        if self.recovery:
            self._take_checkpoint()
        in_flight = {
            "sent_to": {dst: n for dst, n in sorted(self._sent_to.items())},
            "recv_from": {src: n
                          for src, n in sorted(self._recv_from.items())},
            "outbox": sum(len(v) for v in self._outbox.values()),
            "cut_wave": self._cut_wave,
        }
        if self.endpoint is not None:
            in_flight["fabric_pending"] = len(
                list(self.endpoint.pending_events()))
        gvt = self._gvt if self._gvt != MINUS_INFINITY else None
        self._stall_report = build_report(
            self.backend_name, reason, [self._proc], gvt=gvt,
            bound=self._watchdog.bound, in_flight=in_flight,
            origin=self._index)
        raise ProtocolError("stall diagnosed: " + reason)

    def _worker_loop(self) -> None:
        deadline = time.monotonic() + self._timeout_s
        proc = self._proc
        quantum = self.quantum
        while self._stop_info is None:
            progressed = self._drain(0.0)
            for _ in range(quantum):
                if self._stop_info is not None:
                    return
                if not proc.act():
                    break
                progressed = True
            if progressed:
                self._progressed = True
            self._flush()
            if self._index == 0 and self._completed_token is not None:
                self._initiate()
            elif self._held_token is not None:
                token, self._held_token = self._held_token, None
                self._visit(token)
                self._forward(token)
            if self._stop_info is not None:
                return
            if not progressed and self._held_token is None \
                    and self._completed_token is None:
                # Idle: block briefly on the inbound channel; a batch,
                # the token or the stop will wake us.
                self._drain(0.0008)
            if self._watchdog.tick(
                    (self._gvt, proc.stats.events_committed)):
                self._stall(
                    f"no GVT advance or commit on worker {self._index} "
                    f"in {self._watchdog.bound:.1f}s "
                    f"(gvt {self._gvt}, "
                    f"{proc.stats.events_executed} executed)")
            if time.monotonic() > deadline:
                self._stall(
                    f"worker {self._index} exceeded the "
                    f"{self._timeout_s:.1f}s deadline "
                    f"(gvt {self._gvt}, "
                    f"{self._proc.stats.events_executed} executed)")

    # ------------------------------------------------------------------
    # Envelope plumbing
    # ------------------------------------------------------------------
    def _post(self, target: int, envelope: tuple) -> None:
        """Ship one counted envelope (anything but token/stop)."""
        count = self._sent_to.get(target, 0) + 1
        self._sent_to[target] = count
        self._send_envelope(target, ("c", self._index, count, envelope))

    def _post_batch(self, target: int, items: list) -> None:
        self._post(target, ("batch", self._index, items))
        self._net.ipc_batches += 1
        self._net.ipc_events += len(items)
        wrapped = self.endpoint is not None
        for item in items:
            event = item[1] if wrapped else item
            if event.time < self._send_min:
                self._send_min = event.time

    def _flush(self) -> bool:
        """Ship every destination's collected events as one envelope."""
        sent_any = False
        endpoint = self.endpoint
        for target, events in self._outbox.items():
            if not events:
                continue
            self._outbox[target] = []
            if endpoint is not None:
                items = endpoint.encode(target, events)
                if not items:
                    continue  # every copy dropped or held back
            else:
                items = events
            self._post_batch(target, items)
            sent_any = True
        return sent_any

    def _drain(self, block_s: float) -> bool:
        """Process inbound envelopes; True if any work was delivered."""
        progressed = False
        if block_s > 0:
            envelope = self._recv_envelope(block_s)
            if envelope is None:
                return False
            progressed |= self._dispatch(envelope)
        for _ in range(512):
            envelope = self._recv_envelope(0.0)
            if envelope is None:
                break
            progressed |= self._dispatch(envelope)
        return progressed

    def _dispatch(self, envelope: tuple) -> bool:
        kind = envelope[0]
        if kind == "c":
            _tag, src, count, inner = envelope
            # Cumulative channel-count stamp: max-update (not +1) so a
            # transport-level loss cannot freeze the channel's deficit.
            if count > self._recv_from.get(src, 0):
                self._recv_from[src] = count
            return self._dispatch_inner(inner)
        if kind == "token":
            token = envelope[1]
            if self._token_stale(token):
                self._resend_token(token["wave"])
                return False
            if self._index == 0:
                self._completed_token = token
            else:
                self._held_token = token
            return False
        if kind == "stop":
            self._stop_info = envelope[1:]
            return True
        raise ProtocolError(f"unknown envelope kind {kind!r}")

    def _dispatch_inner(self, envelope: tuple) -> bool:
        kind = envelope[0]
        if kind == "batch":
            self._on_batch(envelope[1], envelope[2])
            return True
        if kind == "acks":
            self.endpoint.ack(envelope[1], envelope[2])
            return True
        if kind == "recover":
            self._on_recover(envelope[1], envelope[2], envelope[3])
            return True
        if kind == "die":
            self._crash()
            return True
        raise ProtocolError(f"unknown envelope kind {kind!r}")

    def _token_stale(self, token: dict) -> bool:
        wave = token["wave"]
        if self._index == 0:
            return wave <= self._last_completed_wave
        return wave <= self._cut_wave

    def _resend_token(self, stale_wave: int) -> None:
        """A reconnect re-delivered an already-consumed token: the copy
        this worker forwarded may have been the one the link lost, so
        put it back on the ring — at most once per stale wave number, so
        duplicate deliveries cannot breed token echoes.  The initiator
        never resends (it regenerates the ring via its own forward; a
        stale token there is always a duplicate, and dropping it is what
        terminates a circulating echo)."""
        if self._index == 0 or self._stop_info is not None:
            return
        if self._last_token_out is None:
            return
        if stale_wave <= self._max_stale_resent:
            return
        self._max_stale_resent = stale_wave
        self._send_envelope((self._index + 1) % self.processors,
                            ("token", self._last_token_out))

    def _on_batch(self, src: int, items: list) -> None:
        endpoint = self.endpoint
        if endpoint is not None:
            events = endpoint.decode(src, items)
            # Flush acks immediately: one ack envelope per batch keeps
            # sender unacked maps (and the retransmit pump) small.
            for peer, seqs in endpoint.take_acks().items():
                self._post(peer, ("acks", self._index, seqs))
                self._net.ipc_batches += 1
        else:
            events = items
        proc = self._proc
        for event in events:
            proc.deliver(event)
            proc.drain_local()

    # ------------------------------------------------------------------
    # Token-ring GVT
    # ------------------------------------------------------------------
    def _local_low(self) -> VirtualTime:
        """This worker's cut contribution: local state + sends since
        the previous cut (the Mattern send-minimum)."""
        low = self._proc.local_min_time()
        for event in self._proc.local_fifo:
            if event.time < low:
                low = event.time
        for events in self._outbox.values():
            for event in events:
                if event.time < low:
                    low = event.time
        if self.endpoint is not None:
            for event in self.endpoint.pending_events():
                if event.time < low:
                    low = event.time
        if self._send_min < low:
            low = self._send_min
        return low

    def _busy(self) -> bool:
        if self._progressed:
            return True
        if self._proc.local_fifo:
            return True
        if any(self._outbox.values()):
            return True
        if self.endpoint is not None and not self.endpoint.quiet():
            return True
        return proc_has_work(self._proc, self.until)

    def _visit(self, token: dict) -> None:
        """One worker's token visit: apply the piggybacked commit, cut,
        merge counts, run the retransmit pump."""
        wave = token["wave"]
        commit = token.get("commit")
        if commit is not None:
            # The commit proves wave-1 was two-cut valid: everything
            # sent before cut wave-2 was received.  Bucket b holds antis
            # minted between cuts b-1 and b; the envelope carrying one
            # may only leave at the end of visit b, i.e. before cut b+1
            # — so bucket b is provably delivered once b+1 <= wave-2.
            self._prune_anti_buckets(wave - 3)
            self._apply_commit(commit)
        if token.get("settled"):
            # The previous wave's channel counts matched exactly:
            # everything sent before cut wave-1 was received, which
            # covers buckets up to wave-2 (same +1 flush slack).
            self._prune_anti_buckets(wave - 2)
        floor = token.get("floor", INFINITY)
        if floor != INFINITY or self._floor_committed != INFINITY:
            # The global horizon needs no two-cut validity: every
            # outstanding cancellation stays in its originator's
            # bucket/lazy list until delivery is *proven*, so last
            # wave's anti_low covers everything that existed at the
            # cuts, and anything minted since is strictly above the
            # GVT that bounds conservative execution anyway.
            self._floor_committed = floor
            self._refresh_cancel_floor()
        self._cut_wave = wave
        low = self._local_low()
        if low < token["low"]:
            token["low"] = low
        anti_low = self._local_anti_low()
        if anti_low < token["anti_low"]:
            token["anti_low"] = anti_low
        if self._watchdog.enabled:
            # watchdog_s=0 disables the liveness layer; skipping the
            # fold keeps vt_min None so the initiator never samples.
            for runtime in self._proc.runtimes.values():
                now = runtime.lp.now
                if token["vt_min"] is None or now < token["vt_min"]:
                    token["vt_min"] = now
                if token["vt_max"] is None or now > token["vt_max"]:
                    token["vt_max"] = now
        self._send_min = INFINITY
        index = self._index
        for dst, n in self._sent_to.items():
            token["sent"][(index, dst)] = n
        for src, n in self._recv_from.items():
            token["recv"][(src, index)] = n
        if not token["busy"] and self._busy():
            token["busy"] = True
        self._progressed = False
        if self.endpoint is not None:
            self.endpoint.wave = token["wave"]
            for dst, items in self.endpoint.pump(token["wave"]).items():
                self._post_batch(dst, items)
        # Commit application may have produced antimessages (lazy flush)
        # or released blocked LPs whose sends are already queued.
        self._flush()

    def _forward(self, token: dict) -> None:
        self._last_token_out = token
        self._send_envelope((self._index + 1) % self.processors,
                            ("token", token))

    def _apply_commit(self, gvt: VirtualTime) -> None:
        if gvt <= self._gvt:
            return
        self._gvt = gvt
        proc = self._proc
        proc.gvt_bound = gvt
        proc.stats.gvt_rounds += 1
        for runtime in proc.runtimes.values():
            proc.flush_lazy(runtime, gvt)
        proc.drain_local()
        proc.fossil_collect(gvt)
        proc.rearm_blocked()
        if self.recovery:
            self._take_checkpoint()

    def _refresh_cancel_floor(self) -> None:
        """Raise (or lower) the horizon to the freshest sound value:
        the globally committed floor capped by local knowledge.  Blocked
        conservative LPs are re-armed — a raised floor may be exactly
        what they were waiting for."""
        proc = self._proc
        floor = self._floor_committed
        local = self._local_anti_low()
        if local < floor:
            floor = local
        if floor != proc.cancel_floor:
            proc.cancel_floor = floor
            proc.rearm_blocked()

    def _initiate(self) -> None:
        """Initiator: evaluate the completed wave, start the next one."""
        token, self._completed_token = self._completed_token, None
        wave = token["wave"]
        self._last_completed_wave = wave
        commit: Optional[VirtualTime] = None
        floor: VirtualTime = INFINITY
        settled = False
        if wave >= 0:
            self._net.token_waves += 1
            sent, recv = token["sent"], token["recv"]
            # Two-cut validity: everything sent before the PREVIOUS
            # wave's cuts has been received before this wave's cuts, so
            # any message still in flight was sent inside the window the
            # send-minimums cover.
            valid = all(recv.get(channel, 0) >= n
                        for channel, n in self._prev_sent.items())
            candidate = token["low"]
            settled = self._counts_settled(sent, recv)
            if self._revalidate > 0:
                # A restored initiator (dist kill-recovery) holds a
                # checkpoint-old _prev_sent baseline, and its first
                # post-restore wave may ride a self-primed sentinel
                # token with empty counts: run two waves invalid and
                # unsettled (always safe — it merely delays commits,
                # pruning and termination) before trusting the re-based
                # counts again.
                valid = False
                settled = False
                self._revalidate -= 1
            if valid and candidate != INFINITY \
                    and candidate > self._gvt_committed:
                commit = candidate
                self._gvt_committed = candidate
                self._commits += 1
                while self._crash_schedule and \
                        self._crash_schedule[0][0] <= self._commits:
                    _at, victim = self._crash_schedule.pop(0)
                    self._post(victim, ("die", self._index))
            if not token["busy"] and commit is None and valid and settled:
                self._broadcast_stop()
                return
            self._prev_sent = dict(sent)
            # The completed wave's cancellation horizon rides the next
            # token regardless of commit validity (see _visit for why
            # it needs no two-cut argument).
            floor = token["anti_low"]
            vt_min, vt_max = token["vt_min"], token["vt_max"]
            if vt_min is not None and vt_max is not None:
                # Korniss virtual-time surface sample, one per wave.
                width = int(vt_max[0] - vt_min[0])
                self._net.vt_spread_samples += 1
                self._net.vt_spread_width_sum += width
                if width > self._net.vt_spread_width_max:
                    self._net.vt_spread_width_max = width
        fresh = fresh_token(wave + 1, commit, floor=floor,
                            settled=settled)
        self._visit(fresh)
        if self._stop_info is not None:  # pragma: no cover - defensive
            return
        self._forward(fresh)

    @staticmethod
    def _counts_settled(sent: Dict[tuple, int],
                        recv: Dict[tuple, int]) -> bool:
        """Every channel's cumulative send/receive counts agree: no
        envelope is in flight anywhere."""
        for channel in set(sent) | set(recv):
            if sent.get(channel, 0) != recv.get(channel, 0):
                return False
        return True

    def _broadcast_stop(self) -> None:
        info = (self._gvt_committed, self._net.token_waves, self._commits)
        for peer in range(1, self.processors):
            self._send_envelope(peer, ("stop",) + info)
        self._stop_info = info

    # ------------------------------------------------------------------
    # Crash-recovery
    # ------------------------------------------------------------------
    def _take_checkpoint(self) -> None:
        """Durable-by-fiat checkpoint (log-before-send model): the
        processor image plus the fabric's sequence horizons."""
        self._ckpt = checkpoint_processor(self._proc)
        self._ckpt_marks = (self.endpoint.checkpoint_marks()
                            if self.endpoint is not None else ({}, {}))
        self._checkpoint_taken()

    def _checkpoint_taken(self) -> None:
        """Hook: a fresh durable checkpoint exists.  The dist backend
        uploads it to the coordinator here; in-process backends keep it
        in memory (durable by fiat)."""

    def _durable_image(self) -> dict:
        """Everything a *freshly started process* needs to resume this
        worker's role: the processor checkpoint, the fabric endpoint
        (journal/unacked/sequence state — the log-before-send log), and
        the ring bookkeeping that must survive with them."""
        image = {
            "ckpt": self._ckpt,
            "marks": self._ckpt_marks,
            "endpoint": self.endpoint,
            "gvt": self._gvt,
            "cut_wave": self._cut_wave,
            "sent_to": dict(self._sent_to),
            "recv_from": dict(self._recv_from),
            "anti_mins": dict(self._anti_mins),
            "floor_committed": self._floor_committed,
            "net": self._net,
            "crash_schedule": list(self._crash_schedule),
        }
        if self._index == 0:
            image["initiator"] = (
                dict(self._prev_sent), self._gvt_committed,
                self._commits, self._last_completed_wave)
        return image

    def _restore_durable_image(self, image: dict) -> None:
        """Adopt a durable image in a fresh incarnation (dist kill-
        recovery).  Must run after :meth:`_setup_worker` and before the
        :meth:`_crash`-style reconciliation."""
        self._ckpt = image["ckpt"]
        self._ckpt_marks = image["marks"]
        self.endpoint = image["endpoint"]
        self._gvt = image["gvt"]
        self._cut_wave = image["cut_wave"]
        self._sent_to = dict(image["sent_to"])
        self._recv_from = dict(image["recv_from"])
        self._anti_mins = dict(image["anti_mins"])
        self._floor_committed = image["floor_committed"]
        self._net = image["net"]
        self._crash_schedule = list(image["crash_schedule"])
        if self._index == 0 and "initiator" in image:
            (self._prev_sent, self._gvt_committed,
             self._commits, self._last_completed_wave) = image["initiator"]
            self._revalidate = 2
            # Self-prime the ring: the dead incarnation may have been
            # holding the token (in which case the ring is empty and
            # only the initiator can restart it).  If a custody copy is
            # also re-delivered, one of the two same-wave tokens wins
            # the race at each peer and the other dies as a stale
            # duplicate within a lap — the revalidation window above
            # keeps the sentinel's empty counts from committing or
            # settling anything.
            self._completed_token = {
                "wave": self._last_completed_wave, "low": INFINITY,
                "sent": {}, "recv": {}, "busy": True, "commit": None,
                "anti_low": INFINITY, "floor": INFINITY,
                "settled": False, "vt_min": None, "vt_max": None}

    def _crash(self) -> None:
        """Lose all volatile state, recover from the durable checkpoint,
        reconcile with the world.  Mirrors ``ThreadedFabric.crash`` but
        needs no stop-the-world: the fabric endpoint (journals, unacked
        maps, sequence counters) is durable, in-flight input is
        re-created by the peers' journal replay, and stale conservative
        promises are invalidated by an epoch-bump broadcast.
        """
        endpoint = self.endpoint
        if endpoint is None:  # pragma: no cover - guarded at build time
            raise ProtocolError("crash injection requires the fabric")
        if self._ckpt is None:  # pragma: no cover - taken before loop
            raise ProtocolError(
                f"no durable checkpoint for worker {self._index}")
        endpoint.stats.crashes += 1
        proc = self._proc
        pre_epochs = {lp_id: runtime.cons_epoch
                      for lp_id, runtime in proc.runtimes.items()}
        restore_processor(proc, self._ckpt)
        proc.gvt_bound = self._gvt
        for lp_id, runtime in proc.runtimes.items():
            runtime.cons_epoch = max(pre_epochs.get(lp_id, 0),
                                     runtime.cons_epoch) + 1
        # The un-encoded outbox is volatile: nothing in it was ever
        # journalled or promised, and the restored replay regenerates
        # (or abandons) each message on its own authority.
        for target in self._outbox:
            self._outbox[target] = []
        # Outgoing reconciliation: the dead incarnation's journalled
        # post-checkpoint output feeds the lazy-cancellation machinery —
        # regenerated messages are reused in place, abandoned ones are
        # cancelled, and journalled antimessages suppress one re-send.
        sender_marks, recv_floors = self._ckpt_marks
        live_sender, _live_recv = endpoint.checkpoint_marks()
        for dst in live_sender:
            base = sender_marks.get(dst, 0)
            window = endpoint.sender_window(dst, base)
            # Eid ratchet: every windowed send is world-visible, but a
            # checkpoint restored into a fresh process (dist) rewinds
            # each LP's eid counter to its checkpoint mark.  Re-minting
            # a windowed seq would pair a *different* message with an
            # already-journalled eid — and the eventual antimessage
            # would annihilate the wrong one.  (In-process crashes keep
            # the live counters, which are already past the window:
            # the max() is a no-op there.)
            for event in window:
                if event.eid is None:
                    continue
                minter = proc.runtimes.get(event.eid.src)
                if minter is not None and \
                        event.eid.seq > minter.lp._seq:
                    minter.lp._seq = event.eid.seq
            anti_eids = {e.eid for e in window if e.sign < 0}
            if anti_eids:
                endpoint.mark_spent_anti(dst, anti_eids)
            for event in window:
                if (event.sign > 0 and not event.is_null
                        and event.eid not in anti_eids):
                    runtime = proc.runtimes.get(event.src)
                    if runtime is None:
                        continue
                    if runtime.mode is SyncMode.CONSERVATIVE:
                        # A conservative LP never rolls back, so the
                        # restored replay re-executes the same committed
                        # inputs and deterministically regenerates this
                        # send: the entry exists only to suppress the
                        # duplicate, it can never become an antimessage.
                        # It therefore must NOT go through lazy_pending:
                        # pinning the cancellation horizon at its own
                        # timestamp would block the very conservative
                        # execution whose re-send it is waiting to
                        # match, and with GVT already at that timestamp
                        # no flush ever breaks the tie (the conservative
                        # crash-recovery self-deadlock).
                        runtime.reuse_pending.append(event)
                        continue
                    runtime.lazy_pending.append(event)
                    # Each injected entry is an outstanding
                    # cancellation: lower the horizon so no
                    # conservative LP commits at its timestamp
                    # before the squash-or-cancel decision lands.
                    self._note_cancellation(event.time)
        endpoint.rewind_receiver(recv_floors)
        endpoint.stats.recoveries += 1
        # Tell every peer: bump your replica epochs (stale conservative
        # promises from the dead incarnation must not be trusted) and
        # replay your journal from my checkpoint's delivery horizon.
        epochs = {lp_id: runtime.cons_epoch
                  for lp_id, runtime in proc.runtimes.items()}
        for peer in range(self.processors):
            if peer == self._index:
                continue
            self._post(peer, ("recover", self._index, epochs,
                              recv_floors.get(peer, 0)))
        # Re-checkpoint immediately: the durable image must reflect the
        # post-recovery epochs (a second failure restoring the *pre*-
        # crash image could otherwise reuse an epoch peers have already
        # seen and trust a stale conservative promise).
        self._take_checkpoint()

    def _restore_incarnation(self, image: dict, tail: list,
                             recv_marks: Optional[Dict[int, int]] = None,
                             ) -> None:
        """Fresh-process kill-recovery (dist): adopt the durable image,
        splice the coordinator-retained sent-tail back into the fabric
        journal, then run the standard crash reconciliation.

        ``tail`` is the coordinator's FIFO of ``(dst, envelope)`` pairs
        it relayed *from* this worker after the image was uploaded: the
        sends the dead incarnation made that the image's journal does
        not know about, but the world has seen.  Splicing them back in
        lets :meth:`_crash` reconcile them (cancel-or-reuse) exactly
        like any other post-checkpoint output; their count stamps
        restore ``_sent_to`` to the world-visible values so the ring's
        channel counts stay monotone on the sender side.

        ``recv_marks`` is the receive-side mirror: per-source counted-
        envelope high-water marks the coordinator observed while
        relaying *to* this worker.  The image's ``recv_from`` is frozen
        at checkpoint time, but the dead incarnation kept receiving —
        and pure-ack envelopes carry no journalled events, so peers can
        never replay them.  Without the marks the channel's cumulative
        recv count regresses permanently below the peer's sent count
        and the GVT ring's ``settled`` test never holds again.  The
        counts are termination bookkeeping only; the *content*
        obligations heal separately (batches via journal replay, acks
        via re-ack-on-duplicate).
        """
        self._restore_durable_image(image)
        for src, n in (recv_marks or {}).items():
            if n > self._recv_from.get(src, 0):
                self._recv_from[src] = n
        endpoint = self.endpoint
        for dst, envelope in tail:
            if envelope[0] != "c":  # pragma: no cover - relay is counted
                continue
            _tag, _src, count, inner = envelope
            if count > self._sent_to.get(dst, 0):
                self._sent_to[dst] = count
            if inner[0] == "batch" and endpoint is not None:
                link = endpoint._out_link(dst)
                for seq, event in inner[2]:
                    link.journal[seq] = event
                    link.unacked[seq] = (event, endpoint.wave)
                    if seq >= link.next_seq:
                        link.next_seq = seq + 1
        self._crash()

    def _on_recover(self, victim: int, epochs: Dict[int, int],
                    floor: int) -> None:
        """Peer side of a crash: epoch bump + journal replay."""
        for lp_id, epoch in epochs.items():
            runtime = self._runtimes.get(lp_id)
            if runtime is not None and runtime.cons_epoch < epoch:
                runtime.cons_epoch = epoch
        items = self.endpoint.replay_for(victim, floor)
        if items:
            self._post_batch(victim, items)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _report_done(self) -> None:
        proc = self._proc
        for runtime in proc.runtimes.values():
            proc._commit_log(runtime)
        self._net.watchdog_probes += self._watchdog.probes
        stats = RunStats()
        stats.merge(proc.stats)
        if self.endpoint is not None:
            stats.merge(self.endpoint.stats)
        stats.merge(self._net)
        lp_states = {
            lp_id: (runtime.lp.now,
                    {attr: getattr(runtime.lp, attr)
                     for attr in runtime.lp.state_attrs})
            for lp_id, runtime in proc.runtimes.items()}
        gvt, waves, commits = self._stop_info
        self._emit_result(
            ("done", self._index, stats, lp_states, gvt, waves, commits))
