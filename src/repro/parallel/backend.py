"""Shared plumbing for the three parallel backends.

Three backends run the same per-processor engine (:mod:`.engine`):

* the **modelled** machine (:mod:`.machine`) — deterministic
  co-simulation in model time, the benchmark instrument;
* the **threaded** backend (:mod:`.threads`) — real OS threads with a
  stop-the-world coordinator, the concurrency demonstration;
* the **procs** backend (:mod:`.procs`) — real ``multiprocessing``
  worker processes with batched IPC and an asynchronous token-ring GVT,
  the wall-clock-speedup backend.

They share two protocol obligations that used to be duplicated:

* **Epoch stamping at send time** (:func:`stamp_epoch`): a message
  leaving a currently-conservative LP is a promise its receiver may
  build safety bounds on, and must carry the sender's conservative
  epoch; everything else travels unstamped (``epoch = -1``).
* **The per-processor work predicate** (:func:`proc_has_work`):
  whether a processor still owes protocol work — queued events within
  the horizon, undelivered local messages, or withheld lazy
  cancellations.  Both real-concurrency backends evaluate it at their
  global synchronization points (barrier round / token visit).

:class:`BackendOutcome` is the common result shape; the per-backend
outcome types extend it so callers can treat any backend's stats/GVT
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.event import Event
from ..core.model import SyncMode
from ..core.stats import RunStats
from ..core.vtime import VirtualTime
from .engine import LPRuntime


def resolve_model(design_or_model):
    """Accept a Model, a Design, or a DesignArtifact; return a Model.

    Every backend entry point funnels through this, so callers can hand
    any representation of an elaborated design to any machine:

    * a :class:`~repro.vhdl.artifact.DesignArtifact` is instantiated
      into a *fresh* runtime (``instantiate_model()``) — artifacts are
      immutable and reusable, so this is the re-runnable path;
    * a :class:`~repro.vhdl.design.Design` is elaborated (single-use:
      a second run of the same Design raises — snapshot to an artifact
      to re-run);
    * a :class:`~repro.core.model.Model` passes through unchanged.

    Duck-typed rather than isinstance-dispatched so the core parallel
    layer keeps no import dependency on the VHDL front-end.
    """
    instantiate = getattr(design_or_model, "instantiate_model", None)
    if instantiate is not None:
        return instantiate()
    elaborate = getattr(design_or_model, "elaborate", None)
    if elaborate is not None and hasattr(design_or_model, "signals"):
        return elaborate()
    return design_or_model


def stamp_epoch(runtimes: Dict[int, LPRuntime], event: Event) -> Event:
    """Stamp a send with the sender's conservative-promise epoch.

    Only a *positive* message leaving a (currently) conservative LP is a
    promise; speculative sends and antimessages carry no epoch.  The
    stamp is taken at send time — the one moment the sender's mode is
    authoritative for this message.
    """
    src_rt = runtimes.get(event.src)
    if (event.sign > 0 and src_rt is not None
            and src_rt.mode is SyncMode.CONSERVATIVE):
        return event.stamped(src_rt.cons_epoch)
    return event


def proc_has_work(proc, until: Optional[int]) -> bool:
    """Does this processor still owe protocol work?

    True when it holds undelivered local/remote messages, a withheld
    lazy cancellation (which must eventually resolve to a reuse or an
    antimessage), or any queued event within the simulation horizon.
    Blocked conservative heads count: they are waiting for a safety
    bound, not finished.
    """
    if proc.local_fifo or proc.inbox:
        return True
    for runtime in proc.runtimes.values():
        if runtime.lazy_pending:
            return True  # withheld cancellations must resolve
        head = runtime.head()
        if head is None:
            continue
        if until is None or head.time.pt <= until:
            return True
    return False


@dataclass
class BackendOutcome:
    """Result shape shared by the real-concurrency backends."""

    stats: RunStats
    gvt: VirtualTime
    processors: int
    gvt_rounds: int
