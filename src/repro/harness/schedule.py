"""Controlled schedules: deterministic interleaving exploration.

The modelled machine is deterministic *by construction*: every choice
it makes — which tied processor acts, which same-time LP runs, which
same-``(pt, lt)`` queued event is popped — falls back to a canonical
(sort-key) order.  The paper's claim (Sec. 3.3) is that none of those
tie-breaks matter: with the ``(pt, lt)`` Lamport extension, events left
simultaneous are independent and **any** processing order commits the
same results.

A :class:`Scheduler` turns every such tie into an explicit, recorded
*decision*: the engine hands it the (canonically sorted) candidate set
and the scheduler returns an index.  Three choice-point kinds exist:

* ``proc``  — which of several processors tied at the same model time
  acts next (:meth:`ParallelMachine._next_processor`);
* ``lp``    — which of several LP runtimes whose queue heads carry the
  same ``(pt, lt)`` executes next (:meth:`Processor._execute_one`);
* ``event`` — which of several same-``(pt, lt)`` events queued at one
  LP is popped (:meth:`Processor._controlled_pop`).

Because the machine is deterministic *given* the decision sequence, a
recorded sequence is a perfect replay artifact: feeding the decisions
back (:class:`ReplayScheduler`) reproduces the exact run — committed
waves, statistics, trace and all.  Exploration composes two
strategies:

* **seeded random** (:class:`RandomScheduler`) — every decision drawn
  from a seeded RNG;
* **targeted swaps** (DPOR-lite) — take the baseline (all-default) run,
  and for each decision point with more than one candidate emit a
  schedule that diverges *there* and follows defaults afterwards.
  This systematically covers every first divergence from the canonical
  order, which is where ordering bugs hide.

``tie_key`` defines which timestamps count as "simultaneous"
(default: the full ``(pt, lt)`` pair).  Tests monkeypatch it to
``pt``-only to *inject* an ordering bug — permuting across logical
phases violates the distributed VHDL cycle — and check that the
harness catches it with a replayable artifact.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class Scheduler:
    """Base controlled scheduler: records every decision it makes.

    ``log`` holds ``(ncand, chosen)`` pairs in decision order; the pair
    sequence is the run's *interleaving signature* — two runs with equal
    signatures executed the same interleaving.
    """

    def tie_key(self, time) -> Any:
        """Which part of a virtual time defines a "simultaneous" tie.

        The protocol's claim holds for the full ``(pt, lt)`` pair;
        collapsing it (e.g. to ``pt`` only) deliberately groups
        non-commuting events and is used by tests to inject an
        ordering bug.  (A plain method, so tests can monkeypatch it on
        the class without staticmethod-descriptor gymnastics.)
        """
        return (time[0], time[1])

    def __init__(self) -> None:
        self.log: List[Tuple[int, int]] = []

    # -- decision core -------------------------------------------------
    def choose(self, kind: str, ncand: int) -> int:
        """Pick one of ``ncand`` canonical candidates; record it."""
        chosen = self._pick(kind, ncand)
        if not 0 <= chosen < ncand:  # pragma: no cover - scheduler bug
            chosen = 0
        self.log.append((ncand, chosen))
        return chosen

    def _pick(self, kind: str, ncand: int) -> int:
        return 0

    # -- views ---------------------------------------------------------
    @property
    def signature(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(self.log)

    @property
    def decisions(self) -> List[int]:
        return [chosen for _n, chosen in self.log]

    @property
    def ncands(self) -> List[int]:
        return [n for n, _chosen in self.log]


class DefaultScheduler(Scheduler):
    """Always the canonical first candidate (the uncontrolled order)."""


class RandomScheduler(Scheduler):
    """Seeded-random exploration: every tie resolved by one RNG draw."""

    def __init__(self, seed: int) -> None:
        super().__init__()
        self.seed = seed
        self._rng = random.Random(seed)

    def _pick(self, kind: str, ncand: int) -> int:
        return self._rng.randrange(ncand)


class ReplayScheduler(Scheduler):
    """Feed back a recorded decision list; defaults after exhaustion.

    A replayed run normally encounters exactly the recorded choice
    points.  If it diverges (a candidate count differs from what the
    recording implies), the scheduler clamps the decision and counts
    the divergence — a nonzero ``divergences`` on a supposedly faithful
    replay is itself a determinism bug worth surfacing.
    """

    def __init__(self, decisions: List[int],
                 ncands: Optional[List[int]] = None) -> None:
        super().__init__()
        self._decisions = list(decisions)
        self._ncands = list(ncands) if ncands else None
        self._cursor = 0
        self.divergences = 0

    def _pick(self, kind: str, ncand: int) -> int:
        i = self._cursor
        self._cursor += 1
        if i >= len(self._decisions):
            return 0
        want = self._decisions[i]
        if self._ncands is not None and i < len(self._ncands) \
                and self._ncands[i] != ncand:
            self.divergences += 1
        if want >= ncand:
            self.divergences += 1
            return ncand - 1
        return want


def swap_schedule(point: int, alternative: int) -> List[int]:
    """The DPOR-lite targeted-swap decision list.

    Defaults (canonical order) everywhere except decision ``point``,
    where candidate ``alternative`` is taken instead.  Trailing
    defaults are implicit (:class:`ReplayScheduler` pads with 0).
    """
    return [0] * point + [alternative]


# ---------------------------------------------------------------------------
# Schedule artifacts
# ---------------------------------------------------------------------------
ARTIFACT_VERSION = 1


def normalize_params(params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Canonicalize circuit-builder params after a JSON round-trip.

    JSON has no tuples, so sequence-valued axes (e.g. the ``delays``
    palette) come back as lists; the builders and scenario keys want
    hashable tuples.
    """
    if not params:
        return {}
    return {key: tuple(value) if isinstance(value, list) else value
            for key, value in params.items()}


@dataclass
class Schedule:
    """A replayable schedule artifact.

    Everything needed to reproduce one explored interleaving: the
    circuit identity, machine configuration, the decision sequence, and
    the committed-wave digest the run produced (so a replay can verify
    it reproduced the same results bit-for-bit).
    """

    circuit: str
    circuit_seed: int
    processors: int
    protocol: str
    decisions: List[int] = field(default_factory=list)
    ncands: List[int] = field(default_factory=list)
    label: str = "recorded"
    wave_digest: Optional[str] = None
    violations: List[str] = field(default_factory=list)
    #: Whether the run used lazy cancellation (the seed-360472
    #: deadlock reproduces only with it on).  Optional in the JSON —
    #: artifacts recorded before PR 6 default to False, so the format
    #: version is unchanged.
    lazy_cancellation: bool = False
    #: Circuit-builder parameter overrides (the fuzzing campaign's
    #: topology axes: gates / registers / fanout / delays / ...).
    #: Optional in the JSON — empty means the builder's defaults, so
    #: pre-campaign artifacts keep loading and the format version is
    #: unchanged.
    circuit_params: Dict[str, Any] = field(default_factory=dict)
    #: Fault-injection plan of the run in JSON dict form (see
    #: :meth:`repro.fabric.plan.FaultPlan.to_dict`); ``None`` means a
    #: fault-free run.  Optional in the JSON, like ``circuit_params``.
    fault_plan: Optional[Dict[str, Any]] = None
    #: Process execution mode of the recorded run (``"interp"`` or
    #: ``"compiled"``, see :data:`repro.vhdl.kernel.EXEC_MODES`).
    #: Optional in the JSON — serialized only when not ``"interp"``,
    #: so pre-compiler artifacts keep loading unchanged.
    exec_mode: str = "interp"

    # -- (de)serialization --------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = {
            "version": ARTIFACT_VERSION,
            "circuit": self.circuit,
            "circuit_seed": self.circuit_seed,
            "processors": self.processors,
            "protocol": self.protocol,
            "decisions": self.decisions,
            "ncands": self.ncands,
            "label": self.label,
            "wave_digest": self.wave_digest,
            "violations": self.violations,
            "lazy_cancellation": self.lazy_cancellation,
        }
        if self.circuit_params:
            data["circuit_params"] = {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in self.circuit_params.items()}
        if self.fault_plan:
            data["fault_plan"] = self.fault_plan
        if self.exec_mode != "interp":
            data["exec_mode"] = self.exec_mode
        return data

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "Schedule":
        with open(path) as handle:
            data = json.load(handle)
        version = data.get("version")
        if version != ARTIFACT_VERSION:
            raise ValueError(
                f"unsupported schedule artifact version {version!r} "
                f"(expected {ARTIFACT_VERSION})")
        return cls(
            circuit=data["circuit"],
            circuit_seed=int(data.get("circuit_seed", 0)),
            processors=int(data["processors"]),
            protocol=data["protocol"],
            decisions=[int(d) for d in data.get("decisions", [])],
            ncands=[int(n) for n in data.get("ncands", [])],
            label=data.get("label", "recorded"),
            wave_digest=data.get("wave_digest"),
            violations=list(data.get("violations", [])),
            lazy_cancellation=bool(data.get("lazy_cancellation", False)),
            circuit_params=normalize_params(
                data.get("circuit_params", {})),
            fault_plan=data.get("fault_plan"),
            exec_mode=data.get("exec_mode", "interp"),
        )

    def replayer(self) -> ReplayScheduler:
        return ReplayScheduler(self.decisions, self.ncands)
