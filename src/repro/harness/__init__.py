"""Conformance harness: trace, controlled schedules, invariants.

The paper's soundness claim — with ``(pt, lt)`` tie-breaking, any
processing order of the events left simultaneous commits the same
results — is only as good as the interleavings the tests actually
execute.  This subsystem makes the claim *checkable*:

* :mod:`~repro.harness.trace` — structured protocol traces behind
  near-zero-cost hooks in the engines and the fabric;
* :mod:`~repro.harness.schedule` — controlled schedulers (canonical /
  seeded-random / replay) plus replayable JSON schedule artifacts;
* :mod:`~repro.harness.invariants` — trace-level safety checkers
  (GVT monotonicity, commit-after-GVT, per-LP commit order, phase
  legality, rollback/antimessage and fabric accounting);
* :mod:`~repro.harness.check` — the exploration driver with the
  sequential-engine differential oracle and failure shrinking.
"""

from .check import (CIRCUITS, Checker, CheckReport, RunReport,
                    build_circuit, check_backend, check_circuits,
                    replay_schedule, wave_digest)
from .invariants import VIOLATION_KINDS, check_all
from .schedule import (DefaultScheduler, RandomScheduler, ReplayScheduler,
                       Schedule, Scheduler, normalize_params,
                       swap_schedule)
from .trace import TraceRecord, Tracer

__all__ = [
    "CIRCUITS", "Checker", "CheckReport", "RunReport", "build_circuit",
    "check_backend", "check_circuits", "replay_schedule", "wave_digest",
    "VIOLATION_KINDS", "check_all",
    "DefaultScheduler", "RandomScheduler", "ReplayScheduler", "Schedule",
    "Scheduler", "normalize_params", "swap_schedule",
    "TraceRecord", "Tracer",
]
