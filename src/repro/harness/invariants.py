"""Protocol invariant checkers: what every trace must satisfy.

Each checker scans a recorded trace (see :mod:`repro.harness.trace`)
and returns a list of human-readable violation strings (empty = clean).
The invariants encode the synchronization protocol's safety arguments:

* **GVT monotonicity** — the commit horizon never moves backwards.
* **No commit before GVT** — a fossil-collection commit finalizes only
  events strictly below the GVT that round computed; an optimistic LP
  may never irrevocably commit work the protocol could still cancel.
* **Per-LP commit monotonicity** — the committed event sequence of each
  LP is non-decreasing in virtual time: the committed world is a legal
  sequential execution.
* **lt-period-3 phase legality** — the distributed VHDL cycle assigns
  each event kind a phase (``lt % 3``): signals accept assignments at
  phase 0, mature drivers at phase 1 and resolve/broadcast at phase 2;
  processes consume updates at phase 2 and resume (run/timeout) at
  phase 0.  An execution outside its legal phase means the kernel's
  Lamport phase clock was violated.
* **Rollback/antimessage accounting** — trace-visible rollbacks,
  squashed events and antimessages must balance the engine's own
  counters, and committed = executed - rolled back.
* **Antimessage lifecycle accounting** — every emitted negative refers
  to a positive that was really sent, never to one already committed,
  and annihilates (queued / processed / parked) before termination.
  This is the invariant that pins the orphaned-antimessage deadlock
  (PR 6): a withheld lazy cancellation whose positive commits can never
  annihilate.
* **Fabric retransmit = loss** — with the in-flight accounting of the
  reliable fabric, a retransmission happens exactly once per genuinely
  lost copy (crash-free runs): spurious retransmissions would mean the
  reliability layer pays for messages the network still intends to
  deliver.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.event import EventKind
from .trace import Tracer

#: Every violation category the harness can emit, in triage-priority
#: order (most protocol-specific first).  Each violation string starts
#: with its category followed by ``":"`` — failure triage
#: (:mod:`repro.campaign.triage`) relies on this prefix convention to
#: classify and deduplicate failures, so new checkers must register
#: their category here.
VIOLATION_KINDS: Tuple[str, ...] = (
    "protocol-error",          # engine raised (incl. diagnosed stalls)
    "gvt-monotonicity",
    "commit-before-gvt",
    "commit-order",
    "phase-legality",
    "anti-accounting",
    "rollback-accounting",
    "antimessage-accounting",
    "commit-accounting",
    "fabric-accounting",
    "fabric-balance",
    "oracle-diff",             # differential oracle (check.py)
    "digest-mismatch",
    "commit-count",
    "replay-digest",
    "replay-divergence",
)

#: Legal execution phases (lt % 3) per (LP class name, event kind).
#: See repro/core/vtime.py for the phase assignments of the distributed
#: VHDL cycle.
PHASE_LEGALITY: Dict[Tuple[str, int], Tuple[int, ...]] = {
    ("SignalLP", int(EventKind.SIGNAL_ASSIGN)): (0,),
    ("SignalLP", int(EventKind.SIGNAL_DRIVE)): (1,),
    ("SignalLP", int(EventKind.SIGNAL_RESOLVE)): (2,),
    ("ProcessLP", int(EventKind.SIGNAL_UPDATE)): (2,),
    ("ProcessLP", int(EventKind.PROCESS_RUN)): (0,),
    ("ProcessLP", int(EventKind.PROCESS_TIMEOUT)): (0,),
}


def check_gvt_monotonic(tracer: Tracer) -> List[str]:
    violations: List[str] = []
    last = None
    for rec in tracer.records:
        if rec.action != "gvt":
            continue
        gvt = rec.info.get("gvt")
        if last is not None and gvt is not None and gvt < last:
            violations.append(
                f"gvt-monotonicity: GVT moved backwards {last} -> {gvt}")
        if gvt is not None:
            last = gvt
    return violations


def check_commit_after_gvt(tracer: Tracer) -> List[str]:
    """Fossil-collection commits must be strictly below their GVT."""
    violations: List[str] = []
    for rec in tracer.records:
        if rec.action != "commit" or rec.info.get("ctx") != "fossil":
            continue
        gvt = rec.info.get("gvt")
        if gvt is not None and rec.time is not None \
                and not (rec.time < gvt):
            violations.append(
                f"commit-before-gvt: LP {rec.lp} fossil-committed "
                f"{rec.time} with GVT {gvt}")
    return violations


def check_commit_monotonic_per_lp(tracer: Tracer) -> List[str]:
    """Each LP's committed sequence is non-decreasing in virtual time.

    Crash-recovery runs are exempt: a recovered processor restores an
    earlier checkpoint and journal replay legitimately *re-commits*
    events the trace already saw, so the per-LP commit sequence appears
    to jump backwards at the crash point while the committed results
    stay correct (the differential oracle still holds them to the
    sequential engine — found by repro.campaign crash scenarios).
    """
    if tracer.count("crash"):
        return []
    violations: List[str] = []
    last: Dict[int, object] = {}
    for rec in tracer.records:
        if rec.action != "commit" or rec.time is None:
            continue
        prev = last.get(rec.lp)
        if prev is not None and rec.time < prev:
            violations.append(
                f"commit-order: LP {rec.lp} committed {rec.time} after "
                f"{prev} (ctx={rec.info.get('ctx')})")
        last[rec.lp] = rec.time
    return violations


def check_phase_legality(tracer: Tracer) -> List[str]:
    """Executions obey the lt-period-3 phase map of their LP kind."""
    violations: List[str] = []
    kinds = tracer.lp_kinds
    for rec in tracer.records:
        if rec.action != "exec" or rec.time is None:
            continue
        lp_kind = kinds.get(rec.lp)
        if lp_kind is None:
            continue
        event_kind = rec.info.get("kind")
        legal = PHASE_LEGALITY.get((lp_kind, event_kind))
        if legal is None:
            continue  # kinds outside the VHDL cycle carry no phase law
        phase = rec.time[1] % 3
        if phase not in legal:
            violations.append(
                f"phase-legality: {lp_kind} {rec.lp} executed "
                f"{EventKind(event_kind).name} at {rec.time} "
                f"(phase {phase}, legal {legal})")
    return violations


def check_rollback_balance(tracer: Tracer, stats) -> List[str]:
    """Trace-visible rollback/antimessage actions balance the stats.

    Crash-recovery runs are exempt, like :func:`check_anti_accounting`:
    a crash discards the victim's volatile counters back to its last
    checkpoint while the trace keeps every action it ever saw, so the
    two sides differ by exactly the replayed work.
    """
    if stats.crashes:
        return []
    violations: List[str] = []
    rollbacks = tracer.count("rollback")
    antis = tracer.count("anti")
    squashed = sum(r.info.get("squashed", 0) for r in tracer.of("rollback"))
    if rollbacks != stats.rollbacks:
        violations.append(
            f"rollback-accounting: trace saw {rollbacks} rollbacks, "
            f"stats counted {stats.rollbacks}")
    if antis != stats.antimessages:
        violations.append(
            f"antimessage-accounting: trace saw {antis} antimessages, "
            f"stats counted {stats.antimessages}")
    if squashed != stats.events_rolled_back:
        violations.append(
            f"rollback-accounting: trace squashed {squashed} events, "
            f"stats counted {stats.events_rolled_back}")
    expected = stats.events_executed - stats.events_rolled_back
    if stats.events_committed != expected:
        violations.append(
            f"commit-accounting: committed {stats.events_committed} != "
            f"executed {stats.events_executed} - rolled back "
            f"{stats.events_rolled_back}")
    return violations


def check_anti_accounting(tracer: Tracer, stats) -> List[str]:
    """Every emitted antimessage has a matching positive and annihilates.

    The safety argument behind lazy cancellation is an accounting one:
    a negative may only exist for a positive that was actually sent, the
    positive must never have been irrevocably committed (cancelling
    committed work cannot be rolled back — this is exactly the shape of
    the orphaned-antimessage deadlock fixed in this layer), and by the
    end of a completed run every negative must have annihilated against
    its positive in the queue (``ctx="queued"``), the processed log
    (``ctx="processed"``) or the parked-negatives table
    (``ctx="parked"``).  A negative still parked at termination is an
    orphan: its positive can no longer arrive.

    Crash-recovery runs are exempt: journal replay legitimately re-sends
    copies whose originals the trace already accounted, and the
    spent-anti machinery suppresses re-emissions the trace never sees
    (see docs/fault-model.md).
    """
    if stats.crashes:
        return []
    violations: List[str] = []
    sent = set()
    committed = set()
    antis = {}
    annihilated = {}
    for rec in tracer.records:
        eid = rec.info.get("eid")
        if eid is None:
            continue
        if rec.action == "send":
            sent.add(eid)
        elif rec.action == "commit":
            committed.add(eid)
            if eid in antis:
                violations.append(
                    f"anti-accounting: eid {eid} committed at {rec.time} "
                    f"after an antimessage was emitted for it "
                    f"(ctx={rec.info.get('ctx')})")
        elif rec.action == "anti":
            if eid not in sent:
                violations.append(
                    f"anti-accounting: antimessage for eid {eid} at "
                    f"{rec.time} without a recorded positive send")
            if eid in committed:
                violations.append(
                    f"anti-accounting: antimessage for eid {eid} at "
                    f"{rec.time} targets an already-committed event "
                    f"(ctx={rec.info.get('ctx')})")
            if eid in antis:
                violations.append(
                    f"anti-accounting: duplicate antimessage for eid "
                    f"{eid} (ctx={rec.info.get('ctx')})")
            antis[eid] = rec
        elif rec.action == "annihilate":
            if eid in annihilated:
                violations.append(
                    f"anti-accounting: eid {eid} annihilated twice "
                    f"({annihilated[eid]} then {rec.info.get('ctx')})")
            annihilated[eid] = rec.info.get("ctx")
    for eid, rec in antis.items():
        if eid not in annihilated:
            violations.append(
                f"anti-accounting: antimessage for eid {eid} "
                f"(t={rec.time}, ctx={rec.info.get('ctx')}) never "
                f"annihilated — orphaned negative at termination")
    for eid in annihilated:
        if eid not in antis:
            violations.append(
                f"anti-accounting: annihilation for eid {eid} "
                f"({annihilated[eid]}) without a recorded antimessage")
    return violations


def check_fabric_balance(tracer: Tracer, stats) -> List[str]:
    """Losses and retransmissions balance (crash-free runs exactly)."""
    violations: List[str] = []
    drops = tracer.count("drop")
    retransmits = tracer.count("retransmit")
    if drops != stats.dropped:
        violations.append(
            f"fabric-accounting: trace saw {drops} drops, stats counted "
            f"{stats.dropped}")
    if retransmits != stats.retransmitted:
        violations.append(
            f"fabric-accounting: trace saw {retransmits} retransmits, "
            f"stats counted {stats.retransmitted}")
    if stats.crashes == 0 and stats.retransmitted != stats.dropped:
        violations.append(
            f"fabric-balance: {stats.retransmitted} retransmissions != "
            f"{stats.dropped} losses on a crash-free run (spurious or "
            f"missing retransmits)")
    return violations


def check_all(tracer: Tracer, stats) -> List[str]:
    """Run every invariant checker; returns all violations found."""
    violations: List[str] = []
    violations += check_gvt_monotonic(tracer)
    violations += check_commit_after_gvt(tracer)
    violations += check_commit_monotonic_per_lp(tracer)
    violations += check_phase_legality(tracer)
    violations += check_rollback_balance(tracer, stats)
    violations += check_anti_accounting(tracer, stats)
    violations += check_fabric_balance(tracer, stats)
    return violations
