"""Conformance driver: schedule exploration with invariants + oracle.

This is the harness's top half.  One *check* of a circuit:

1. runs the **sequential oracle** once and digests its committed waves;
2. runs the modelled parallel machine under a sequence of controlled
   schedules — the canonical baseline, every DPOR-lite targeted swap of
   the baseline's choice points, then seeded-random exploration until
   the requested number of *distinct* interleavings (by decision
   signature) has been executed;
3. for every schedule, scans the recorded trace with the protocol
   invariant checkers and diffs the committed waves against the oracle.

Any violation, diff, or engine :class:`ProtocolError` fails the check,
and the failing schedule is **shrunk** (greedily reset decisions to the
canonical 0 while the failure persists, then drop trailing zeros) and
saved as a replayable JSON artifact — the repro recipe for the bug.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..analysis.diff import diff_results
from ..circuits.fsm import build_fsm
from ..circuits.random_logic import build_random
from ..circuits.vhdl_text import (build_fsm_from_vhdl,
                                  build_iir_from_vhdl,
                                  build_random_behavioral)
from ..parallel.engine import ProtocolError
from ..vhdl.kernel import SimulationResult, simulate, simulate_parallel
from .invariants import (check_all, check_commit_after_gvt,
                         check_commit_monotonic_per_lp,
                         check_gvt_monotonic, check_phase_legality)
from .schedule import (DefaultScheduler, RandomScheduler, ReplayScheduler,
                       Schedule, Scheduler, swap_schedule)
from .trace import Tracer

#: Known circuits: name -> builder(seed, **params) returning a fresh
#: Design.  Small on purpose — a check runs the circuit dozens of
#: times.  ``params`` are builder-specific overrides: the fuzzing
#: campaign varies the random-netlist topology axes (gates, registers,
#: stimulus_bits, cycles, fanout, delays — see
#: ``repro.circuits.random_logic.TOPOLOGY_SPACE``) and the fsm size
#: (cells, cycles); an empty params dict reproduces each builder's
#: historical defaults exactly.
CIRCUITS: Dict[str, Callable[..., object]] = {
    "fsm": lambda seed, **p: build_fsm(
        cells=p.get("cells", 4), cycles=p.get("cycles", 4)).design,
    "random": lambda seed, **p: build_random(
        seed, **{**dict(gates=10, registers=3, stimulus_bits=2,
                        cycles=3), **p}).design,
    # Full-size random logic (the generator's defaults): the circuit
    # class in which schedule exploration found the orphaned-
    # antimessage deadlock (seed 360472, dynamic protocol with lazy
    # cancellation — see tests/artifacts/).  Expensive; meant for
    # targeted checks and replay artifacts rather than exploration.
    "random-full": lambda seed, **p: build_random(seed, **p).design,
    # Frontend-elaborated circuits: their process bodies run through
    # the VHDL interpreter (or, under ``--exec compiled``, the closure
    # programs of repro.vhdl.compile), so these are the circuits on
    # which the exec-mode axis actually bites.
    "fsm-vhdl": lambda seed, **p: build_fsm_from_vhdl(
        cells=p.get("cells", 4), cycles=p.get("cycles", 4)),
    "iir-vhdl": lambda seed, **p: build_iir_from_vhdl(
        chans=p.get("chans", 2), sections=p.get("sections", 2),
        width=p.get("width", 8), cycles=p.get("cycles", 8)),
    "behav": lambda seed, **p: build_random_behavioral(
        seed, processes=p.get("processes", 3),
        cycles=p.get("cycles", 8)),
}


def build_circuit(circuit: str, seed: int,
                  params: Optional[Dict] = None):
    """Build a fresh Design for a registered circuit (shared by the
    CLI, the conformance checker and the fuzzing campaign)."""
    if circuit not in CIRCUITS:
        raise ValueError(f"unknown circuit {circuit!r}; choose from "
                         f"{sorted(CIRCUITS)}")
    return CIRCUITS[circuit](seed, **(params or {}))


#: Bounded LRU memo of circuit snapshots for artifact reuse, keyed by
#: the build *inputs* (circuit, seed, canonical params) — a hit is
#: exactly a call that would have rebuilt the same design.
_ARTIFACT_MEMO: Dict[str, object] = {}
_ARTIFACT_MEMO_CAP = 64
_ARTIFACT_LOCK = threading.Lock()


def circuit_artifact(circuit: str, seed: int,
                     params: Optional[Dict] = None):
    """Snapshot a registered circuit once; reuse it across runs.

    Returns the memoized :class:`~repro.vhdl.artifact.DesignArtifact`
    for ``(circuit, seed, params)``, building and snapshotting the
    design on first use.  Callers ``instantiate()`` a fresh runtime
    per run, so build cost is paid once per distinct configuration
    instead of once per run — the Checker runs one circuit dozens of
    times per exploration, and :func:`check_backend` runs it twice
    (oracle + backend) per differential check.
    """
    from ..vhdl.artifact import canonical_digest

    key = canonical_digest({"circuit": circuit, "seed": seed,
                            "params": params or {}})
    with _ARTIFACT_LOCK:
        artifact = _ARTIFACT_MEMO.pop(key, None)
        if artifact is not None:
            _ARTIFACT_MEMO[key] = artifact
            return artifact
    built = build_circuit(circuit, seed, params).artifact()
    with _ARTIFACT_LOCK:
        artifact = _ARTIFACT_MEMO.pop(key, built)
        _ARTIFACT_MEMO[key] = artifact
        while len(_ARTIFACT_MEMO) > _ARTIFACT_MEMO_CAP:
            _ARTIFACT_MEMO.pop(next(iter(_ARTIFACT_MEMO)))
    return artifact

#: Livelock guard for controlled runs (a pathological schedule must
#: fail loudly, not hang the exploration).
MAX_STEPS = 400_000


def wave_digest(result: SimulationResult) -> str:
    """Canonical digest of the committed waves (order-independent)."""
    digest = hashlib.sha256()
    for name in sorted(result.traces):
        digest.update(name.encode())
        for time, value in result.traces[name]:
            digest.update(f"{time[0]},{time[1]},{value!s};".encode())
    return digest.hexdigest()


@dataclass
class RunReport:
    """Outcome of one controlled schedule."""

    label: str
    signature: Tuple[Tuple[int, int], ...]
    decisions: List[int]
    ncands: List[int]
    violations: List[str]
    digest: Optional[str] = None
    #: Forensics of a diagnosed stall (repro.resilience.StallReport),
    #: when the run failed with one — triage folds its shape into the
    #: failure signature.
    stall_report: Optional[object] = None
    #: Content hash of the recorded protocol trace (empty when the run
    #: was not traced); see :meth:`repro.harness.trace.Tracer.fingerprint`.
    trace_fingerprint: str = ""
    #: The run's statistics (None when the engine raised without
    #: partial stats) — the campaign folds these with RunStats.merge.
    stats: Optional[object] = None

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class CheckReport:
    """Outcome of one circuit's exploration."""

    circuit: str
    circuit_seed: int
    processors: int
    protocol: str
    oracle_digest: str = ""
    runs: List[RunReport] = field(default_factory=list)
    #: Paths of shrunk failing-schedule artifacts written to disk.
    artifacts: List[str] = field(default_factory=list)

    @property
    def distinct(self) -> int:
        return len({run.signature for run in self.runs})

    @property
    def failures(self) -> List[RunReport]:
        return [run for run in self.runs if not run.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"FAIL ({len(self.failures)} bad)"
        return (f"{self.circuit}: {len(self.runs)} schedules, "
                f"{self.distinct} distinct interleavings, {status}")


class Checker:
    """Explores schedules of one circuit and checks each one."""

    def __init__(self, circuit: str, circuit_seed: int = 0,
                 processors: int = 2, protocol: str = "dynamic",
                 until: Optional[int] = None,
                 artifact_dir: Optional[str] = None,
                 lazy_cancellation: bool = False,
                 max_steps: int = MAX_STEPS,
                 watchdog: Optional[int] = None,
                 circuit_params: Optional[Dict] = None,
                 fault_plan=None, exec_mode: str = "interp",
                 reuse_artifact: bool = False) -> None:
        if circuit not in CIRCUITS:
            raise ValueError(f"unknown circuit {circuit!r}; choose from "
                             f"{sorted(CIRCUITS)}")
        self.circuit = circuit
        self.circuit_seed = circuit_seed
        self.circuit_params = dict(circuit_params or {})
        self.fault_plan = fault_plan
        #: Execution mode for the *checked* parallel runs.  The oracle
        #: always interprets: it is the reference semantics, so a
        #: compiled-mode check is simultaneously a differential
        #: compiler test (any lowering bug shows up as an oracle diff).
        self.exec_mode = exec_mode
        self.processors = processors
        self.protocol = protocol
        self.until = until
        self.artifact_dir = artifact_dir
        self.lazy_cancellation = lazy_cancellation
        self.max_steps = max_steps
        self.watchdog = watchdog
        #: Amortize the circuit build: snapshot once, instantiate a
        #: fresh runtime per schedule instead of rebuilding the design
        #: for every run of the exploration.
        self.reuse_artifact = reuse_artifact
        self._oracle: Optional[SimulationResult] = None
        self.oracle_digest = ""

    # ------------------------------------------------------------------
    # Primitive runs
    # ------------------------------------------------------------------
    def _design(self):
        if self.reuse_artifact:
            return circuit_artifact(self.circuit, self.circuit_seed,
                                    self.circuit_params).instantiate()
        return CIRCUITS[self.circuit](self.circuit_seed,
                                      **self.circuit_params)

    def oracle(self) -> SimulationResult:
        if self._oracle is None:
            self._oracle = simulate(self._design(), until=self.until)
            self.oracle_digest = wave_digest(self._oracle)
        return self._oracle

    def run_schedule(self, scheduler: Scheduler,
                     label: str) -> RunReport:
        """One controlled parallel run, fully checked."""
        tracer = Tracer()
        violations: List[str] = []
        stall_report = None
        result: Optional[SimulationResult] = None
        try:
            result = simulate_parallel(
                self._design(), self.processors, until=self.until,
                protocol=self.protocol, exec_mode=self.exec_mode,
                tracer=tracer,
                scheduler=scheduler, max_steps=self.max_steps,
                lazy_cancellation=self.lazy_cancellation,
                watchdog=self.watchdog, fault_plan=self.fault_plan)
        except ProtocolError as failure:
            violations.append(f"protocol-error: {failure}")
            stall_report = getattr(failure, "stall_report", None)
            stats = getattr(failure, "partial_stats", None)
            # The trace up to the failure still obeys the prefix-closed
            # safety laws — scan it so a run that e.g. committed out of
            # order *and then* stalled is triaged by the ordering bug,
            # not by its secondary liveness symptom.  (The stats-balance
            # and termination-scoped invariants assume a completed run
            # and are skipped here.)
            violations.extend(check_gvt_monotonic(tracer))
            violations.extend(check_commit_after_gvt(tracer))
            violations.extend(check_commit_monotonic_per_lp(tracer))
            violations.extend(check_phase_legality(tracer))
        else:
            stats = None
        digest = None
        if result is not None:
            stats = result.stats
            violations.extend(check_all(tracer, result.stats))
            report = diff_results(self.oracle(), result)
            if not report.identical:
                violations.append(
                    "oracle-diff: committed waves differ from the "
                    f"sequential engine ({report.summary()})")
            digest = wave_digest(result)
        if isinstance(scheduler, ReplayScheduler) \
                and scheduler.divergences:
            violations.append(
                f"replay-divergence: {scheduler.divergences} decision "
                f"points did not match the recording")
        return RunReport(label=label, signature=scheduler.signature,
                         decisions=scheduler.decisions,
                         ncands=scheduler.ncands,
                         violations=violations, digest=digest,
                         stall_report=stall_report,
                         trace_fingerprint=tracer.fingerprint(),
                         stats=stats)

    # ------------------------------------------------------------------
    # Exploration
    # ------------------------------------------------------------------
    def explore(self, schedules: int = 25, seed: int = 0) -> CheckReport:
        """Run >= ``schedules`` distinct interleavings (if they exist).

        Order: canonical baseline, DPOR-lite targeted swaps (first
        divergence at every multi-candidate choice point), then
        seeded-random schedules until the distinct-signature target is
        met or an attempt budget runs out.
        """
        report = CheckReport(circuit=self.circuit,
                             circuit_seed=self.circuit_seed,
                             processors=self.processors,
                             protocol=self.protocol)
        self.oracle()
        report.oracle_digest = self.oracle_digest
        seen: Set[Tuple[Tuple[int, int], ...]] = set()

        def note(run: RunReport) -> None:
            report.runs.append(run)
            seen.add(run.signature)
            if not run.ok:
                self._dump_failure(run, report)

        baseline = self.run_schedule(DefaultScheduler(), "baseline")
        note(baseline)
        # DPOR-lite: diverge once at every choice point of the baseline.
        # Capped at half the budget — the other half goes to seeded
        # random schedules, which diverge at *every* point at once and
        # catch ordering bugs a single first divergence can mask (an
        # optimistic engine self-heals one missequenced event through
        # the very rollback machinery under test).
        swap_target = max(1 + schedules // 2, schedules - 16)
        for point, (ncand, _chosen) in enumerate(baseline.signature):
            if len(seen) >= swap_target:
                break
            for alternative in range(1, ncand):
                if len(seen) >= swap_target:
                    break
                decisions = swap_schedule(point, alternative)
                run = self.run_schedule(
                    ReplayScheduler(decisions),
                    f"swap@{point}={alternative}")
                note(run)
        # Seeded-random exploration up to the distinct target.
        attempts = 0
        budget = max(4 * schedules, schedules + 16)
        rng_seed = seed
        while len(seen) < schedules and attempts < budget:
            attempts += 1
            rng_seed += 1
            run = self.run_schedule(RandomScheduler(rng_seed),
                                    f"random#{rng_seed}")
            note(run)
        return report

    # ------------------------------------------------------------------
    # Failure artifacts
    # ------------------------------------------------------------------
    def _still_fails(self, decisions: List[int]) -> bool:
        """Does this decision list still reproduce a *real* failure?

        Replay divergences are excluded: shrinking edits the decision
        list, so clamped choices are expected noise, and an artifact
        that only diverges (without violating an invariant or the
        oracle) is not a reproduction of the bug.
        """
        run = self.run_schedule(ReplayScheduler(decisions), "shrink-probe")
        return any(not v.startswith("replay-divergence")
                   for v in run.violations)

    def shrink(self, decisions: List[int],
               budget: int = 48) -> List[int]:
        """Delta-debugging-style minimization of a failing decision list.

        Three passes, each verified by re-running the schedule:

        1. binary-search the shortest failing *prefix* (the replayer
           pads with the canonical 0 after exhaustion);
        2. reset chunks of decisions to 0, halving the chunk size;
        3. drop trailing zeros.

        Budget-capped: each probe is one full controlled run.
        """
        current = [d for d in decisions]
        # Pass 1: shortest failing prefix.
        lo, hi = 0, len(current)
        while lo < hi and budget > 0:
            mid = (lo + hi) // 2
            budget -= 1
            if self._still_fails(current[:mid]):
                hi = mid
            else:
                lo = mid + 1
        current = current[:hi]
        # Pass 2: zero out chunks, halving the chunk size.
        chunk = max(1, len(current) // 2)
        while chunk >= 1 and budget > 0:
            start = 0
            while start < len(current) and budget > 0:
                if any(current[start:start + chunk]):
                    trial = list(current)
                    trial[start:start + chunk] = [0] * len(
                        trial[start:start + chunk])
                    budget -= 1
                    if self._still_fails(trial):
                        current = trial
                start += chunk
            if chunk == 1:
                break
            chunk //= 2
        while current and current[-1] == 0:
            current.pop()
        return current

    def _dump_failure(self, run: RunReport,
                      report: CheckReport) -> None:
        if self.artifact_dir is None:
            return
        os.makedirs(self.artifact_dir, exist_ok=True)
        # Only the first artifact pays for shrinking (it is the repro
        # recipe); later failures are saved verbatim.
        decisions = self.shrink(run.decisions) if not report.artifacts \
            else list(run.decisions)
        schedule = Schedule(
            circuit=self.circuit, circuit_seed=self.circuit_seed,
            processors=self.processors, protocol=self.protocol,
            decisions=decisions, label=run.label,
            wave_digest=self.oracle_digest,
            violations=run.violations,
            lazy_cancellation=self.lazy_cancellation,
            circuit_params=self.circuit_params,
            fault_plan=(self.fault_plan.to_dict()
                        if self.fault_plan is not None else None),
            exec_mode=self.exec_mode)
        index = len(report.artifacts)
        path = os.path.join(self.artifact_dir,
                            f"fail-{self.circuit}-{index}.json")
        schedule.save(path)
        report.artifacts.append(path)

    # ------------------------------------------------------------------
    # Record / replay
    # ------------------------------------------------------------------
    def record(self) -> Tuple[Schedule, RunReport]:
        """Run the canonical schedule and package it as an artifact."""
        run = self.run_schedule(DefaultScheduler(), "recorded")
        schedule = Schedule(
            circuit=self.circuit, circuit_seed=self.circuit_seed,
            processors=self.processors, protocol=self.protocol,
            decisions=run.decisions, ncands=run.ncands,
            label="recorded", wave_digest=run.digest,
            violations=run.violations,
            lazy_cancellation=self.lazy_cancellation,
            circuit_params=self.circuit_params,
            fault_plan=(self.fault_plan.to_dict()
                        if self.fault_plan is not None else None),
            exec_mode=self.exec_mode)
        return schedule, run


def replay_schedule(schedule: Schedule,
                    until: Optional[int] = None,
                    exec_mode: Optional[str] = None) -> RunReport:
    """Re-execute a schedule artifact and verify it reproduces itself.

    ``exec_mode`` overrides the artifact's recorded mode — replaying a
    corpus under ``"compiled"`` re-proves every archived bug repro (and
    its wave digest) against the closure programs.
    """
    from ..fabric.plan import plan_from_dict

    checker = Checker(schedule.circuit,
                      circuit_seed=schedule.circuit_seed,
                      processors=schedule.processors,
                      protocol=schedule.protocol, until=until,
                      lazy_cancellation=schedule.lazy_cancellation,
                      circuit_params=schedule.circuit_params,
                      fault_plan=(plan_from_dict(schedule.fault_plan)
                                  if schedule.fault_plan else None),
                      exec_mode=(schedule.exec_mode if exec_mode is None
                                 else exec_mode))
    run = checker.run_schedule(schedule.replayer(), "replay")
    if schedule.wave_digest and run.digest \
            and run.digest != schedule.wave_digest:
        run.violations.append(
            f"replay-digest: waves {run.digest[:12]}... differ from the "
            f"recorded {schedule.wave_digest[:12]}...")
    return run


def check_circuits(circuits: List[str], schedules: int = 25,
                   seed: int = 0, circuit_seed: int = 0,
                   processors: int = 2, protocol: str = "dynamic",
                   artifact_dir: Optional[str] = None,
                   lazy_cancellation: bool = False,
                   watchdog: Optional[int] = None,
                   circuit_params: Optional[Dict] = None,
                   exec_mode: str = "interp") -> List[CheckReport]:
    """Explore every named circuit; the CLI entry point's core."""
    reports = []
    for circuit in circuits:
        checker = Checker(circuit, circuit_seed=circuit_seed,
                          processors=processors, protocol=protocol,
                          artifact_dir=artifact_dir,
                          lazy_cancellation=lazy_cancellation,
                          watchdog=watchdog,
                          circuit_params=circuit_params,
                          exec_mode=exec_mode)
        reports.append(checker.explore(schedules=schedules, seed=seed))
    return reports


def check_backend(circuit: str, backend: str, protocol: str,
                  processors: int = 2, circuit_seed: int = 0,
                  until: Optional[int] = None,
                  circuit_params: Optional[Dict] = None,
                  exec_mode: str = "interp",
                  reuse_artifact: bool = False,
                  **backend_kwargs) -> RunReport:
    """Differential oracle for the *real* backends (threads / procs /
    dist).

    The schedule-exploration machinery above drives the modelled
    machine, whose interleavings the harness controls.  The threaded,
    multiprocess and distributed backends schedule for real — the OS
    (and for dist, the network) picks the interleaving — so the
    strongest repeatable check is differential:
    run the circuit once on the sequential oracle, once on the real
    backend, and require **byte-identical committed waves** (same
    digest, empty diff).  Every invocation exercises whatever
    interleaving the machine happened to produce, so repeated CI runs
    accumulate schedule coverage for free.

    Returns a :class:`RunReport` whose ``violations`` list is empty on
    success; ``decisions``/``ncands`` are empty (no controlled
    schedule exists for a real run).
    """
    if reuse_artifact:
        artifact = circuit_artifact(circuit, circuit_seed,
                                    circuit_params)
        fresh = artifact.instantiate
    else:
        def fresh():
            return build_circuit(circuit, circuit_seed, circuit_params)
    oracle = simulate(fresh(), until=until)
    oracle_digest = wave_digest(oracle)
    label = f"{backend}/{protocol}/{exec_mode}"
    violations: List[str] = []
    stall_report = None
    result: Optional[SimulationResult] = None
    try:
        result = simulate_parallel(
            fresh(), processors, until=until,
            protocol=protocol, backend=backend, exec_mode=exec_mode,
            **backend_kwargs)
    except ProtocolError as failure:
        violations.append(f"protocol-error: {failure}")
        stall_report = getattr(failure, "stall_report", None)
    digest = None
    stats = result.stats if result is not None else None
    if result is not None:
        report = diff_results(oracle, result)
        if not report.identical:
            violations.append(
                "oracle-diff: committed waves differ from the "
                f"sequential engine ({report.summary()})")
        digest = wave_digest(result)
        if digest != oracle_digest:
            violations.append(
                f"digest-mismatch: {digest[:12]}... vs oracle "
                f"{oracle_digest[:12]}...")
        if result.stats.events_committed != oracle.stats.events_committed:
            violations.append(
                f"commit-count: {result.stats.events_committed} vs "
                f"oracle {oracle.stats.events_committed}")
    return RunReport(label=label, signature=(), decisions=[],
                     ncands=[], violations=violations, digest=digest,
                     stall_report=stall_report, stats=stats)
