"""Structured protocol traces: the observable record of one run.

The conformance harness treats the synchronization protocol as a black
box that emits a sequence of *protocol-relevant actions*: sends,
deliveries, executions, rollbacks, antimessages, GVT advances,
checkpoints, commits, and fabric-level losses/retransmissions.  The
engines expose these through a **near-zero-cost hook interface**: every
instrumented object carries a ``tracer`` attribute that defaults to
``None``, and each hook site is a single ``if self.tracer is not None``
guard — an attribute load and an identity test, nothing else, so
un-traced runs pay (almost) nothing.

Hook sites (all added by this subsystem):

* :meth:`repro.core.lp.LogicalProcess.send`        — ``send``
* :meth:`repro.parallel.engine.Processor.deliver`  — ``recv``
* :meth:`repro.parallel.engine.Processor._execute` — ``exec``,
  ``checkpoint`` (state snapshot), ``commit`` (conservative)
* :meth:`repro.parallel.engine.Processor._rollback` — ``rollback``,
  ``anti``
* lazy-cancellation flush paths                    — ``anti``
* annihilation sites (``_deliver_positive`` /
  ``_deliver_negative``)                           — ``annihilate``
  (``ctx`` says where the match was found: ``"queued"``,
  ``"processed"`` or ``"parked"``)
* :meth:`repro.parallel.engine.Processor.fossil_collect` /
  ``_commit_log``                                  — ``commit``
* :meth:`repro.parallel.machine.ParallelMachine._gvt_round` — ``gvt``
* :class:`repro.fabric.transport.ReliableFabric`   — ``drop``,
  ``retransmit``, ``checkpoint`` (durable), ``crash``

Event-lifecycle records (``send``/``recv``/``exec``/``commit``/``anti``
/``annihilate``) carry the event's identity as ``eid=(src_lp, seq)`` so
checkers can follow one message through its whole life — the
antimessage-accounting invariant is built entirely on this.

A trace is a plain list of :class:`TraceRecord`; the invariant checkers
in :mod:`repro.harness.invariants` scan it linearly.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Tuple


class TraceRecord(NamedTuple):
    """One protocol-relevant action.

    ``time`` is the virtual time the action concerns (``None`` for
    purely physical actions such as durable checkpoints); ``info``
    carries action-specific fields (see :mod:`repro.harness.invariants`
    for what each checker reads).
    """

    action: str
    #: Processor index (-1 when not processor-scoped).
    proc: int
    #: LP id (-1 when not LP-scoped).
    lp: int
    #: Virtual time concerned, as a (pt, lt)-comparable value, or None.
    time: Any
    info: Dict[str, Any]


class Tracer:
    """Collects :class:`TraceRecord` objects from every hook site.

    Also keeps an LP-kind registry (``lp_kinds``): the machine registers
    every LP's class name at attach time, which the phase-legality
    checker needs to know which events are legal at which ``lt % 3``
    phase.
    """

    __slots__ = ("records", "lp_kinds")

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        #: lp_id -> LP class name (e.g. "SignalLP", "ProcessLP").
        self.lp_kinds: Dict[int, str] = {}

    def record(self, action: str, proc: int = -1, lp: int = -1,
               time: Any = None, **info: Any) -> None:
        self.records.append(TraceRecord(action, proc, lp, time, info))

    def register_lp(self, lp) -> None:
        self.lp_kinds[lp.lp_id] = type(lp).__name__

    # ------------------------------------------------------------------
    # Convenience views (used by checkers, tests and reports)
    # ------------------------------------------------------------------
    def count(self, action: str) -> int:
        return sum(1 for r in self.records if r.action == action)

    def of(self, action: str) -> List[TraceRecord]:
        return [r for r in self.records if r.action == action]

    def __len__(self) -> int:
        return len(self.records)

    def summary(self) -> str:
        counts: Dict[str, int] = {}
        for r in self.records:
            counts[r.action] = counts.get(r.action, 0) + 1
        parts = [f"{k}={v}" for k, v in sorted(counts.items())]
        return " ".join(parts) if parts else "empty trace"

    def fingerprint(self) -> str:
        """Content hash of the trace's protocol-relevant shape.

        Hashes the full ``(action, proc, lp, time)`` sequence — enough
        to distinguish any two interleavings the invariants could tell
        apart, while staying independent of ``info`` payload details
        (which carry engine-internal counters).  Failure triage
        (:mod:`repro.campaign.triage`) folds this into artifact names so
        distinct shrunk reproductions never collide on disk.
        """
        import hashlib
        digest = hashlib.sha256()
        for r in self.records:
            digest.update(
                f"{r.action}|{r.proc}|{r.lp}|{time_tuple(r.time)};"
                .encode())
        return digest.hexdigest()


def time_tuple(time: Any) -> Optional[Tuple[int, int]]:
    """Normalize a VirtualTime-like value to a plain (pt, lt) tuple."""
    if time is None:
        return None
    return (time[0], time[1])
