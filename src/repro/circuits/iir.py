"""The Gray–Markel cascaded lattice IIR filter (paper Figs. 7/8).

The paper's second workload is a Gray–Markel cascaded lattice IIR filter
described at behavioural and gate level; the gate-level model has ~1708
LPs (Fig. 8: "Gray Markel IIR ... Gate Level Filter ... LPs").

The lattice recursion per section ``i`` (reflection coefficient ``k_i``,
all arithmetic modulo ``2**width`` so that gate level and behavioural
level agree bit-for-bit):

    f_{i-1} = f_i  - k_i * g_{i-1}^(z-1)
    g_i     = k_i * f_{i-1} + g_{i-1}^(z-1)

with ``g_0 = f_0`` and a ``z^-1`` register on every bottom-path tap.  The
filter input enters at ``f_N``; the all-pole output is ``f_0``.

At gate level every multiplier is an array multiplier, every adder a
ripple-carry chain, and every ``z^-1`` a bank of D flip-flops — the
multiplier dominates the LP count exactly as in real gate-level netlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.model import SyncMode
from ..core.vtime import NS
from ..vhdl.design import Design
from ..vhdl.process import ClockedBody
from ..vhdl.values import SL_0, sl
from .bodies import BusPlayer
from .gates import Netlist, Wire, bus_value

#: Defaults sized to the paper: 2 sections x 8-bit ≈ 1.7k LPs.
DEFAULT_SECTIONS = 2
DEFAULT_WIDTH = 8
DEFAULT_COEFFS = (3, 251)  # k1=3, k2=-5 mod 256: a mildly resonant pair.

#: Default stimulus: an impulse followed by a short burst.
DEFAULT_SAMPLES = (64, 0, 0, 0, 0, 16, 240, 16, 0, 0, 0, 0, 0, 0, 0, 0)


@dataclass
class IirCircuit:
    """Handle to a built IIR benchmark."""

    design: Design
    sections: int
    width: int
    level: str
    #: Output bus (f_0), LSB first.
    output: List[Wire]

    @property
    def lp_count(self) -> int:
        return self.design.lp_count

    def output_value(self) -> int:
        return bus_value(self.output)


def build_iir(sections: int = DEFAULT_SECTIONS,
              width: int = DEFAULT_WIDTH,
              coefficients: Optional[Sequence[int]] = None,
              samples: Sequence[int] = DEFAULT_SAMPLES,
              level: str = "gate",
              period_fs: Optional[int] = None,
              extra_cycles: int = 4) -> IirCircuit:
    """Build the lattice filter fed by ``samples`` (one per clock).

    The default clock period is derived from a generous bound on the
    gate-level combinational critical path (the cascade must settle
    between edges for the registered output to be meaningful).
    """
    if level not in ("gate", "behavioral"):
        raise ValueError(f"unknown level {level!r}")
    if period_fs is None:
        period_fs = 2 * (sections * width * 30 + 100) * NS
    if coefficients is None:
        coefficients = [DEFAULT_COEFFS[i % len(DEFAULT_COEFFS)]
                        for i in range(sections)]
    if len(coefficients) != sections:
        raise ValueError("need one reflection coefficient per section")
    mask = (1 << width) - 1
    coefficients = [k & mask for k in coefficients]
    design = Design(f"iir_{level}_{sections}x{width}")
    clk = design.signal("clk", SL_0)
    cycles = len(samples) + extra_cycles
    design.clock("clkgen", clk, period_fs=period_fs, cycles=cycles)
    net = Netlist(design, delay_fs=1 * NS)
    x_bus = _sample_feeder(design, net, clk, samples, width)
    if level == "gate":
        output = _build_gate(net, clk, x_bus, coefficients, width)
    else:
        output = _build_behavioral(design, clk, x_bus, coefficients, width)
    return IirCircuit(design=design, sections=sections, width=width,
                      level=level, output=output)


def _sample_feeder(design: Design, net: Netlist, clk: Wire,
                   samples: Sequence[int], width: int) -> List[Wire]:
    """A clocked ROM that plays ``samples`` on an input bus, then zeros."""
    x_bus = net.bus("x", width, traced=False)
    feed = BusPlayer(playlist=tuple(samples),
                     out_ids=tuple(w.lp_id for w in x_bus))
    body = ClockedBody(clock=clk, inputs=[], outputs=x_bus, fn=feed,
                       initial_state={"i": 0})
    design.process("feeder", body, mode=SyncMode.CONSERVATIVE)
    return x_bus


def _build_gate(net: Netlist, clk: Wire, x_bus: List[Wire],
                coefficients: Sequence[int], width: int) -> List[Wire]:
    sections = len(coefficients)
    f = x_bus  # f_N enters the cascade
    g_delayed: List[tuple] = []
    # Build top path N..1 first, collecting each section's delayed g tap;
    # the bottom path g_i needs f_{i-1}, so construction is interleaved.
    for i in range(sections - 1, -1, -1):
        k = coefficients[i]
        k_bus = net.constant(k, width)
        gd = net.bus(f"s{i}.gd", width)  # z^-1 output (register bank)
        kg = net.multiplier(k_bus, gd)
        f = net.subtractor(f, kg)  # f_{i-1}
        kf = net.multiplier(k_bus, f)
        g_i = net.ripple_adder(kf, gd)
        g_delayed.append((gd, g_i))
    f0 = f
    # g_0 = f_0; register each g_{i-1} into the next section's gd.
    # taps were appended for i = N-1 .. 0; taps[-1] belongs to section 0
    # and must latch g_{-1} = f_0... in the Gray-Markel structure the
    # bottom-path delay of section i holds g_{i-1}; for section 0 that is
    # g_0 = f_0 itself.
    bottom_inputs = [f0] + [pair[1] for pair in reversed(g_delayed)][:-1]
    for (gd, _g), src in zip(reversed(g_delayed), bottom_inputs):
        net.register(clk, src, gd)
    # Latch the output so protocol runs have a stable committed value.
    y = net.bus("y", width, traced=True)
    net.register(clk, f0, y)
    return y


@dataclass(frozen=True)
class LatticeStep:
    """Behavioural lattice body (module-level callable: picklable)."""

    x_ids: tuple
    y_ids: tuple
    ks: tuple
    mask: int

    def __call__(self, state: Dict, inputs: Dict, api) -> Dict:
        x = 0
        for b, sig in enumerate(self.x_ids):
            if inputs[sig].to_bool():
                x |= 1 << b
        gd = state["gd"]  # delayed bottom-path values, index = section
        ks, mask = self.ks, self.mask
        f = x
        new_g: List[int] = [0] * len(ks)
        for i in range(len(ks) - 1, -1, -1):
            f = (f - ks[i] * gd[i]) & mask
            new_g[i] = (ks[i] * f + gd[i]) & mask
        f0 = f
        # Shift the bottom path: section i latches g_{i-1}; g_0 = f_0.
        state["gd"] = tuple(
            f0 if i == 0 else new_g[i - 1] for i in range(len(ks)))
        state["y"] = f0
        return {self.y_ids[b]: sl((f0 >> b) & 1)
                for b in range(len(self.y_ids))}


def _build_behavioral(design: Design, clk: Wire, x_bus: List[Wire],
                      coefficients: Sequence[int],
                      width: int) -> List[Wire]:
    mask = (1 << width) - 1
    y_bus = [design.signal(f"y[{b}]", SL_0, traced=True)
             for b in range(width)]
    step = LatticeStep(x_ids=tuple(w.lp_id for w in x_bus),
                       y_ids=tuple(w.lp_id for w in y_bus),
                       ks=tuple(coefficients), mask=mask)
    body = ClockedBody(clock=clk, inputs=x_bus, outputs=y_bus, fn=step,
                       initial_state={"gd": tuple([0] * len(step.ks)),
                                      "y": 0})
    design.process("lattice", body, mode=SyncMode.CONSERVATIVE)
    return y_bus


def reference_response(samples: Sequence[int],
                       coefficients: Sequence[int],
                       width: int = DEFAULT_WIDTH,
                       extra_cycles: int = 4) -> List[int]:
    """Pure-Python reference of the registered output per clock cycle."""
    mask = (1 << width) - 1
    ks = [k & mask for k in coefficients]
    gd = [0] * len(ks)
    outputs: List[int] = []
    stream = list(samples) + [0] * extra_cycles
    for x in stream:
        f = x & mask
        new_g = [0] * len(ks)
        for i in range(len(ks) - 1, -1, -1):
            f = (f - ks[i] * gd[i]) & mask
            new_g[i] = (ks[i] * f + gd[i]) & mask
        f0 = f
        gd = [f0 if i == 0 else new_g[i - 1] for i in range(len(ks))]
        outputs.append(f0)
    return outputs
