"""The DCT processor benchmark (paper Figs. 9/10).

The paper's Fig. 9 shows the DCT processor as an array of
multiply-accumulate cells: row ``i`` streams input samples ``a(i,j)``
past cells that multiply them by coefficients ``c(j,k)`` and accumulate
``(ac)(i,k) = sum_j a(i,j) * c(j,k)`` — a matrix product, which is what a
row/column DCT computes.

We reconstruct it as an ``n x n`` array of MAC cells:

* a *feeder* process per row plays the row's samples, one per clock;
* a *coefficient generator* per column plays ``c(j,k)`` (the column of
  the coefficient matrix) in step with the feeders;
* cell ``(i,k)`` multiplies the row sample by the column coefficient and
  adds it into an accumulator register each clock.

At gate level the multiplier/adder/accumulator of every cell are built
from gates (array multiplier + ripple adder + DFF bank), giving the
~1.8k-LP model of the paper's gate-level DCT; the behavioural level
replaces each cell with one clocked process.  All arithmetic is modulo
``2**width`` so both levels agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.model import SyncMode
from ..core.vtime import NS
from ..vhdl.design import Design
from ..vhdl.process import ClockedBody
from ..vhdl.values import SL_0, sl
from .bodies import BusPlayer
from .gates import Netlist, Wire, bus_value

#: Defaults sized toward the paper's gate-level DCT (~1792 LPs):
#: a 4x4 array of 4-bit MAC cells.
DEFAULT_N = 4
DEFAULT_WIDTH = 4

#: A 4x4 integer "DCT-like" coefficient matrix (signed values taken
#: modulo 2**width at build time).  The exact values are irrelevant to
#: the protocol study; rows with mixed signs mimic the cosine kernel.
DEFAULT_COEFFS = (
    (1, 1, 1, 1),
    (2, 1, -1, -2),
    (1, -1, -1, 1),
    (1, -2, 2, -1),
)

#: Default input block (row-major), values mod 2**width.
DEFAULT_BLOCK = (
    (3, 1, 4, 1),
    (5, 9, 2, 6),
    (5, 3, 5, 8),
    (9, 7, 9, 3),
)


@dataclass
class DctCircuit:
    """Handle to a built DCT benchmark."""

    design: Design
    n: int
    width: int
    level: str
    #: Accumulator output buses, indexed ``[row][col]`` (LSB first).
    accumulators: List[List[List[Wire]]]

    @property
    def lp_count(self) -> int:
        return self.design.lp_count

    def accumulator_values(self) -> List[List[int]]:
        return [[bus_value(bus) for bus in row]
                for row in self.accumulators]


def build_dct(n: int = DEFAULT_N, width: int = DEFAULT_WIDTH,
              coefficients: Optional[Sequence[Sequence[int]]] = None,
              block: Optional[Sequence[Sequence[int]]] = None,
              level: str = "gate",
              period_fs: Optional[int] = None,
              extra_cycles: int = 2) -> DctCircuit:
    """Build the MAC-array DCT processor."""
    if level not in ("gate", "behavioral"):
        raise ValueError(f"unknown level {level!r}")
    coefficients = coefficients if coefficients is not None \
        else DEFAULT_COEFFS
    block = block if block is not None else DEFAULT_BLOCK
    if len(coefficients) < n or len(block) < n:
        raise ValueError("coefficient matrix / block smaller than n")
    mask = (1 << width) - 1
    coeffs = [[coefficients[j][k] & mask for k in range(n)]
              for j in range(n)]
    samples = [[block[i][j] & mask for j in range(n)] for i in range(n)]
    if period_fs is None:
        period_fs = 2 * (width * 40 + 100) * NS
    design = Design(f"dct_{level}_{n}x{n}w{width}")
    clk = design.signal("clk", SL_0)
    design.clock("clkgen", clk, period_fs=period_fs,
                 cycles=n + 1 + extra_cycles)
    net = Netlist(design, delay_fs=1 * NS)
    a_buses = [_player(design, net, clk, f"a{i}",
                       [samples[i][j] for j in range(n)], width)
               for i in range(n)]
    c_buses = [_player(design, net, clk, f"c{k}",
                       [coeffs[j][k] for j in range(n)], width)
               for k in range(n)]
    if level == "gate":
        accs = _build_gate(net, clk, a_buses, c_buses, n, width)
    else:
        accs = _build_behavioral(design, clk, a_buses, c_buses, n, width)
    return DctCircuit(design=design, n=n, width=width, level=level,
                      accumulators=accs)


def _player(design: Design, net: Netlist, clk: Wire, name: str,
            values: Sequence[int], width: int) -> List[Wire]:
    """A clocked process playing ``values`` on a bus, then zeros."""
    bus = net.bus(name, width)
    play = BusPlayer(playlist=tuple(values),
                     out_ids=tuple(w.lp_id for w in bus))
    body = ClockedBody(clock=clk, inputs=[], outputs=bus, fn=play,
                       initial_state={"i": 0})
    design.process(f"{name}.player", body, mode=SyncMode.CONSERVATIVE)
    return bus


def _build_gate(net: Netlist, clk: Wire, a_buses: List[List[Wire]],
                c_buses: List[List[Wire]], n: int,
                width: int) -> List[List[List[Wire]]]:
    accs: List[List[List[Wire]]] = []
    for i in range(n):
        row: List[List[Wire]] = []
        for k in range(n):
            product = net.multiplier(a_buses[i], c_buses[k])
            acc_q = net.bus(f"acc{i}{k}", width,
                            traced=False)
            total = net.ripple_adder(product, acc_q)
            net.register(clk, total, acc_q, name=f"acc{i}{k}.reg")
            row.append(acc_q)
        accs.append(row)
    return accs


@dataclass(frozen=True)
class MacStep:
    """Behavioural MAC-cell body (module-level callable: picklable)."""

    a_ids: tuple
    c_ids: tuple
    out_ids: tuple
    mask: int

    def __call__(self, state: Dict, inputs: Dict, api) -> Dict:
        a = 0
        for b, sig in enumerate(self.a_ids):
            if inputs[sig].to_bool():
                a |= 1 << b
        c = 0
        for b, sig in enumerate(self.c_ids):
            if inputs[sig].to_bool():
                c |= 1 << b
        state["acc"] = (state["acc"] + a * c) & self.mask
        return {self.out_ids[b]: sl((state["acc"] >> b) & 1)
                for b in range(len(self.out_ids))}


def _build_behavioral(design: Design, clk: Wire,
                      a_buses: List[List[Wire]],
                      c_buses: List[List[Wire]], n: int,
                      width: int) -> List[List[List[Wire]]]:
    mask = (1 << width) - 1
    accs: List[List[List[Wire]]] = []
    for i in range(n):
        row: List[List[Wire]] = []
        for k in range(n):
            bus = [design.signal(f"acc{i}{k}[{b}]", SL_0)
                   for b in range(width)]
            mac = MacStep(a_ids=tuple(w.lp_id for w in a_buses[i]),
                          c_ids=tuple(w.lp_id for w in c_buses[k]),
                          out_ids=tuple(w.lp_id for w in bus),
                          mask=mask)
            body = ClockedBody(clock=clk,
                               inputs=list(a_buses[i]) + list(c_buses[k]),
                               outputs=bus, fn=mac,
                               initial_state={"acc": 0})
            design.process(f"mac{i}{k}", body,
                           mode=SyncMode.CONSERVATIVE)
            row.append(bus)
        accs.append(row)
    return accs


def reference_product(n: int = DEFAULT_N, width: int = DEFAULT_WIDTH,
                      coefficients: Optional[Sequence[Sequence[int]]] = None,
                      block: Optional[Sequence[Sequence[int]]] = None,
                      ) -> List[List[int]]:
    """The matrix product the array computes, modulo ``2**width``."""
    coefficients = coefficients if coefficients is not None \
        else DEFAULT_COEFFS
    block = block if block is not None else DEFAULT_BLOCK
    mask = (1 << width) - 1
    out = []
    for i in range(n):
        row = []
        for k in range(n):
            acc = 0
            for j in range(n):
                acc = (acc + (block[i][j] & mask)
                       * (coefficients[j][k] & mask)) & mask
            row.append(acc)
        out.append(row)
    return out
