"""Random synchronous netlists for property-based testing.

The equivalence invariant — every protocol at every processor count
produces exactly the traces of the sequential reference — is checked on
randomly generated circuits.  The generator produces arbitrary DAGs of
gates (mixed zero and non-zero delays, so both delta cycles and timed
propagation occur) with register feedback loops and a clocked stimulus
player, all checkpointable so the optimistic protocol is fully exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.model import SyncMode
from ..core.vtime import NS
from ..vhdl.design import Design
from ..vhdl.process import ClockedBody
from ..vhdl.values import SL_0, sl
from .bodies import BusPlayer
from .gates import Netlist, Wire

_GATE_KINDS = ("and", "or", "xor", "nand", "nor", "xnor", "not", "buf")

#: Default gate-delay palette: zero-delay (delta cycles) and timed
#: propagation mixed, as the original generator always produced.
DEFAULT_DELAYS: Tuple[int, ...] = (0, 0, 1 * NS, 3 * NS)

#: The parameterized topology space the fuzzing campaign and the
#: property tests draw from (one space, two samplers — see
#: ``tests/strategies.py`` and :mod:`repro.campaign.axes`).  Every axis
#: is a discrete choice tuple so a seeded ``random.Random`` and a
#: hypothesis ``sampled_from`` explore identical values.
#:
#: * ``delays`` is the *lookahead* axis: an all-zero-free palette gives
#:   conservative LPs real lookahead, a delta-heavy palette starves it;
#: * ``fanout`` caps how many consumers one wire may feed (``None``
#:   reproduces the unconstrained historical generator).
TOPOLOGY_SPACE: Dict[str, Tuple] = {
    "gates": tuple(range(4, 25)),
    "registers": (1, 2, 3, 4, 5),
    "stimulus_bits": (1, 2, 3),
    "cycles": (2, 3, 4, 5, 6),
    "fanout": (None, 2, 3, 4),
    "delays": (
        DEFAULT_DELAYS,              # mixed (historical default)
        (0, 0, 0, 1 * NS),           # delta-heavy: little lookahead
        (1 * NS, 3 * NS, 5 * NS),    # fully timed: generous lookahead
        (0, 1 * NS),                 # tight alternation
    ),
}


def sample_topology(rng: random.Random) -> Dict[str, object]:
    """Draw one random-netlist parameter set from ``TOPOLOGY_SPACE``."""
    return {axis: rng.choice(choices)
            for axis, choices in TOPOLOGY_SPACE.items()}


@dataclass
class RandomCircuit:
    design: Design
    seed: int
    traced_names: List[str]

    @property
    def lp_count(self) -> int:
        return self.design.lp_count


def build_random(seed: int, gates: int = 24, registers: int = 4,
                 stimulus_bits: int = 3, cycles: int = 8,
                 period_fs: int = 200 * NS,
                 fanout: Optional[int] = None,
                 delays: Sequence[int] = DEFAULT_DELAYS) -> RandomCircuit:
    """Build a random synchronous circuit from ``seed``.

    Combinational logic forms a DAG (no zero-delay loops); feedback goes
    through registers only.  Gate delays are drawn from ``delays``
    (default {0, 1ns, 3ns}) so delta cycles and timed events interleave.
    ``fanout`` caps how many consumers one wire may feed; the defaults
    reproduce the historical generator bit-for-bit (same RNG stream),
    which committed replay artifacts depend on.
    """
    delays = tuple(delays)
    rng = random.Random(seed)
    design = Design(f"rand{seed}")
    clk = design.signal("clk", SL_0)
    design.clock("clkgen", clk, period_fs=period_fs, cycles=cycles)
    net = Netlist(design)

    # Clocked stimulus player with a random playlist (checkpointable,
    # picklable: BusPlayer is a module-level callable, not a closure).
    stim_bus = net.bus("stim", stimulus_bits)
    playlist = tuple(rng.randrange(1 << stimulus_bits)
                     for _ in range(cycles + 1))
    play = BusPlayer(playlist=playlist,
                     out_ids=tuple(w.lp_id for w in stim_bus))
    design.process("stim.player",
                   ClockedBody(clock=clk, inputs=[], outputs=stim_bus,
                               fn=play, initial_state={"i": 0}),
                   mode=SyncMode.CONSERVATIVE)

    # Register outputs join the pool up front so combinational logic can
    # read them; their inputs are wired after the gates exist (feedback).
    reg_outs = [net.wire(f"r{i}.q", init=sl(rng.randrange(2)))
                for i in range(registers)]
    pool: List[Wire] = list(stim_bus) + list(reg_outs)

    uses: Dict[int, int] = {}

    def pick_input() -> Wire:
        # fanout=None keeps the historical single-draw stream exactly.
        if fanout is None:
            wire = rng.choice(pool)
        else:
            open_pool = [w for w in pool
                         if uses.get(w.lp_id, 0) < fanout]
            wire = rng.choice(open_pool or pool)
        uses[wire.lp_id] = uses.get(wire.lp_id, 0) + 1
        return wire

    traced: List[str] = []
    for g in range(gates):
        kind = rng.choice(_GATE_KINDS)
        arity = 1 if kind in ("not", "buf") else 2
        inputs = [pick_input() for _ in range(arity)]
        delay = rng.choice(delays)
        out = net.wire(f"g{g}.y", traced=True)
        traced.append(out.name)
        net.gate(kind, inputs, out, name=f"g{g}", delay_fs=delay)
        pool.append(out)

    for i, q in enumerate(reg_outs):
        d = pick_input()
        net.dff(clk, d, q, name=f"r{i}")
        traced.append(q.name)
    # Mark register outputs traced post-hoc (they were created early).
    for q in reg_outs:
        q.traced = True

    return RandomCircuit(design=design, seed=seed, traced_names=traced)
