"""The FSM benchmark (paper Fig. 5): zero-delay state machines.

The paper's first workload is a finite state machine simulated with
**0 delay** — all next-state logic resolves through delta cycles, which
is precisely the case that breaks PDES protocols without the paper's
``(pt, lt)`` tie-breaking (Fig. 6 is captioned "for FSM (0 Delay)").

We reconstruct it as a ring of 4-bit LFSR-style state machine cells:
each cell's next-state logic (zero-delay XOR/AND gates) mixes its own
state with a bit from the neighbouring cell, so activity propagates
around the ring and across any partition.  At the default size the model
has ≈553 LPs, matching the paper's reported FSM size.

``level="behavioral"`` collapses each cell into a single clocked process
holding an integer state — the same machine, far fewer LPs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.model import SyncMode
from ..core.vtime import NS
from ..vhdl.design import Design
from ..vhdl.process import ClockedBody
from ..vhdl.values import SL_0, sl
from .gates import Netlist, Wire

#: Default sizing: 46 cells x 12 LPs + clock + clk wire = 554 LPs,
#: matching the paper's reported 553-LP FSM.
DEFAULT_CELLS = 46
STATE_BITS = 4


@dataclass
class FsmCircuit:
    """Handle to a built FSM benchmark."""

    design: Design
    cells: int
    level: str
    #: Output wire of each cell (bit 0 of its state register).
    taps: List[Wire]

    @property
    def lp_count(self) -> int:
        return self.design.lp_count


def _next_state(state: int, ext: int) -> int:
    """The cell's transition function: a 4-bit Fibonacci LFSR whose
    feedback is XORed with the neighbour's tap bit."""
    feedback = ((state >> 3) ^ (state >> 2) ^ ext) & 1
    return ((state << 1) | feedback) & 0xF


@dataclass(frozen=True)
class FsmCellStep:
    """Behavioural cell body: advance the LFSR, drive the tap bit.

    A module-level callable (not a closure) so behavioural designs
    pickle into artifacts and cross ``spawn`` process boundaries.
    """

    tap_id: int
    neighbour_id: int

    def __call__(self, state: Dict, inputs: Dict, api) -> Dict:
        ext = 1 if inputs[self.neighbour_id].to_bool() else 0
        state["s"] = _next_state(state["s"], ext)
        return {self.tap_id: sl(state["s"] & 1)}


def build_fsm(cells: int = DEFAULT_CELLS, level: str = "gate",
              cycles: int = 32, period_fs: int = 10 * NS,
              traced_taps: bool = True,
              gate_delay_fs: int = 0) -> FsmCircuit:
    """Build the FSM ring benchmark.

    ``cycles`` clock periods of stimulus are generated.  The paper's
    Fig. 6 is captioned "(0 Delay)": with ``gate_delay_fs = 0`` all
    next-state logic resolves through delta cycles on every edge —
    the densest simultaneous-event regime.  A non-zero delay spreads
    the same events over physical time instead (the combinational
    settle must fit in half a period; the default period leaves room
    for delays up to ~2 ns).
    """
    if level not in ("gate", "behavioral"):
        raise ValueError(f"unknown level {level!r}")
    if gate_delay_fs and 2 * gate_delay_fs >= period_fs // 2:
        raise ValueError("gate delay too large for the clock period")
    design = Design(f"fsm_{level}_{cells}_d{gate_delay_fs}")
    clk = design.signal("clk", SL_0)
    design.clock("clkgen", clk, period_fs=period_fs, cycles=cycles)
    if level == "gate":
        taps = _build_gate(design, clk, cells, traced_taps,
                           gate_delay_fs)
    else:
        taps = _build_behavioral(design, clk, cells, traced_taps)
    return FsmCircuit(design=design, cells=cells, level=level, taps=taps)


def _build_gate(design: Design, clk: Wire, cells: int,
                traced: bool, gate_delay_fs: int = 0) -> List[Wire]:
    net = Netlist(design, delay_fs=gate_delay_fs)
    # State registers, seeded with distinct non-zero patterns so the
    # LFSRs do not all run in lockstep.
    q: List[List[Wire]] = []
    for c in range(cells):
        init = (c % 15) + 1
        q.append([net.wire(f"c{c}.q{i}", init=sl((init >> i) & 1),
                           traced=(traced and i == 0))
                  for i in range(STATE_BITS)])
    taps = [q[c][0] for c in range(cells)]
    for c in range(cells):
        neighbour = taps[(c - 1) % cells]
        # feedback = q3 ^ q2 ^ neighbour_tap  (zero-delay gates)
        fb1 = net.wire(f"c{c}.fb1")
        net.gate("xor", [q[c][3], q[c][2]], fb1, name=f"c{c}.x1")
        fb = net.wire(f"c{c}.fb")
        net.gate("xor", [fb1, neighbour], fb, name=f"c{c}.x2")
        # Shift: n[i] = q[i-1]; n[0] = feedback.
        d_bus = [fb] + [q[c][i] for i in range(STATE_BITS - 1)]
        for i in range(STATE_BITS):
            init = (((c % 15) + 1) >> i) & 1
            net.dff(clk, d_bus[i], q[c][i], name=f"c{c}.ff{i}",
                    init=sl(init))
    return taps


def _build_behavioral(design: Design, clk: Wire, cells: int,
                      traced: bool) -> List[Wire]:
    taps: List[Wire] = [
        design.signal(f"c{c}.tap", sl((((c % 15) + 1)) & 1),
                      traced=traced)
        for c in range(cells)
    ]
    for c in range(cells):
        neighbour = taps[(c - 1) % cells]
        tap = taps[c]
        step = FsmCellStep(tap_id=tap.lp_id, neighbour_id=neighbour.lp_id)
        body = ClockedBody(clock=clk, inputs=[neighbour], outputs=[tap],
                           fn=step, initial_state={"s": (c % 15) + 1})
        design.process(f"c{c}.fsm", body, mode=SyncMode.CONSERVATIVE)
    return taps


def reference_taps(cells: int, cycles: int) -> List[int]:
    """Pure-Python reference: the tap bits after ``cycles`` clock edges.

    Used by tests to check both abstraction levels against the intended
    machine.
    """
    states = [(c % 15) + 1 for c in range(cells)]
    for _ in range(cycles):
        taps = [s & 1 for s in states]
        states = [_next_state(states[c], taps[(c - 1) % cells])
                  for c in range(cells)]
    return [s & 1 for s in states]
