"""The paper's benchmark circuits and supporting netlist machinery."""

from .bodies import BusPlayer, DffCapture
from .dct import DctCircuit, build_dct, reference_product
from .fsm import FsmCircuit, build_fsm, reference_taps
from .gates import Netlist, bus_finals, bus_value
from .iir import IirCircuit, build_iir, reference_response
from .random_logic import RandomCircuit, build_random
from .weighted import build_pipeline_bank
from .vhdl_text import (build_fsm_from_vhdl, build_iir_from_vhdl,
                        build_random_behavioral, fsm_vhdl, iir_vhdl,
                        iir_vhdl_reference, random_behavioral_vhdl)

__all__ = [
    "Netlist", "bus_value", "bus_finals",
    "BusPlayer", "DffCapture",
    "FsmCircuit", "build_fsm", "reference_taps",
    "IirCircuit", "build_iir", "reference_response",
    "DctCircuit", "build_dct", "reference_product",
    "RandomCircuit", "build_random",
    "build_pipeline_bank",
    "fsm_vhdl", "build_fsm_from_vhdl",
    "iir_vhdl", "build_iir_from_vhdl", "iir_vhdl_reference",
    "random_behavioral_vhdl", "build_random_behavioral",
]
