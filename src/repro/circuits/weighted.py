"""Cost-weighted pipeline banks for wall-clock backend benchmarks.

The paper's circuits are *fine-grained*: an event body costs less than
the protocol bookkeeping around it, which is the honest regime for
protocol studies but hides what the real-concurrency backends exist
for.  This module builds a bank of independent pipelines whose stage
bodies carry a configurable **latency weight** — a blocking wait
standing in for external model evaluation (an IP-block server, a
disk-backed model, an RPC federate a la HLA).  Blocking releases the
GIL, so every backend can overlap it; how close each one gets to the
ideal ``min(workers, chains)x`` is exactly what the wall-clock
benchmarks measure.

Unlike the closure-built circuits in ``benchmarks/``, every callable
here is a module-level class instance, so the resulting model
**pickles by reference** — it can ship to multiprocess workers under
the ``spawn`` start method and across the distributed backend's TCP
wire, where worker daemons unpickle it in a fresh interpreter that
only has the installed package on its path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..core.event import EventKind
from ..core.lp import FunctionLP
from ..core.model import Model
from ..core.vtime import VirtualTime

__all__ = ["build_pipeline_bank", "PipelineSource", "WeightedStage"]


@dataclass
class PipelineSource:
    """Injects ``events`` stimulus events into the first stage."""

    target: int
    events: int

    def __call__(self, lp, event) -> None:  # pragma: no cover - no input
        pass

    def on_init(self, lp) -> None:
        for k in range(self.events):
            lp.send(self.target, VirtualTime(10 + 10 * k, 0),
                    EventKind.USER, k)


@dataclass
class WeightedStage:
    """One pipeline stage: block ``wait_s`` then forward downstream."""

    wait_s: float
    nxt: Optional[int]

    def __call__(self, lp, event) -> None:
        if self.wait_s > 0.0:
            time.sleep(self.wait_s)
        if self.nxt is not None:
            lp.send(self.nxt, VirtualTime(event.time.pt + 10, 0),
                    EventKind.USER, event.payload)


def build_pipeline_bank(chains: int = 4, stages: int = 3,
                        events: int = 50,
                        wait_s: float = 0.002) -> Model:
    """A bank of ``chains`` independent ``stages``-deep pipelines.

    Each stage event blocks for ``wait_s`` seconds (0 disables the
    weight, leaving a pure fine-grained message pipeline).  Total
    weighted events: ``chains * stages * events``.
    """
    model = Model()
    for chain in range(chains):
        base = chain * (stages + 1)
        feeder = PipelineSource(base + 1, events)
        source = FunctionLP(f"src{chain}", feeder,
                            on_init=feeder.on_init)
        model.add_lp(source)
        previous = source
        for stage in range(stages):
            nxt = None if stage == stages - 1 else base + stage + 2
            stage_lp = FunctionLP(f"c{chain}s{stage}",
                                  WeightedStage(wait_s, nxt))
            model.add_lp(stage_lp)
            model.connect(previous, stage_lp)
            previous = stage_lp
    model.validate()
    return model
