"""Picklable process-body callables for the benchmark circuits.

The circuit builders used to wire :class:`~repro.vhdl.process.ClockedBody`
with local closures (a ``play``/``capture``/``step`` function capturing
LP ids from the enclosing builder).  Closures cannot cross a process
boundary, which is fatal once a design is snapshotted into a
:class:`~repro.vhdl.artifact.DesignArtifact` and shipped to ``spawn``
workers.  These module-level callable classes carry the same captured
values as instance attributes instead — identical behaviour, but
picklable and deterministically hashable (plain data, no cell objects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..vhdl.values import sl


@dataclass(frozen=True)
class BusPlayer:
    """Plays ``playlist`` onto a bus, one value per clock, then zeros.

    The shared stimulus pattern of the random-netlist player, the IIR
    sample feeder and the DCT row/column players: state ``{"i": n}``
    advances every call; bit ``b`` of the current value drives
    ``out_ids[b]``.
    """

    playlist: Tuple[int, ...]
    out_ids: Tuple[int, ...]

    def __call__(self, state: Dict, inputs: Dict, api) -> Dict:
        index = state["i"]
        value = self.playlist[index] if index < len(self.playlist) else 0
        state["i"] = index + 1
        return {self.out_ids[b]: sl((value >> b) & 1)
                for b in range(len(self.out_ids))}


@dataclass(frozen=True)
class DffCapture:
    """Rising-edge D flip-flop body: ``q <= d``."""

    d_id: int
    q_id: int

    def __call__(self, state: Dict, inputs: Dict, api) -> Dict:
        return {self.q_id: inputs[self.d_id]}
