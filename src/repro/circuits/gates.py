"""Gate-level netlist construction on top of the VHDL kernel.

Every gate becomes one combinational VHDL process LP and every wire one
signal LP, giving the bi-partite LP graphs whose sizes the paper reports
(553–~1800 LPs).  Registers are edge-triggered processes tagged
conservative, implementing the paper's *mixed* heuristic ("synchronous
components ... conservative, asynchronous ones ... optimistic").

Datapath helpers (ripple-carry adders, array multipliers) build the
arithmetic used by the IIR and DCT workloads.  All datapath arithmetic is
modulo ``2**width`` (two's-complement wrap-around), which lets behavioural
models reproduce gate-level results bit-for-bit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..core.model import SyncMode
from ..core.vtime import NS
from ..vhdl.design import Design
from ..vhdl.process import ClockedBody, CombinationalBody, ProcessLP
from ..vhdl.signal import SignalLP
from ..vhdl.values import SL_0, StdLogic, sl
from .bodies import DffCapture

Wire = SignalLP


def _and2(a: StdLogic, b: StdLogic) -> StdLogic:
    return a & b


def _or2(a: StdLogic, b: StdLogic) -> StdLogic:
    return a | b


def _xor2(a: StdLogic, b: StdLogic) -> StdLogic:
    return a ^ b


def _nand2(a: StdLogic, b: StdLogic) -> StdLogic:
    return ~(a & b)


def _nor2(a: StdLogic, b: StdLogic) -> StdLogic:
    return ~(a | b)


def _xnor2(a: StdLogic, b: StdLogic) -> StdLogic:
    return ~(a ^ b)


def _not1(a: StdLogic) -> StdLogic:
    return ~a


def _buf1(a: StdLogic) -> StdLogic:
    return a


GATE_FUNCTIONS: Dict[str, Callable[..., StdLogic]] = {
    "and": _and2, "or": _or2, "xor": _xor2, "nand": _nand2,
    "nor": _nor2, "xnor": _xnor2, "not": _not1, "buf": _buf1,
}


class Netlist:
    """A gate-level circuit builder bound to a :class:`Design`.

    ``delay_fs`` is the propagation delay given to every combinational
    gate; 0 produces pure delta-cycle behaviour (the paper's
    "0 Delay" FSM benchmark).
    """

    def __init__(self, design: Design, delay_fs: int = 0) -> None:
        self.design = design
        self.delay_fs = delay_fs
        self._counter = 0
        self.gate_count = 0
        self.register_count = 0

    # ------------------------------------------------------------------
    # Wires
    # ------------------------------------------------------------------
    def wire(self, name: Optional[str] = None, init=SL_0,
             traced: bool = False) -> Wire:
        return self.design.signal(name or self._fresh("w"), sl(init),
                                  traced=traced)

    def bus(self, name: str, width: int, init: int = 0,
            traced: bool = False) -> List[Wire]:
        """``width`` wires, index 0 = LSB, initialised from ``init``."""
        return [self.wire(f"{name}[{i}]", sl((init >> i) & 1), traced=traced)
                for i in range(width)]

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------
    def gate(self, kind: str, inputs: Sequence[Wire], output: Wire,
             name: Optional[str] = None,
             delay_fs: Optional[int] = None) -> ProcessLP:
        fn = GATE_FUNCTIONS[kind]
        delay = self.delay_fs if delay_fs is None else delay_fs
        body = CombinationalBody(inputs, [output], fn, delay_fs=delay)
        self.gate_count += 1
        return self.design.process(name or self._fresh(kind), body,
                                   mode=SyncMode.OPTIMISTIC)

    def and_(self, a: Wire, b: Wire, y: Optional[Wire] = None) -> Wire:
        y = y or self.wire()
        self.gate("and", [a, b], y)
        return y

    def or_(self, a: Wire, b: Wire, y: Optional[Wire] = None) -> Wire:
        y = y or self.wire()
        self.gate("or", [a, b], y)
        return y

    def xor_(self, a: Wire, b: Wire, y: Optional[Wire] = None) -> Wire:
        y = y or self.wire()
        self.gate("xor", [a, b], y)
        return y

    def nand_(self, a: Wire, b: Wire, y: Optional[Wire] = None) -> Wire:
        y = y or self.wire()
        self.gate("nand", [a, b], y)
        return y

    def nor_(self, a: Wire, b: Wire, y: Optional[Wire] = None) -> Wire:
        y = y or self.wire()
        self.gate("nor", [a, b], y)
        return y

    def xnor_(self, a: Wire, b: Wire, y: Optional[Wire] = None) -> Wire:
        y = y or self.wire()
        self.gate("xnor", [a, b], y)
        return y

    def not_(self, a: Wire, y: Optional[Wire] = None) -> Wire:
        y = y or self.wire()
        self.gate("not", [a], y)
        return y

    # ------------------------------------------------------------------
    # Registers
    # ------------------------------------------------------------------
    def dff(self, clk: Wire, d: Wire, q: Optional[Wire] = None,
            name: Optional[str] = None, init=SL_0) -> Wire:
        """A rising-edge D flip-flop; conservative under the mixed config."""
        q = q or self.wire(init=init)
        body = ClockedBody(clock=clk, inputs=[d], outputs=[q],
                           fn=DffCapture(d_id=d.lp_id, q_id=q.lp_id))
        self.register_count += 1
        self.design.process(name or self._fresh("dff"), body,
                            mode=SyncMode.CONSERVATIVE)
        return q

    def register(self, clk: Wire, d_bus: Sequence[Wire],
                 q_bus: Optional[Sequence[Wire]] = None,
                 name: Optional[str] = None,
                 init: int = 0) -> List[Wire]:
        """A bank of D flip-flops, one per bit."""
        if q_bus is None:
            q_bus = [self.wire(init=sl((init >> i) & 1))
                     for i in range(len(d_bus))]
        base = name or self._fresh("reg")
        for i, (d, q) in enumerate(zip(d_bus, q_bus)):
            self.dff(clk, d, q, name=f"{base}.b{i}",
                     init=sl((init >> i) & 1))
        return list(q_bus)

    # ------------------------------------------------------------------
    # Datapath blocks (all modulo 2**width)
    # ------------------------------------------------------------------
    def half_adder(self, a: Wire, b: Wire) -> tuple:
        s = self.xor_(a, b)
        c = self.and_(a, b)
        return s, c

    def full_adder(self, a: Wire, b: Wire, cin: Wire) -> tuple:
        axb = self.xor_(a, b)
        s = self.xor_(axb, cin)
        c1 = self.and_(a, b)
        c2 = self.and_(axb, cin)
        c = self.or_(c1, c2)
        return s, c

    def ripple_adder(self, a_bus: Sequence[Wire], b_bus: Sequence[Wire],
                     ) -> List[Wire]:
        """``(a + b) mod 2**width``; the final carry is dropped."""
        if len(a_bus) != len(b_bus):
            raise ValueError("adder operands must have equal width")
        total: List[Wire] = []
        carry: Optional[Wire] = None
        for i, (a, b) in enumerate(zip(a_bus, b_bus)):
            if carry is None:
                s, carry = self.half_adder(a, b)
            elif i == len(a_bus) - 1:
                # Last bit: the carry out is discarded (mod arithmetic),
                # so a 3-input XOR suffices.
                s = self.xor_(self.xor_(a, b), carry)
            else:
                s, carry = self.full_adder(a, b, carry)
            total.append(s)
        return total

    def subtractor(self, a_bus: Sequence[Wire],
                   b_bus: Sequence[Wire]) -> List[Wire]:
        """``(a - b) mod 2**width`` via two's complement: a + ~b + 1."""
        nb = [self.not_(b) for b in b_bus]
        total: List[Wire] = []
        # Carry-in of 1 folds into the first stage: s = a ^ ~b ^ 1,
        # c = (a & ~b) | ((a ^ ~b) & 1) = (a & ~b) | (a ^ ~b).
        a0, nb0 = a_bus[0], nb[0]
        s0 = self.xnor_(a0, nb0)
        axb0 = self.xor_(a0, nb0)
        c = self.or_(self.and_(a0, nb0), axb0)
        total.append(s0)
        for i in range(1, len(a_bus)):
            if i == len(a_bus) - 1:
                total.append(self.xor_(self.xor_(a_bus[i], nb[i]), c))
            else:
                s, c = self.full_adder(a_bus[i], nb[i], c)
                total.append(s)
        return total

    def multiplier(self, a_bus: Sequence[Wire],
                   b_bus: Sequence[Wire],
                   width: Optional[int] = None) -> List[Wire]:
        """Array multiplier producing ``(a * b) mod 2**width``.

        Only the partial products that affect the low ``width`` bits are
        generated, keeping the gate count proportional to ``width**2/2``.
        """
        width = width or len(a_bus)
        zero = self.constant(0, 1)[0]
        # Row 0: a * b0.
        acc: List[Wire] = [self.and_(a_bus[j], b_bus[0])
                           for j in range(width)]
        for i in range(1, min(width, len(b_bus))):
            row = [self.and_(a_bus[j], b_bus[i])
                   for j in range(width - i)]
            shifted = acc[:i] + self.ripple_adder(acc[i:],
                                                  row)
            acc = shifted
        return acc

    def constant(self, value: int, width: int) -> List[Wire]:
        """Constant wires (no driver; they keep their initial value)."""
        return [self.wire(init=sl((value >> i) & 1)) for i in range(width)]

    # ------------------------------------------------------------------
    def size_report(self) -> Dict[str, int]:
        report = self.design.size_report()
        report["gates"] = self.gate_count
        report["registers"] = self.register_count
        return report


def bus_value(bus: Sequence[Wire]) -> int:
    """Read a bus's current effective value as an unsigned int (LSB-first)."""
    value = 0
    for i, wire in enumerate(bus):
        bit = wire.effective
        value |= (1 if bit.to_bool() else 0) << i
    return value


def bus_finals(result, name: str, width: int) -> int:
    """Read ``name[0..width-1]`` from a SimulationResult as an int."""
    value = 0
    for i in range(width):
        bit = result.finals[f"{name}[{i}]"]
        value |= (1 if bit.to_bool() else 0) << i
    return value
