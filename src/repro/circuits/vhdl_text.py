"""The paper's workloads as *VHDL source text*.

The paper closes by calling its method "a strong candidate for automatic
translation for parallel simulation of VHDL".  This module demonstrates
exactly that round trip at workload scale: it emits benchmark circuits
as plain VHDL which the frontend elaborates into the same logical
machines the kernel-level builders construct directly.

Three families:

* :func:`fsm_vhdl` — the FSM-ring benchmark (a ``for ... generate``
  over state-machine cells sharing an element-wise-driven tap vector),
  agreeing state-for-state with :mod:`repro.circuits.fsm`;
* :func:`iir_vhdl` — the Gray–Markel lattice IIR at behavioural level
  (paper Figs. 7/8), unrolled per section; the per-edge multiply/
  accumulate chain makes it the canonical *compute-bound* workload for
  the interp-vs-compiled benchmarks (:mod:`repro.vhdl.compile`);
* :func:`random_behavioral_vhdl` — a seeded random behavioural program
  over the full supported statement subset (if/case/for/while/exit/
  next, vector slicing, shifts, wait on/until/for), the generator
  behind the differential exec-mode matrix.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..vhdl.design import Design
from ..vhdl.frontend import elaborate


def fsm_vhdl(cells: int, cycles: int, period_ns: int = 10) -> str:
    """VHDL source for the FSM ring benchmark (see circuits.fsm).

    Each generated cell is a 4-bit LFSR whose feedback XORs bits 3 and 2
    of its own state with the neighbouring cell's tap bit; the XOR is
    spelled as a sum modulo 2 to stay inside the integer subset.
    """
    if cells < 2:
        raise ValueError("the ring needs at least two cells")
    half = period_ns // 2
    return f"""
entity fsm_ring is
end fsm_ring;

architecture rtl of fsm_ring is
  constant cells : integer := {cells};
  signal clk  : std_logic := '0';
  signal taps : std_logic_vector(0 to cells - 1);
begin

  clocking : process
  begin
    for c in 1 to {cycles} loop
      clk <= '0';
      wait for {half} ns;
      clk <= '1';
      wait for {half} ns;
    end loop;
    wait;
  end process;

  cellgen : for i in 0 to cells - 1 generate
    cell : process(clk)
      variable s  : integer := (i mod 15) + 1;
      variable fb : integer;
    begin
      if rising_edge(clk) then
        if taps((i + cells - 1) mod cells) = '1' then
          fb := 1;
        else
          fb := 0;
        end if;
        fb := (((s / 8) mod 2) + ((s / 4) mod 2) + fb) mod 2;
        s  := ((s * 2) mod 16) + fb;
      end if;
      -- Publish the tap (runs at elaboration too, seeding the initial
      -- ring state; idempotent on falling edges).
      if (s mod 2) = 1 then
        taps(i) <= '1';
      else
        taps(i) <= '0';
      end if;
    end process;
  end generate;

end rtl;
"""


def build_fsm_from_vhdl(cells: int, cycles: int,
                        traced: bool = True) -> Design:
    """Compile the generated VHDL into a kernel design."""
    source = fsm_vhdl(cells, cycles)
    return elaborate(source, top="fsm_ring",
                     traced=("taps",) if traced else False,
                     name=f"fsm_vhdl_{cells}")


# ----------------------------------------------------------------------
# Behavioural lattice IIR (compute-bound workload)
# ----------------------------------------------------------------------

#: Mildly resonant defaults, mirroring circuits.iir.DEFAULT_COEFFS.
DEFAULT_IIR_COEFFS = (3, 251)


def iir_vhdl(chans: int = 2, sections: int = 2, width: int = 8,
             cycles: int = 16, period_ns: int = 10,
             coefficients: Optional[Sequence[int]] = None) -> str:
    """VHDL source for a bank of behavioural lattice IIR channels.

    Each channel is one clocked process holding the whole Gray–Markel
    recursion unrolled over ``sections`` (the behavioural level of
    circuits.iir): per rising edge it synthesizes an input sample from
    a channel-indexed polynomial, runs the multiply/accumulate lattice,
    shifts the bottom-path registers and publishes the all-pole output
    ``f_0`` on its slice of the shared ``y`` bus.  Channels are
    independent, so the bank partitions perfectly — and every edge
    costs ``O(sections)`` integer multiplies, which is exactly the
    per-event compute the process compiler is meant to accelerate.
    """
    if chans < 1:
        raise ValueError("need at least one channel")
    if sections < 1:
        raise ValueError("need at least one lattice section")
    modulus = 2 ** width
    if coefficients is None:
        coefficients = [DEFAULT_IIR_COEFFS[i % len(DEFAULT_IIR_COEFFS)]
                        for i in range(sections)]
    if len(coefficients) != sections:
        raise ValueError("need one reflection coefficient per section")
    ks = [k % modulus for k in coefficients]
    half = period_ns // 2

    decls = "\n".join(
        f"      variable gd{i} : integer := 0;\n"
        f"      variable ng{i} : integer := 0;" for i in range(sections))
    lattice = "\n".join(
        f"          f := (f - {ks[i]} * gd{i}) mod {modulus};\n"
        f"          ng{i} := ({ks[i]} * f + gd{i}) mod {modulus};"
        for i in range(sections - 1, -1, -1))
    shift = "\n".join(
        [f"          gd{i} := ng{i - 1};"
         for i in range(sections - 1, 0, -1)] + ["          gd0 := f;"])

    channels = []
    for c in range(chans):
        lo, hi = c * width, (c + 1) * width - 1
        channels.append(f"""
  chan{c} : process(clk)
    variable t  : integer := 0;
    variable x  : integer;
    variable f  : integer;
    variable f0 : integer := 0;
{decls}
  begin
    if rising_edge(clk) then
      x := ((t * {13 + c}) + ((t * t + {7 * c}) mod 97) * 5 + {c}) mod {modulus};
      t := t + 1;
      f := x;
{lattice}
{shift}
      f0 := f;
    end if;
    -- Publish (runs at elaboration too, seeding the bus slice).
    y({lo} to {hi}) <= std_logic_vector(to_unsigned(f0, {width}));
  end process;""")

    body = "\n".join(channels)
    return f"""
entity iir_bank is
end iir_bank;

architecture behav of iir_bank is
  signal clk : std_logic := '0';
  signal y   : std_logic_vector(0 to {chans * width - 1});
begin

  clocking : process
  begin
    for c in 1 to {cycles} loop
      clk <= '0';
      wait for {half} ns;
      clk <= '1';
      wait for {half} ns;
    end loop;
    wait;
  end process;
{body}

end behav;
"""


def iir_vhdl_reference(chans: int = 2, sections: int = 2,
                       width: int = 8, cycles: int = 16,
                       coefficients: Optional[Sequence[int]] = None
                       ) -> List[int]:
    """Pure-Python reference: per-channel final ``f_0`` after ``cycles``."""
    modulus = 2 ** width
    if coefficients is None:
        coefficients = [DEFAULT_IIR_COEFFS[i % len(DEFAULT_IIR_COEFFS)]
                        for i in range(sections)]
    ks = [k % modulus for k in coefficients]
    finals = []
    for c in range(chans):
        gd = [0] * sections
        f = 0
        for t in range(cycles):
            x = ((t * (13 + c)) + ((t * t + 7 * c) % 97) * 5 + c) % modulus
            f = x
            ng = [0] * sections
            for i in range(sections - 1, -1, -1):
                f = (f - ks[i] * gd[i]) % modulus
                ng[i] = (ks[i] * f + gd[i]) % modulus
            gd = [f if i == 0 else ng[i - 1] for i in range(sections)]
        finals.append(f)
    return finals


def build_iir_from_vhdl(chans: int = 2, sections: int = 2,
                        width: int = 8, cycles: int = 16,
                        traced: bool = True, **kwargs) -> Design:
    """Compile the generated lattice-bank VHDL into a kernel design."""
    source = iir_vhdl(chans=chans, sections=sections, width=width,
                      cycles=cycles, **kwargs)
    return elaborate(source, top="iir_bank",
                     traced=("y",) if traced else False,
                     name=f"iir_vhdl_{chans}x{sections}")


# ----------------------------------------------------------------------
# Seeded random behavioural programs (differential exec-mode fodder)
# ----------------------------------------------------------------------

def _random_stmts(rng: random.Random, depth: int = 0) -> List[str]:
    """A random sequence of sequential statements over the state
    variables ``a``/``b``/``c`` (non-negative integers) and ``v``
    (an 8-bit vector).  Every template keeps the integers bounded and
    non-negative, divides only by positive literals, and bounds every
    loop — so any generated program terminates and stays inside the
    supported subset while still exercising if/case/for/while/exit/
    next, vector slice/index assignment, shifts and the builtins."""
    templates = []

    def t_arith() -> str:
        m, k = rng.randrange(2, 9), rng.randrange(0, 100)
        return f"a := (a * {m} + b + {k}) mod 4096;"

    def t_div() -> str:
        d = rng.choice((2, 3, 4, 8))
        return f"b := (b + a / {d} + c rem {rng.randrange(3, 17)}) mod 2048;"

    def t_abs_pow() -> str:
        return (f"c := ((abs (a - b)) + 2 ** ((a + {rng.randrange(4)}) "
                f"mod 5)) mod 1024;")

    def t_if() -> str:
        k, j = rng.randrange(3, 9), rng.randrange(0, 3)
        body = f"b := (b + {rng.randrange(1, 50)}) mod 1024;"
        orelse = f"c := (c + 1) mod 512;"
        if rng.random() < 0.5:
            mid = f"a := (a + c) mod 4096;"
            return (f"if (a mod {k}) > {j} then {body} "
                    f"elsif (b mod 2) = 0 then {mid} "
                    f"else {orelse} end if;")
        return f"if (a mod {k}) > {j} then {body} else {orelse} end if;"

    def t_case() -> str:
        arms = [f"when 0 => a := (a + {rng.randrange(1, 20)}) mod 4096;",
                f"when 1 | 2 => b := (b * 3 + 1) mod 2048;",
                f"when others => c := (c + a mod 7) mod 512;"]
        return f"case (a + b) mod {rng.randrange(4, 7)} is " \
               + " ".join(arms) + " end case;"

    def t_for() -> str:
        n = rng.randrange(2, 6)
        p = rng.randrange(2, 5)
        limit = rng.randrange(300, 600)
        var = rng.choice(("k", "n"))
        direction = rng.choice((f"0 to {n}", f"{n} downto 0"))
        return (f"for {var} in {direction} loop "
                f"if ({var} + a) mod {p} = 0 then next; end if; "
                f"c := (c + {var} * {rng.randrange(2, 9)}) mod 2048; "
                f"if c > {limit} then exit; end if; "
                f"end loop;")

    def t_while() -> str:
        return (f"while c > {rng.randrange(5, 40)} loop "
                f"c := c / 2; end loop;")

    def t_vector() -> str:
        ops = [f"v := std_logic_vector(to_unsigned(a mod 256, 8));"]
        pick = rng.random()
        if pick < 0.34:
            ops.append("v(3 downto 0) := v(7 downto 4);")
        elif pick < 0.67:
            ops.append(f"v := v {rng.choice(('sll', 'srl'))} "
                       f"{rng.randrange(1, 4)};")
        else:
            ops.append(f"v({rng.randrange(8)}) := '1';")
        ops.append("b := (b + to_integer(unsigned(v))) mod 4096;")
        return " ".join(ops)

    templates = [t_arith, t_div, t_abs_pow, t_if, t_case, t_for,
                 t_while, t_vector]
    count = rng.randrange(3, 8)
    return [rng.choice(templates)() for _ in range(count)]


def random_behavioral_vhdl(seed: int, processes: int = 3,
                           cycles: int = 8, period_ns: int = 10) -> str:
    """Seeded random behavioural VHDL over the supported subset.

    ``processes`` clocked processes each run a random statement mix per
    rising edge, read a neighbour's tap bit (cross-process coupling)
    and publish a tap bit plus an 8-bit slice of a shared data bus.  A
    final *pacer* process exercises the ``wait until`` / ``wait for``
    resume paths.  The same seed always yields the same source — the
    differential exec-mode matrix elaborates it twice and requires
    interpreted and compiled runs to commit bit-identical waves.
    """
    if processes < 1:
        raise ValueError("need at least one process")
    rng = random.Random(seed)
    total = processes + 1  # + pacer
    half = period_ns // 2
    blocks = []
    for i in range(processes):
        neighbour = (i + 1 + rng.randrange(total - 1)) % total
        stmts = "\n        ".join(_random_stmts(rng))
        lo, hi = i * 8, i * 8 + 7
        blocks.append(f"""
  proc{i} : process(clk)
    variable a : integer := {rng.randrange(1, 1000)};
    variable b : integer := {rng.randrange(0, 1000)};
    variable c : integer := {rng.randrange(0, 500)};
    variable v : std_logic_vector(7 downto 0) := "00000000";
  begin
    if rising_edge(clk) then
      if taps({neighbour}) = '1' then
        a := (a + {rng.randrange(1, 64)}) mod 4096;
      end if;
      {stmts}
    end if;
    if (a + b + c) mod 2 = 1 then
      taps({i}) <= '1';
    else
      taps({i}) <= '0';
    end if;
    data({lo} to {hi}) <= std_logic_vector(to_unsigned((a + c) mod 256, 8));
  end process;""")

    pace_k = rng.randrange(3, 30)
    pace_d = rng.randrange(1, max(2, half))
    pi = processes
    plo, phi = pi * 8, pi * 8 + 7
    blocks.append(f"""
  pacer : process
    variable p : integer := {rng.randrange(0, 100)};
  begin
    taps({pi}) <= '0';
    data({plo} to {phi}) <= "00000000";
    for c in 1 to {cycles} loop
      wait until clk = '1';
      p := (p * 3 + {pace_k}) mod 251;
      wait for {pace_d} ns;
      if (p mod 2) = 1 then
        taps({pi}) <= '1';
      else
        taps({pi}) <= '0';
      end if;
      data({plo} to {phi}) <= std_logic_vector(to_unsigned(p, 8));
    end loop;
    wait;
  end process;""")

    body = "\n".join(blocks)
    return f"""
entity behav_rand is
end behav_rand;

architecture rtl of behav_rand is
  signal clk  : std_logic := '0';
  signal taps : std_logic_vector(0 to {total - 1});
  signal data : std_logic_vector(0 to {total * 8 - 1});
begin

  clocking : process
  begin
    for c in 1 to {cycles} loop
      clk <= '0';
      wait for {half} ns;
      clk <= '1';
      wait for {half} ns;
    end loop;
    wait;
  end process;
{body}

end rtl;
"""


def build_random_behavioral(seed: int, processes: int = 3,
                            cycles: int = 8,
                            traced: bool = True) -> Design:
    """Compile a seeded random behavioural program into a design."""
    source = random_behavioral_vhdl(seed, processes=processes,
                                    cycles=cycles)
    return elaborate(source, top="behav_rand",
                     traced=("taps", "data") if traced else False,
                     name=f"behav_rand_{seed}")
