"""The paper's FSM workload as *VHDL source text*.

The paper closes by calling its method "a strong candidate for automatic
translation for parallel simulation of VHDL".  This module demonstrates
exactly that round trip at workload scale: it emits the FSM-ring
benchmark as plain VHDL (a ``for ... generate`` over state-machine
cells sharing an element-wise-driven tap vector), which the frontend
compiles into the same logical machine the kernel-level builder
(:mod:`repro.circuits.fsm`) constructs directly — and the two agree
state-for-state.
"""

from __future__ import annotations

from ..vhdl.design import Design
from ..vhdl.frontend import elaborate


def fsm_vhdl(cells: int, cycles: int, period_ns: int = 10) -> str:
    """VHDL source for the FSM ring benchmark (see circuits.fsm).

    Each generated cell is a 4-bit LFSR whose feedback XORs bits 3 and 2
    of its own state with the neighbouring cell's tap bit; the XOR is
    spelled as a sum modulo 2 to stay inside the integer subset.
    """
    if cells < 2:
        raise ValueError("the ring needs at least two cells")
    half = period_ns // 2
    return f"""
entity fsm_ring is
end fsm_ring;

architecture rtl of fsm_ring is
  constant cells : integer := {cells};
  signal clk  : std_logic := '0';
  signal taps : std_logic_vector(0 to cells - 1);
begin

  clocking : process
  begin
    for c in 1 to {cycles} loop
      clk <= '0';
      wait for {half} ns;
      clk <= '1';
      wait for {half} ns;
    end loop;
    wait;
  end process;

  cellgen : for i in 0 to cells - 1 generate
    cell : process(clk)
      variable s  : integer := (i mod 15) + 1;
      variable fb : integer;
    begin
      if rising_edge(clk) then
        if taps((i + cells - 1) mod cells) = '1' then
          fb := 1;
        else
          fb := 0;
        end if;
        fb := (((s / 8) mod 2) + ((s / 4) mod 2) + fb) mod 2;
        s  := ((s * 2) mod 16) + fb;
      end if;
      -- Publish the tap (runs at elaboration too, seeding the initial
      -- ring state; idempotent on falling edges).
      if (s mod 2) = 1 then
        taps(i) <= '1';
      else
        taps(i) <= '0';
      end if;
    end process;
  end generate;

end rtl;
"""


def build_fsm_from_vhdl(cells: int, cycles: int,
                        traced: bool = True) -> Design:
    """Compile the generated VHDL into a kernel design."""
    source = fsm_vhdl(cells, cycles)
    return elaborate(source, top="fsm_ring",
                     traced=("taps",) if traced else False,
                     name=f"fsm_vhdl_{cells}")
