"""Length-prefixed pickle framing for the distributed backend.

One frame = an 8-byte header (magic, protocol version, payload length)
followed by a pickled Python object.  The framing is deliberately dumb:
*reliability* is not its job — sequence numbers, acks, retransmission,
dedup and journal replay all live in
:class:`repro.fabric.batched.BatchedEndpoint`, exactly as they do for
the in-process backends.  The wire layer only has to (a) delimit
messages on a byte stream and (b) fail loudly when the peer is not a
repro coordinator/worker of the same protocol version.

**Security note.**  Frames are pickles: deserializing one executes
arbitrary code by design (the coordinator ships real `Model` objects
with process-body callables to workers).  The dist backend is therefore
a *trusted-network* transport — run it on localhost, inside a private
network, or over an authenticated tunnel (ssh -L), never on an
internet-facing port.  See docs/distributed.md.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from typing import Any, Tuple

#: Frame header: 4-byte magic, 1-byte version, 3 pad, 4-byte length.
_HEADER = struct.Struct(">4sB3xI")
MAGIC = b"RPRO"
VERSION = 1
HEADER_SIZE = _HEADER.size

#: Hard ceiling on a single frame (a pickled model for a large design
#: is a few MB; 256 MB means a corrupt length field fails fast instead
#: of attempting a giant allocation).
MAX_FRAME = 256 * 1024 * 1024


class WireError(Exception):
    """A malformed or incompatible frame arrived on the stream."""


def encode_frame(obj: Any) -> bytes:
    """Serialize one object into a self-delimiting frame."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME:
        raise WireError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte ceiling")
    return _HEADER.pack(MAGIC, VERSION, len(payload)) + payload


def decode_header(header: bytes) -> int:
    """Validate a frame header; return the payload length."""
    if len(header) != HEADER_SIZE:
        raise WireError(
            f"short frame header ({len(header)}/{HEADER_SIZE} bytes)")
    magic, version, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r} (not a repro peer?)")
    if version != VERSION:
        raise WireError(
            f"wire protocol version mismatch: peer speaks v{version}, "
            f"this build speaks v{VERSION}")
    if length > MAX_FRAME:
        raise WireError(
            f"frame length {length} exceeds the {MAX_FRAME}-byte "
            f"ceiling (corrupt stream?)")
    return length


def decode_frame(data: bytes) -> Tuple[Any, bytes]:
    """Split one complete frame off a byte buffer.

    Returns ``(object, rest)``; raises :class:`WireError` if the buffer
    does not hold a complete valid frame (use the asyncio helpers for
    streams — this form exists for tests and synchronous callers).
    """
    length = decode_header(data[:HEADER_SIZE])
    end = HEADER_SIZE + length
    if len(data) < end:
        raise WireError(
            f"truncated frame: have {len(data) - HEADER_SIZE} of "
            f"{length} payload bytes")
    return pickle.loads(data[HEADER_SIZE:end]), data[end:]


async def send_frame(writer: asyncio.StreamWriter, obj: Any) -> int:
    """Write one frame and drain; returns the bytes put on the wire."""
    frame = encode_frame(obj)
    writer.write(frame)
    await writer.drain()
    return len(frame)


async def recv_frame(reader: asyncio.StreamReader) -> Tuple[Any, int]:
    """Read one complete frame; returns ``(object, bytes_read)``.

    Raises :class:`asyncio.IncompleteReadError` on a clean or dirty
    EOF mid-frame (callers treat both as a connection loss) and
    :class:`WireError` on header corruption.
    """
    header = await reader.readexactly(HEADER_SIZE)
    length = decode_header(header)
    payload = await reader.readexactly(length)
    return pickle.loads(payload), HEADER_SIZE + length
