"""Unreliable delivery fabric: fault injection, reliable delivery,
crash-recovery.

The synchronization protocols in :mod:`repro.parallel` assume
exactly-once, in-order (per-link FIFO) message delivery.  This package
lets both parallel backends run over a network that violates every one
of those assumptions — seeded drops, duplicates, overtaking copies,
latency noise, even whole-processor crashes — while a reliable-delivery
layer (sequence numbers, acks, timeout retransmission, receiver-side
dedup/reorder buffers) re-establishes the guarantee underneath, so
committed simulation results stay identical to the sequential engine.

Public surface:

* :class:`FaultPlan` / :func:`parse_fault_plan` — what the network does.
* :class:`PerfectFabric` / :class:`ReliableFabric` — how messages move.
* :func:`install_jitter` — convenience: seeded latency noise on a
  machine built with default arguments.
* :func:`checkpoint_processor` / :func:`restore_processor` — durable
  processor images used by crash-recovery.
"""

from .plan import (FaultPlan, LinkFaults, parse_fault_plan,
                   plan_from_dict)
from .recovery import (ProcessorCheckpoint, RuntimeCheckpoint,
                       checkpoint_processor, restore_processor)
from .transport import (Packet, PerfectFabric, ReliableFabric,
                        install_jitter)

__all__ = [
    "FaultPlan",
    "LinkFaults",
    "parse_fault_plan",
    "plan_from_dict",
    "Packet",
    "PerfectFabric",
    "ReliableFabric",
    "install_jitter",
    "ProcessorCheckpoint",
    "RuntimeCheckpoint",
    "checkpoint_processor",
    "restore_processor",
]
