"""Durable processor checkpoints for crash-recovery.

The fabric takes a *durable checkpoint* of every processor at each
global (GVT) round — the one moment both backends are globally
consistent: the modelled machine is single-threaded, and the threaded
backend's rounds are stop-the-world with a fully drained network.  A
checkpoint captures the processor's volatile protocol state — every LP's
state (via the existing ``snapshot``/``restore`` hooks of the
checkpoint-interval machinery), input queues, the Time-Warp processed
log, channel promises, adaptation counters and statistics.

Crashing a processor discards its live state; recovery restores the
latest checkpoint and then reconciles the survivor with the rest of the
world (see :mod:`repro.fabric.transport` for the replay/suppression
protocol layered on the per-link journals).

Non-checkpointable LPs (the paper's heavy-state processes) cannot be
durably saved either; attempting to checkpoint a processor hosting one
raises ``ProtocolError`` — crash-recovery requires a fully
checkpointable placement, exactly as in real PDES deployments.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Set, Tuple

from ..core.stats import RunStats
from ..core.vtime import VirtualTime


@dataclass
class RuntimeCheckpoint:
    """Durable image of one :class:`~repro.parallel.engine.LPRuntime`."""

    mode: Any
    cons_epoch: int
    lp_state: Any
    lp_now: VirtualTime
    queue: List[tuple]
    cancelled: Set[Any]
    negatives: Dict[Any, Any]
    processed: List[Tuple[Any, Any, VirtualTime, List[Any]]]
    channel_clocks: Dict[int, Tuple[int, VirtualTime]]
    last_null_promise: Dict[int, VirtualTime]
    lazy_pending: List[Any]
    reuse_pending: List[Any]
    release_floor: VirtualTime
    executed: int
    squashed: int
    window_executed: int
    window_squashed: int
    blocked_streak: int
    since_switch: int
    since_snapshot: int
    committed: int


@dataclass
class ProcessorCheckpoint:
    """Durable image of one processor's volatile state."""

    clock: float
    gvt_bound: VirtualTime
    local_fifo: List[Any]
    ready: List[tuple]
    blocked: Set[int]
    stats: RunStats
    runtimes: Dict[int, RuntimeCheckpoint] = field(default_factory=dict)


def checkpoint_processor(proc) -> ProcessorCheckpoint:
    """Capture a processor's volatile state at a consistent global point.

    In-flight fabric traffic is deliberately *not* part of the image:
    the reliable layer's per-link journals reconstruct it during
    recovery (sender-side replay), which is what makes the checkpoint a
    purely local object.
    """
    from ..parallel.engine import ProtocolError

    ckpt = ProcessorCheckpoint(
        clock=proc.clock,
        gvt_bound=proc.gvt_bound,
        local_fifo=list(proc.local_fifo),
        ready=list(proc.ready),
        blocked=set(proc.blocked),
        stats=copy.deepcopy(proc.stats),
    )
    for lp_id, runtime in proc.runtimes.items():
        lp = runtime.lp
        if not lp.checkpointable:
            raise ProtocolError(
                f"crash-recovery needs every LP durably checkpointable, "
                f"but {lp.name!r} is not (heavy-state process); disable "
                f"the crash schedule or re-partition")
        ckpt.runtimes[lp_id] = RuntimeCheckpoint(
            mode=runtime.mode,
            cons_epoch=runtime.cons_epoch,
            # The *durable* image, not the cheap rollback snapshot: a
            # checkpoint may be restored in a fresh process (dist
            # kill-recovery) where process-relative state — SignalLP's
            # history length, the live eid counter — has no live object
            # to lean on.
            lp_state=lp.durable_state(),
            lp_now=lp.now,
            queue=list(runtime.queue),
            cancelled=set(runtime.cancelled),
            negatives=dict(runtime.negatives),
            processed=[(e.event, e.pre_snapshot, e.pre_now, list(e.sent))
                       for e in runtime.processed],
            channel_clocks=dict(runtime.channel_clocks),
            last_null_promise=dict(runtime.last_null_promise),
            lazy_pending=list(runtime.lazy_pending),
            reuse_pending=list(runtime.reuse_pending),
            release_floor=runtime.release_floor,
            executed=runtime.executed,
            squashed=runtime.squashed,
            window_executed=runtime.window_executed,
            window_squashed=runtime.window_squashed,
            blocked_streak=runtime.blocked_streak,
            since_switch=runtime.since_switch,
            since_snapshot=runtime.since_snapshot,
            committed=runtime.committed,
        )
    return ckpt


def restore_processor(proc, ckpt: ProcessorCheckpoint) -> None:
    """Overwrite a processor's volatile state with a checkpoint image.

    The crashed processor's inbox (in-flight remote copies) is cleared:
    everything under way is re-created by the peers' journal replay.
    ``cons_epoch`` handling is the caller's job — it must be bumped past
    the crash-time value so stale channel promises held by receivers can
    never collide with post-recovery conservative phases.
    """
    from ..parallel.engine import _Entry

    proc.clock = ckpt.clock
    proc.gvt_bound = ckpt.gvt_bound
    proc.local_fifo = deque(ckpt.local_fifo)
    proc.inbox = []
    proc.ready = list(ckpt.ready)
    proc.blocked = set(ckpt.blocked)
    proc.stats = copy.deepcopy(ckpt.stats)
    for lp_id, image in ckpt.runtimes.items():
        runtime = proc.runtimes[lp_id]
        lp = runtime.lp
        lp.restore_durable(image.lp_state)
        lp.now = image.lp_now
        lp._outbox = []
        runtime.mode = image.mode
        runtime.cons_epoch = image.cons_epoch
        runtime.queue = list(image.queue)
        runtime.cancelled = set(image.cancelled)
        runtime.negatives = dict(image.negatives)
        runtime.processed = [
            _Entry(event, snap, pre_now, list(sent))
            for event, snap, pre_now, sent in image.processed]
        runtime.channel_clocks = dict(image.channel_clocks)
        runtime.last_null_promise = dict(image.last_null_promise)
        runtime.lazy_pending = list(image.lazy_pending)
        runtime.reuse_pending = list(image.reuse_pending)
        runtime.release_floor = image.release_floor
        runtime.executed = image.executed
        runtime.squashed = image.squashed
        runtime.window_executed = image.window_executed
        runtime.window_squashed = image.window_squashed
        runtime.blocked_streak = image.blocked_streak
        runtime.since_switch = image.since_switch
        runtime.since_snapshot = image.since_snapshot
        runtime.committed = image.committed
