"""Delivery fabrics for the modelled multiprocessor.

The machine routes every remote message through a pluggable *fabric*:

* :class:`PerfectFabric` — the historical transport: lossless,
  duplicate-free, per-link FIFO delivery after a fixed latency.  Zero
  overhead; byte-identical behaviour to the pre-fabric machine.
* :class:`ReliableFabric` — a reliable-delivery protocol running over a
  faulty link model (:class:`~repro.fabric.plan.FaultPlan`): per-link
  sequence numbers, receiver-side dedup + reorder buffers restoring
  exactly-once in-order delivery, acknowledgements, timeout-driven
  retransmission with capped exponential backoff, per-link output
  journals, and whole-processor crash-recovery from durable checkpoints.

The synchronization protocol above (optimistic / conservative / mixed /
dynamic) is *unchanged*: it still assumes exactly-once FIFO links, and
the reliable layer re-establishes that guarantee underneath it, whatever
the fault plan does.  Committed results therefore stay bit-identical to
the sequential engine — the property the test suite checks exhaustively.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.event import Event
from ..core.stats import RunStats
from ..core.vtime import VirtualTime
from .plan import FaultPlan, LinkFaults
from .recovery import (ProcessorCheckpoint, checkpoint_processor,
                       restore_processor)

#: A directed processor pair.
Link = Tuple[int, int]


@dataclass(frozen=True)
class Packet:
    """One transmitted copy of a message on a processor link.

    Carries the link identity and the per-link sequence number the
    reliable layer needs for dedup/reordering.  Exposes the event's
    ``time``/``dst``/``src``/``sign`` so the machine's GVT and
    release-floor scans can treat inbox entries uniformly.
    """

    link: Link
    seq: int
    event: Event

    @property
    def time(self) -> VirtualTime:
        return self.event.time

    @property
    def dst(self) -> int:
        return self.event.dst

    @property
    def src(self) -> int:
        return self.event.src

    @property
    def sign(self) -> int:
        return self.event.sign


class PerfectFabric:
    """Lossless FIFO transport (the pre-fabric behaviour, verbatim)."""

    plan: Optional[FaultPlan] = None

    #: Conformance hook (repro.harness): never fires for a perfect
    #: network, but the machine assigns it uniformly.
    tracer = None

    def __init__(self) -> None:
        self.machine = None
        self.stats = RunStats()
        self._seq = itertools.count()

    # -- lifecycle -----------------------------------------------------
    def bind(self, machine) -> None:
        self.machine = machine
        for proc in machine.procs:
            proc.ingress = None

    def on_run_start(self, machine) -> None:
        pass

    # -- data path -----------------------------------------------------
    def send(self, sender, dst_proc, event: Event) -> None:
        sender.clock += self.machine.cost.remote_send
        deliver_at = sender.clock + self.machine.cost.remote_latency
        heapq.heappush(dst_proc.inbox, (deliver_at, next(self._seq), event))

    # -- protocol hooks (all no-ops for a perfect network) -------------
    def poll(self, proc) -> None:
        pass

    def fire_all(self) -> None:
        pass

    def on_gvt_round(self, machine) -> None:
        pass

    def pending_events(self) -> Iterable[Event]:
        return ()

    def has_pending(self) -> bool:
        return False

    def crash(self, index: int) -> None:
        from ..parallel.engine import ProtocolError
        raise ProtocolError(
            "crash-recovery needs the reliable fabric: construct the "
            "machine with a FaultPlan (fault_plan=FaultPlan(...)) to "
            "enable durable checkpoints and journal replay")


@dataclass
class _SenderLink:
    """Sender-side state of one directed processor link."""

    faults: LinkFaults
    next_seq: int = 0
    #: seq -> original event, for every send not yet acknowledged.
    unacked: Dict[int, Event] = field(default_factory=dict)
    #: seq -> transmission attempts so far (for backoff).
    attempts: Dict[int, int] = field(default_factory=dict)
    #: seq -> event for every send retained for recovery replay.
    journal: Dict[int, Event] = field(default_factory=dict)
    #: Antimessage ids already on the wire pre-crash: suppress re-sends.
    spent_anti: Set[object] = field(default_factory=set)


@dataclass
class _ReceiverLink:
    """Receiver-side state of one directed processor link."""

    expected: int = 0
    #: Out-of-order copies parked until the gap below them fills.
    buffer: Dict[int, Event] = field(default_factory=dict)


class ReliableFabric:
    """Reliable exactly-once FIFO delivery over a faulty link model."""

    #: Conformance hook (repro.harness): records drop / retransmit /
    #: durable-checkpoint / crash actions when attached by the machine.
    tracer = None

    def __init__(self, plan: Optional[FaultPlan] = None,
                 recovery: Optional[bool] = None) -> None:
        self.plan = plan or FaultPlan()
        #: Durable checkpoints are taken when recovery is enabled —
        #: implied by a crash schedule, or forced for ``machine.kill()``.
        self.recovery = (self.plan.needs_recovery if recovery is None
                         else recovery)
        self.machine = None
        self.stats = RunStats()
        self._seq = itertools.count()
        self._senders: Dict[Link, _SenderLink] = {}
        self._receivers: Dict[Link, _ReceiverLink] = {}
        #: Copies currently sitting in some inbox, per (link, seq).
        #: Lets the global-stall recovery revive only messages that are
        #: genuinely *lost* instead of blasting every unacked send.
        self._inflight: Dict[Tuple[Link, int], int] = {}
        #: Per-sender-processor retransmit timers: (due, link, seq).
        self._timers: Dict[int, List[Tuple[float, Link, int]]] = {}
        self._checkpoints: Dict[int, ProcessorCheckpoint] = {}
        self._ckpt_sender_next: Dict[int, Dict[Link, int]] = {}
        self._ckpt_recv_expected: Dict[int, Dict[Link, int]] = {}
        self.rto_base = 1.0
        self.rto_max = 16.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, machine) -> None:
        self.machine = machine
        cost = machine.cost
        plan = self.plan
        # The base timeout must comfortably exceed the worst plausible
        # one-way latency, or healthy links drown in spurious (deduped,
        # but costly) retransmissions.
        worst = (cost.remote_latency + plan.jitter
                 + (plan.reorder_magnitude if plan.reorder else 0.0)
                 + (plan.spike_magnitude if plan.spike else 0.0))
        self.rto_base = 4.0 * max(worst, cost.remote_latency, 0.25)
        self.rto_max = 16.0 * self.rto_base
        for proc in machine.procs:
            proc.ingress = self._make_ingress(proc)

    def on_run_start(self, machine) -> None:
        if self.recovery and not self._checkpoints:
            self._take_checkpoints()

    def _make_ingress(self, proc):
        def ingress(item):
            return self._ingress(proc, item)
        return ingress

    def _sender(self, link: Link) -> _SenderLink:
        state = self._senders.get(link)
        if state is None:
            state = _SenderLink(faults=LinkFaults(self.plan, link))
            self._senders[link] = state
        return state

    def _receiver(self, link: Link) -> _ReceiverLink:
        state = self._receivers.get(link)
        if state is None:
            state = _ReceiverLink()
            self._receivers[link] = state
        return state

    # ------------------------------------------------------------------
    # Send side
    # ------------------------------------------------------------------
    def send(self, sender, dst_proc, event: Event) -> None:
        link = (sender.index, dst_proc.index)
        state = self._sender(link)
        if event.sign < 0 and event.eid in state.spent_anti:
            # This cancellation already went out before the crash (it is
            # journaled); the fabric owns completing it.  A second copy
            # would park at the receiver as an unmatchable negative.
            state.spent_anti.discard(event.eid)
            self.stats.suppressed_resends += 1
            return
        sender.clock += self.machine.cost.remote_send
        seq = state.next_seq
        state.next_seq += 1
        state.journal[seq] = event
        state.unacked[seq] = event
        state.attempts[seq] = 1
        self.stats.fabric_sent += 1
        self._transmit(link, seq, event)
        self._arm_timer(sender, link, seq, attempts=1)

    def _transmit(self, link: Link, seq: int, event: Event) -> None:
        state = self._sender(link)
        faults = state.faults
        if faults.should_drop(seq):
            self.stats.dropped += 1
            if self.tracer is not None:
                self.tracer.record("drop", link[0], event.dst, event.time,
                                   seq=seq, to_proc=link[1])
            return  # the armed timer will retransmit
        copies = faults.copies()
        if copies > 1:
            self.stats.duplicated += 1
        src = self.machine.procs[link[0]]
        dst = self.machine.procs[link[1]]
        latency = self.machine.cost.remote_latency
        for _ in range(copies):
            extra, reordered = faults.extra_latency()
            if reordered:
                self.stats.reordered += 1
            deliver_at = src.clock + latency + extra
            key = (link, seq)
            self._inflight[key] = self._inflight.get(key, 0) + 1
            heapq.heappush(dst.inbox,
                           (deliver_at, next(self._seq),
                            Packet(link, seq, event)))

    def _arm_timer(self, sender, link: Link, seq: int,
                   attempts: int) -> None:
        backoff = min(self.rto_base * (2 ** (attempts - 1)), self.rto_max)
        heap = self._timers.setdefault(sender.index, [])
        heapq.heappush(heap, (sender.clock + backoff, link, seq))

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------
    def poll(self, proc) -> None:
        """Fire this processor's due retransmit timers."""
        heap = self._timers.get(proc.index)
        while heap and heap[0][0] <= proc.clock:
            _due, link, seq = heapq.heappop(heap)
            self._maybe_retransmit(link, seq)

    def fire_all(self) -> None:
        """Force-retransmit every *lost* message (global stall rounds).

        A fully stalled machine cannot wait for sender clocks to reach
        timer deadlines — nothing is advancing them — so the recovery
        barrier forces outstanding retransmissions.  Only messages with
        no live copy in any inbox are revived: an unacked message whose
        copy is still queued will be delivered when its processor next
        acts, and blasting it again would flood the receivers with
        to-be-deduped traffic (the stall rounds of lookahead-free
        conservative runs happen constantly).
        """
        for index, heap in list(self._timers.items()):
            # Drain first: _maybe_retransmit re-arms into this same heap,
            # and those fresh timers must survive this sweep.
            entries, heap[:] = list(heap), []
            fired = set()
            for due, link, seq in entries:
                key = (link, seq)
                if key in fired:
                    continue
                if seq not in self._senders[link].unacked:
                    continue  # acknowledged; retire the timer
                if self._inflight.get(key, 0) > 0:
                    # Copy still queued at the receiver: not lost.
                    heapq.heappush(heap, (due, link, seq))
                    continue
                fired.add(key)
                self._maybe_retransmit(link, seq)

    def _maybe_retransmit(self, link: Link, seq: int) -> None:
        state = self._sender(link)
        event = state.unacked.get(seq)
        if event is None:
            state.attempts.pop(seq, None)
            return  # acknowledged since the timer was armed
        sender = self.machine.procs[link[0]]
        if self._inflight.get((link, seq), 0) > 0:
            # A copy is still queued at the receiver — the message is
            # slow, not lost.  Deadlock-recovery rounds fence every
            # clock forward, which would otherwise mass-expire timers
            # and flood the fabric with to-be-deduped retransmissions.
            self._arm_timer(sender, link, seq,
                            attempts=state.attempts.get(seq, 1))
            return
        attempts = state.attempts.get(seq, 1) + 1
        state.attempts[seq] = attempts
        sender.clock += self.machine.cost.remote_send
        self.stats.retransmitted += 1
        if self.tracer is not None:
            self.tracer.record("retransmit", link[0], event.dst,
                               event.time, seq=seq, to_proc=link[1],
                               attempts=attempts)
        self._transmit(link, seq, event)
        self._arm_timer(sender, link, seq, attempts=attempts)

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def _ingress(self, proc, item) -> Tuple[Event, ...]:
        if isinstance(item, Event):  # pragma: no cover - defensive
            return (item,)
        link, seq, event = item.link, item.seq, item.event
        key = (link, seq)
        live = self._inflight.get(key, 0) - 1
        if live > 0:
            self._inflight[key] = live
        else:
            self._inflight.pop(key, None)
        sender = self._sender(link)
        if sender.unacked.pop(seq, None) is not None:
            # Acknowledgement: modelled as an instantaneous control
            # message (its cost rides the remote_recv charge).
            sender.attempts.pop(seq, None)
            sender.faults.forget(seq)
            self.stats.acks += 1
        receiver = self._receiver(link)
        if seq < receiver.expected:
            self.stats.dedup_dropped += 1
            return ()
        if seq > receiver.expected:
            if seq in receiver.buffer:
                self.stats.dedup_dropped += 1
            else:
                receiver.buffer[seq] = event
                self.stats.reorder_buffered += 1
            return ()
        out = [event]
        receiver.expected += 1
        while receiver.expected in receiver.buffer:
            out.append(receiver.buffer.pop(receiver.expected))
            receiver.expected += 1
        return tuple(out)

    # ------------------------------------------------------------------
    # Global-state hooks (GVT, termination, release floors)
    # ------------------------------------------------------------------
    def pending_events(self) -> Iterable[Event]:
        """Every event the fabric still owes a delivery for.

        Unacknowledged sends (possibly dropped — their only copies may
        exist nowhere but the sender's retransmit buffer) and
        out-of-order copies parked in receiver buffers.  GVT and the
        release floors must treat these as future arrivals, or a lost
        message could be committed past.
        """
        for state in self._senders.values():
            for event in state.unacked.values():
                yield event
        for receiver in self._receivers.values():
            for event in receiver.buffer.values():
                yield event

    def has_pending(self) -> bool:
        for state in self._senders.values():
            if state.unacked:
                return True
        for receiver in self._receivers.values():
            if receiver.buffer:
                return True
        return False

    def on_gvt_round(self, machine) -> None:
        for proc in machine.procs:
            self.poll(proc)
        if self.recovery:
            self._take_checkpoints()

    # ------------------------------------------------------------------
    # Crash-recovery
    # ------------------------------------------------------------------
    def _take_checkpoints(self) -> None:
        machine = self.machine
        for proc in machine.procs:
            index = proc.index
            self._checkpoints[index] = checkpoint_processor(proc)
            if self.tracer is not None:
                self.tracer.record("checkpoint", index, ctx="durable")
            self._ckpt_sender_next[index] = {
                link: state.next_seq
                for link, state in self._senders.items()
                if link[0] == index}
            self._ckpt_recv_expected[index] = {
                link: self._receiver(link).expected
                for link in self._senders
                if link[1] == index}
        self._prune_journals()

    def _prune_journals(self) -> None:
        """Discard journal entries covered by the receiver's checkpoint.

        An entry with ``seq < expected-at-checkpoint`` was delivered
        *and* survives inside the receiver's durable image, so no
        recovery can ever need it again.
        """
        for link, state in self._senders.items():
            marks = self._ckpt_recv_expected.get(link[1], {})
            floor = marks.get(link)
            if floor is None:
                continue
            for seq in [s for s in state.journal if s < floor]:
                del state.journal[seq]
                state.faults.forget(seq)

    def crash(self, index: int) -> None:
        """Kill processor ``index`` and recover it from its checkpoint.

        The processor's volatile state (LP states, queues, logs, clock)
        is discarded and replaced by the latest durable checkpoint; the
        fabric then reconciles it with the world:

        * **Incoming links** — every peer replays its journal from the
          checkpoint's delivery horizon, re-feeding both the messages
          the crash destroyed and everything genuinely in flight.
        * **Outgoing links** — messages the dead incarnation sent after
          the checkpoint are injected into the owning LP's
          ``lazy_pending`` list: the restored (deterministic)
          re-execution *reuses* each one it regenerates — the receiver
          already holds it, or the retransmit machinery is still
          delivering it — and cancels, by original event id, any the
          new trajectory provably abandons.  Post-checkpoint
          antimessages are marked *spent* so rollback replays cannot
          emit unmatchable second copies.
        * **Conservative epochs** are bumped past the crash-time value,
          so stale channel promises held by receivers can never collide
          with post-recovery conservative phases.
        """
        from ..parallel.engine import ProtocolError

        machine = self.machine
        if not 0 <= index < len(machine.procs):
            raise ValueError(f"no processor {index}")
        ckpt = self._checkpoints.get(index)
        if ckpt is None:
            raise ProtocolError(
                f"no durable checkpoint for processor {index}: enable "
                f"recovery (a crash schedule or recovery=True) before "
                f"the run starts")
        proc = machine.procs[index]
        self.stats.crashes += 1
        if self.tracer is not None:
            self.tracer.record("crash", index)
        # Copies queued at the dying processor are destroyed with it.
        for _at, _seq, item in proc.inbox:
            if isinstance(item, Packet):
                key = (item.link, item.seq)
                live = self._inflight.get(key, 0) - 1
                if live > 0:
                    self._inflight[key] = live
                else:
                    self._inflight.pop(key, None)
        pre_epochs = {lp_id: runtime.cons_epoch
                      for lp_id, runtime in proc.runtimes.items()}
        pre_next = {link: state.next_seq
                    for link, state in self._senders.items()
                    if link[0] == index}
        restore_processor(proc, ckpt)
        proc.gvt_bound = machine.gvt
        for lp_id, runtime in proc.runtimes.items():
            runtime.cons_epoch = max(pre_epochs.get(lp_id, 0),
                                     runtime.cons_epoch) + 1
        self._reconcile_outgoing(proc, index, pre_next)
        self._replay_incoming(proc, index)
        self.stats.recoveries += 1

    def _reconcile_outgoing(self, proc, index: int,
                            pre_next: Dict[Link, int]) -> None:
        marks = self._ckpt_sender_next.get(index, {})
        for link, live_next in pre_next.items():
            state = self._sender(link)
            base = marks.get(link, 0)
            window = [state.journal[s] for s in range(base, live_next)
                      if s in state.journal]
            anti_eids = {e.eid for e in window if e.sign < 0}
            state.spent_anti |= anti_eids
            for event in window:
                if (event.sign > 0 and not event.is_null
                        and event.eid not in anti_eids):
                    runtime = proc.runtimes.get(event.src)
                    if runtime is not None:
                        runtime.lazy_pending.append(event)
                        # Every injected entry is an outstanding
                        # cancellation; lower the machine's horizon so
                        # no conservative LP commits at its timestamp
                        # before the squash-or-cancel decision lands.
                        if proc.cancel_note is not None:
                            proc.cancel_note(event.time)

    def _replay_incoming(self, proc, index: int) -> None:
        marks = self._ckpt_recv_expected.get(index, {})
        latency = self.machine.cost.remote_latency
        for link, state in self._senders.items():
            if link[1] != index:
                continue
            horizon = marks.get(link, 0)
            receiver = self._receiver(link)
            receiver.expected = horizon
            receiver.buffer.clear()
            src = self.machine.procs[link[0]]
            for seq in sorted(s for s in state.journal if s >= horizon):
                event = state.journal[seq]
                deliver_at = src.clock + latency
                heapq.heappush(proc.inbox,
                               (deliver_at, next(self._seq),
                                Packet(link, seq, event)))
                self.stats.replayed += 1


def install_jitter(machine, rng, magnitude: float = 5.0) -> None:
    """Route the machine's remote traffic through a jittered fabric.

    Historically a test-local hack that monkey-patched processor routes;
    now a thin wrapper that installs a :class:`ReliableFabric` whose
    fault plan adds seeded uniform latency noise.  Per-link sequence
    numbers restore FIFO order at the receiver, so the synchronization
    protocol's in-order channel assumption still holds — the jitter
    explores arrival *interleavings* across links, which is the point.

    ``rng`` may be a ``random.Random`` (a seed is drawn from it) or an
    integer seed.
    """
    if isinstance(rng, random.Random):
        seed = rng.getrandbits(64)
    else:
        seed = int(rng)
    plan = FaultPlan(seed=seed, jitter=magnitude)
    machine.install_fabric(ReliableFabric(plan))
