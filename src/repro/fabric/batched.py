"""Reliable batched delivery for the multiprocess backend.

The procs backend (:mod:`repro.parallel.procs`) ships events between
worker processes as pickled **batches** — one envelope per destination
per act-quantum — so the per-message serialization cost is amortized.
When a :class:`~repro.fabric.plan.FaultPlan` is active, every event
inside a batch still needs the reliable-delivery guarantees the other
backends get from their fabrics.  This module is the per-worker
endpoint providing them:

* **sender side** — per-link sequence numbers, an output journal, an
  unacked map, drop/duplicate/overtake injection drawn from the same
  seeded :class:`~repro.fabric.plan.LinkFaults` dice as the other
  fabrics (latency-valued faults are realised as overtakes, exactly as
  in :mod:`repro.fabric.threaded`);
* **receiver side** — per-link dedup and reorder buffers restoring
  exactly-once in-order delivery, with acknowledgements accumulated
  per batch and flushed as one ack envelope;
* **pump** — the procs backend has neither a model clock nor a
  stop-the-world round, so retransmission is *token-driven*: at each
  GVT token visit, messages that have stayed unacknowledged for a full
  wave are re-posted (dice re-rolled, per-message drop budget capped,
  so delivery is eventually guaranteed);
* **crash support** — checkpoint marks (sender ``next_seq``, receiver
  ``expected`` floors) and the journal-window/replay helpers the
  backend's die/replay protocol is built from.  The journal, the
  unacked map and the sequence counters are *durable by construction*
  (the classic log-before-send assumption): a crash wipes the
  processor, not the message log.

The endpoint is single-owner state: each worker process owns exactly
one, so — unlike :class:`~repro.fabric.threaded.ThreadedFabric` — no
locks are needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.event import Event
from ..core.stats import RunStats
from .plan import FaultPlan, LinkFaults

#: One transmitted copy inside a batch: (per-link sequence no., event).
Item = Tuple[int, Event]


@dataclass
class _OutLink:
    """Sender-side state of one directed worker link."""

    faults: LinkFaults
    next_seq: int = 0
    #: Durable output journal (crash-recovery replays from it).
    journal: Dict[int, Event] = field(default_factory=dict)
    #: seq -> (event, wave last transmitted); durable, like the journal.
    unacked: Dict[int, Tuple[Event, int]] = field(default_factory=dict)
    #: EventIds whose cancellation is already journalled: a recovered
    #: incarnation re-emitting the same antimessage is suppressed once.
    spent_anti: set = field(default_factory=set)
    #: Copies held back to overtake the link's next younger traffic.
    holdback: List[Item] = field(default_factory=list)


@dataclass
class _InLink:
    """Receiver-side state of one directed worker link."""

    expected: int = 0
    buffer: Dict[int, Event] = field(default_factory=dict)


class BatchedEndpoint:
    """One worker's reliable-delivery endpoint over batched IPC."""

    def __init__(self, plan: Optional[FaultPlan], index: int) -> None:
        self.plan = plan or FaultPlan()
        self.index = index
        self.stats = RunStats()
        #: Current GVT wave (the owner bumps it at each token visit);
        #: used to age unacked entries for the retransmit pump.
        self.wave = 0
        self._out: Dict[int, _OutLink] = {}
        self._in: Dict[int, _InLink] = {}
        #: src worker -> seqs delivered since the last ack flush.
        self._acks_pending: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    def _out_link(self, dst: int) -> _OutLink:
        link = self._out.get(dst)
        if link is None:
            link = _OutLink(LinkFaults(self.plan, (self.index, dst)))
            self._out[dst] = link
        return link

    def _in_link(self, src: int) -> _InLink:
        link = self._in.get(src)
        if link is None:
            link = _InLink()
            self._in[src] = link
        return link

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def encode(self, dst: int, events: Iterable[Event]) -> List[Item]:
        """Journal + fault-inject a flush of events into batch items."""
        link = self._out_link(dst)
        stats = self.stats
        items: List[Item] = []
        for event in events:
            if event.sign < 0 and event.eid in link.spent_anti:
                link.spent_anti.discard(event.eid)
                stats.suppressed_resends += 1
                continue
            seq = link.next_seq
            link.next_seq += 1
            link.journal[seq] = event
            link.unacked[seq] = (event, self.wave)
            stats.fabric_sent += 1
            held, link.holdback = link.holdback, []
            if link.faults.should_drop(seq):
                stats.dropped += 1
                items.extend(held)
                continue
            copies = link.faults.copies()
            if copies > 1:
                stats.duplicated += 1
            for _ in range(copies):
                _extra, overtake = link.faults.extra_latency()
                if overtake:
                    stats.reordered += 1
                    link.holdback.append((seq, event))
                else:
                    items.append((seq, event))
            # Held copies go out *after* the current message: they have
            # been overtaken by younger traffic.
            items.extend(held)
        return items

    def ack(self, dst: int, seqs: Iterable[int]) -> None:
        """Process an ack envelope from ``dst`` for our sends to it."""
        link = self._out_link(dst)
        for seq in seqs:
            if link.unacked.pop(seq, None) is not None:
                link.faults.forget(seq)
                self.stats.acks += 1

    def pump(self, wave: int) -> Dict[int, List[Item]]:
        """Token-visit retransmission: items to re-post, per destination.

        Re-posts every holdback copy and every unacked message last
        transmitted at least one full wave ago (``wave - 1`` or older:
        a full circulation has passed, so its ack is overdue).  Drop
        dice are re-rolled per attempt; the per-message budget bounds
        how often the plan may keep losing one message.
        """
        posts: Dict[int, List[Item]] = {}
        for dst, link in self._out.items():
            items = link.holdback
            link.holdback = []
            for seq in sorted(link.unacked):
                event, sent_wave = link.unacked[seq]
                if sent_wave >= wave:
                    continue  # transmitted this wave; ack still in flight
                if link.faults.should_drop(seq):
                    self.stats.dropped += 1
                    link.unacked[seq] = (event, wave)
                    continue
                self.stats.retransmitted += 1
                link.unacked[seq] = (event, wave)
                items.append((seq, event))
            if items:
                posts[dst] = items
        return posts

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def decode(self, src: int, items: Iterable[Item]) -> List[Event]:
        """Unwrap one batch from ``src`` into in-order deliverable events."""
        link = self._in_link(src)
        stats = self.stats
        acks = self._acks_pending.setdefault(src, [])
        out: List[Event] = []
        for seq, event in items:
            acks.append(seq)  # ack every copy so the sender's map clears
            if seq < link.expected:
                stats.dedup_dropped += 1
                continue
            if seq > link.expected:
                if seq in link.buffer:
                    stats.dedup_dropped += 1
                else:
                    link.buffer[seq] = event
                    stats.reorder_buffered += 1
                continue
            out.append(event)
            link.expected += 1
            while link.expected in link.buffer:
                out.append(link.buffer.pop(link.expected))
                link.expected += 1
        return out

    def take_acks(self) -> Dict[int, List[int]]:
        """Collect (and clear) the pending acks, per source worker."""
        acks, self._acks_pending = self._acks_pending, {}
        return acks

    # ------------------------------------------------------------------
    # GVT / termination support
    # ------------------------------------------------------------------
    def pending_events(self) -> Iterable[Event]:
        """Events this endpoint still owes the protocol.

        Unacked copies (the only surviving copy of a dropped message
        lives here), holdback copies, and reorder-parked arrivals all
        pin the local GVT contribution.
        """
        for link in self._out.values():
            for event, _wave in link.unacked.values():
                yield event
            for _seq, event in link.holdback:
                yield event
        for link in self._in.values():
            for event in link.buffer.values():
                yield event

    def quiet(self) -> bool:
        """True when no link owes a delivery or an acknowledgement."""
        if self._acks_pending:
            return False
        for link in self._out.values():
            if link.unacked or link.holdback:
                return False
        for link in self._in.values():
            if link.buffer:
                return False
        return True

    # ------------------------------------------------------------------
    # Crash-recovery support
    # ------------------------------------------------------------------
    def checkpoint_marks(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """(sender next_seq per dst, receiver expected per src)."""
        return ({dst: link.next_seq for dst, link in self._out.items()},
                {src: link.expected for src, link in self._in.items()})

    def rewind_receiver(self, floors: Dict[int, int]) -> None:
        """Crash: rewind delivery horizons to the checkpoint floors.

        Everything at or above a floor will be redelivered — by peers'
        journal replay and by still-queued envelopes — and reassembled
        in order through the normal buffer path.
        """
        for src, link in self._in.items():
            link.expected = floors.get(src, 0)
            link.buffer.clear()
        self._acks_pending.clear()

    def sender_window(self, dst: int, base: int) -> List[Event]:
        """Journalled sends to ``dst`` from seq ``base`` onwards.

        This is the dead incarnation's post-checkpoint output: the
        restored replay reconciles it through the lazy-cancellation
        machinery (reuse what it regenerates, cancel what it abandons).
        """
        link = self._out_link(dst)
        return [link.journal[seq] for seq in range(base, link.next_seq)
                if seq in link.journal]

    def mark_spent_anti(self, dst: int, eids) -> None:
        self._out_link(dst).spent_anti |= set(eids)

    def replay_for(self, dst: int, floor: int) -> List[Item]:
        """Peer-side recovery: re-post journalled sends from ``floor``.

        Entries may already have been delivered and acked — the crashed
        receiver rewound below them, so they count as owed again and
        re-enter the unacked map until re-acknowledged.
        """
        link = self._out_link(dst)
        items: List[Item] = []
        for seq in sorted(s for s in link.journal if s >= floor):
            event = link.journal[seq]
            link.unacked[seq] = (event, self.wave)
            items.append((seq, event))
        self.stats.replayed += len(items)
        return items
