"""Fault plans: seeded, per-link schedules of message-fabric misbehaviour.

A :class:`FaultPlan` describes *how the network lies*: per-link
probabilities of dropping a transmission, duplicating it, letting a copy
overtake younger traffic (reordering), adding uniform latency jitter,
and injecting occasional latency spikes.  It also carries an optional
*crash schedule* — points during a run at which a whole processor loses
its volatile state and must be recovered from its latest checkpoint.

Every random decision is drawn from a per-link ``random.Random`` seeded
from ``(plan.seed, src_proc, dst_proc)`` via the string-seeding path of
CPython's Mersenne Twister (which is deterministic across processes,
unlike ``hash()`` of a string).  The same plan therefore injects the
same faults into the same run every time — a fault run is exactly as
reproducible as a fault-free one.

Liveness guarantee: a plan never drops the same message more than
``max_drops_per_message`` times, so the reliable layer's retransmissions
always succeed within a bounded number of attempts, whatever the drop
probability.  (A plan with ``drop=1.0`` models a link that loses the
first ``max_drops_per_message`` transmissions of *every* message.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class FaultPlan:
    """Seeded per-link fault-injection schedule.

    All probabilities are per *transmission attempt* (a retransmission
    rolls the dice again).  ``crashes`` schedules whole-processor
    failures as ``(progress, processor)`` pairs; the progress unit is
    backend-specific — executed events for the modelled
    :class:`~repro.parallel.machine.ParallelMachine`, completed global
    rounds for the threaded backend.
    """

    seed: int = 0
    #: Probability that a transmission attempt is lost.
    drop: float = 0.0
    #: Probability that a transmission is duplicated (two copies sent).
    duplicate: float = 0.0
    #: Probability that a copy takes an overtaking detour (non-FIFO).
    reorder: float = 0.0
    #: Extra latency (model-time units) of a detoured copy.
    reorder_magnitude: float = 4.0
    #: Uniform latency noise in ``[0, jitter)`` added to every copy.
    jitter: float = 0.0
    #: Probability of a latency spike on a copy.
    spike: float = 0.0
    #: Extra latency of a spiked copy.
    spike_magnitude: float = 25.0
    #: Hard cap on how often one message may be dropped (liveness).
    max_drops_per_message: int = 6
    #: Crash schedule: ``(progress_point, processor_index)`` pairs.
    crashes: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder", "spike"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.max_drops_per_message < 0:
            raise ValueError("max_drops_per_message must be >= 0")

    # ------------------------------------------------------------------
    @property
    def faulty(self) -> bool:
        """True if the plan can perturb delivery at all."""
        return bool(self.drop or self.duplicate or self.reorder
                    or self.jitter or self.spike or self.crashes)

    @property
    def needs_recovery(self) -> bool:
        return bool(self.crashes)

    def rng_for(self, link: Tuple[int, int]) -> random.Random:
        """The deterministic RNG governing one directed processor link."""
        return random.Random(f"{self.seed}/{link[0]}>{link[1]}")

    def with_crashes(self, *crashes: Tuple[int, int]) -> "FaultPlan":
        return replace(self, crashes=self.crashes + tuple(crashes))

    # -- JSON round-trip (replay artifacts, fuzz corpus) ---------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form: only non-default fields, crashes as
        lists.  ``plan_from_dict(plan.to_dict()) == plan``."""
        default = FaultPlan()
        data: Dict[str, object] = {}
        for name in ("seed", "drop", "duplicate", "reorder",
                     "reorder_magnitude", "jitter", "spike",
                     "spike_magnitude", "max_drops_per_message"):
            value = getattr(self, name)
            if value != getattr(default, name):
                data[name] = value
        if self.crashes:
            data["crashes"] = [list(c) for c in self.crashes]
        return data

    def describe(self) -> str:
        parts: List[str] = [f"seed={self.seed}"]
        for name in ("drop", "duplicate", "reorder", "jitter", "spike"):
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={value:g}")
        if self.crashes:
            parts.append("crashes=" + ",".join(
                f"{at}:{proc}" for at, proc in self.crashes))
        return " ".join(parts)


class LinkFaults:
    """Per-link fault state: the RNG plus per-message drop budgets."""

    __slots__ = ("plan", "rng", "_drops")

    def __init__(self, plan: FaultPlan, link: Tuple[int, int]) -> None:
        self.plan = plan
        self.rng = plan.rng_for(link)
        #: seq -> number of times this message has been dropped.
        self._drops: Dict[int, int] = {}

    def should_drop(self, seq: int) -> bool:
        plan = self.plan
        if not plan.drop:
            return False
        if self._drops.get(seq, 0) >= plan.max_drops_per_message:
            return False  # liveness cap: this message may not be lost again
        if self.rng.random() < plan.drop:
            self._drops[seq] = self._drops.get(seq, 0) + 1
            return True
        return False

    def copies(self) -> int:
        """How many copies this (non-dropped) transmission produces."""
        plan = self.plan
        if plan.duplicate and self.rng.random() < plan.duplicate:
            return 2
        return 1

    def extra_latency(self) -> Tuple[float, bool]:
        """(additional latency, was-reordered) for one copy."""
        plan = self.plan
        extra = 0.0
        reordered = False
        if plan.jitter:
            extra += self.rng.random() * plan.jitter
        if plan.reorder and self.rng.random() < plan.reorder:
            extra += self.rng.random() * plan.reorder_magnitude
            reordered = True
        if plan.spike and self.rng.random() < plan.spike:
            extra += plan.spike_magnitude
        return extra, reordered

    def forget(self, seq: int) -> None:
        """Drop the bookkeeping for a delivered message."""
        self._drops.pop(seq, None)


def plan_from_dict(data: Dict[str, object]) -> FaultPlan:
    """Rebuild a :class:`FaultPlan` from :meth:`FaultPlan.to_dict`."""
    kwargs = dict(data)
    crashes = kwargs.pop("crashes", None)
    plan = FaultPlan(**kwargs)  # type: ignore[arg-type]
    if crashes:
        plan = plan.with_crashes(*(tuple(c) for c in crashes))
    return plan


_ALIASES = {
    "drop": "drop", "dup": "duplicate", "duplicate": "duplicate",
    "reorder": "reorder", "reorder_magnitude": "reorder_magnitude",
    "jitter": "jitter", "spike": "spike",
    "spike_magnitude": "spike_magnitude", "seed": "seed",
    "max_drops": "max_drops_per_message",
    "max_drops_per_message": "max_drops_per_message",
}


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse a CLI fault-plan spec like ``"drop=0.05,dup=0.02,seed=7"``.

    Keys: ``drop``, ``dup``, ``reorder``, ``jitter``, ``spike``,
    ``spike_magnitude``, ``reorder_magnitude``, ``seed``, ``max_drops``.
    Crash points are appended with ``crash=STEP:PROC`` (repeatable).
    """
    kwargs: Dict[str, object] = {}
    crashes: List[Tuple[int, int]] = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(f"fault-plan item {item!r} is not key=value")
        key, value = item.split("=", 1)
        key = key.strip().lower()
        value = value.strip()
        if key == "crash":
            at, _, proc = value.partition(":")
            crashes.append((int(at), int(proc)))
            continue
        if key not in _ALIASES:
            raise ValueError(
                f"unknown fault-plan key {key!r}; known: "
                f"{sorted(set(_ALIASES))} and 'crash'")
        field_name = _ALIASES[key]
        if field_name in ("seed", "max_drops_per_message"):
            kwargs[field_name] = int(value)
        else:
            kwargs[field_name] = float(value)
    plan = FaultPlan(**kwargs)  # type: ignore[arg-type]
    if crashes:
        plan = plan.with_crashes(*crashes)
    return plan
