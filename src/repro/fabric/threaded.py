"""Reliable delivery over faulty links for the real-thread backend.

The threaded machine has no model clock, so the modelled fabric's
timer-driven retransmission does not transfer.  Instead the reliable
layer is *round-driven*: faults (drops, duplicates, overtakes) are
injected on the send path while workers run freely, and every
stop-the-world coordinator round runs a **retransmit pump** — with the
world paused, all unacknowledged messages are re-posted (dice re-rolled,
drop budget capped) and inboxes drained to a fixpoint, until no link
owes anything.  Quiescence, GVT, and fossil collection are evaluated
only after the pump, so a lost message can never look like global
completion or be committed past.

Latency-valued faults (``jitter``/``spike``) have no meaning in real
time and are realised as *overtakes*: an affected copy is held back on
its link and posted after the link's next younger message (or flushed by
the pump).  That exercises the same protocol paths — out-of-order
arrival, receiver-side reorder buffering — which is what matters.

Crash-recovery mirrors the modelled fabric: durable processor
checkpoints are taken at the end of each global round (the one moment
the world is stopped *and* the network is provably empty), crash points
are ``(round_index, processor)`` pairs, and recovery replays the peers'
per-link journals.

Locking: each directed link has one leaf lock guarding its sender and
receiver state; the fabric-wide stats have their own.  Link locks are
only ever taken from a worker's send/receive path (never while holding
another link's lock), and ``post`` takes the target's inbox lock last —
the existing no-cycle discipline is preserved.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.event import Event
from ..core.stats import RunStats
from .plan import FaultPlan, LinkFaults
from .recovery import (ProcessorCheckpoint, checkpoint_processor,
                       restore_processor)
from .transport import Packet

Link = Tuple[int, int]


@dataclass
class _LinkState:
    """All per-link protocol state (sender and receiver side)."""

    faults: LinkFaults
    lock: threading.Lock = field(default_factory=threading.Lock)
    next_seq: int = 0
    unacked: Dict[int, Event] = field(default_factory=dict)
    journal: Dict[int, Event] = field(default_factory=dict)
    spent_anti: Set[object] = field(default_factory=set)
    #: Copies held back to overtake the link's next younger message.
    holdback: List[Packet] = field(default_factory=list)
    expected: int = 0
    buffer: Dict[int, Event] = field(default_factory=dict)


class ThreadedFabric:
    """Drop/duplicate/overtake injection + reliable delivery on threads."""

    def __init__(self, plan: Optional[FaultPlan] = None,
                 recovery: Optional[bool] = None) -> None:
        self.plan = plan or FaultPlan()
        self.recovery = (self.plan.needs_recovery if recovery is None
                         else recovery)
        self.stats = RunStats()
        self._stats_lock = threading.Lock()
        self._links: Dict[Link, _LinkState] = {}
        self._links_lock = threading.Lock()
        self.machine = None
        self._checkpoints: Dict[int, ProcessorCheckpoint] = {}
        self._ckpt_sender_next: Dict[int, Dict[Link, int]] = {}
        self._ckpt_recv_expected: Dict[int, Dict[Link, int]] = {}

    def bind(self, machine) -> None:
        self.machine = machine

    def _link(self, link: Link) -> _LinkState:
        state = self._links.get(link)
        if state is None:
            with self._links_lock:
                state = self._links.get(link)
                if state is None:
                    state = _LinkState(faults=LinkFaults(self.plan, link))
                    self._links[link] = state
        return state

    def _count(self, **deltas: int) -> None:
        with self._stats_lock:
            for name, delta in deltas.items():
                setattr(self.stats, name, getattr(self.stats, name) + delta)

    # ------------------------------------------------------------------
    # Send path (called from worker threads)
    # ------------------------------------------------------------------
    def send(self, sender_index: int, target, event: Event) -> None:
        """Route one remote message through the faulty link."""
        link = (sender_index, target.processor.index)
        state = self._link(link)
        posts: List[Packet] = []
        with state.lock:
            if event.sign < 0 and event.eid in state.spent_anti:
                state.spent_anti.discard(event.eid)
                self._count(suppressed_resends=1)
                return
            seq = state.next_seq
            state.next_seq += 1
            state.journal[seq] = event
            state.unacked[seq] = event
            self._count(fabric_sent=1)
            held = state.holdback
            state.holdback = []
            if state.faults.should_drop(seq):
                self._count(dropped=1)
                posts = held  # pump will retransmit the dropped message
            else:
                copies = state.faults.copies()
                if copies > 1:
                    self._count(duplicated=1)
                for _ in range(copies):
                    packet = Packet(link, seq, event)
                    _extra, overtake = state.faults.extra_latency()
                    if overtake:
                        self._count(reordered=1)
                        state.holdback.append(packet)
                    else:
                        posts.append(packet)
                # Held copies go out *after* the current message: they
                # have been overtaken by younger traffic.
                posts.extend(held)
        for packet in posts:
            target.post(packet)

    # ------------------------------------------------------------------
    # Receive path (called from worker threads via drain_pending)
    # ------------------------------------------------------------------
    def receive(self, item) -> Tuple[Event, ...]:
        """Unwrap one posted packet into zero or more in-order events."""
        if isinstance(item, Event):
            return (item,)
        state = self._link(item.link)
        with state.lock:
            seq = item.seq
            if state.unacked.pop(seq, None) is not None:
                state.faults.forget(seq)
                self._count(acks=1)
            if seq < state.expected:
                self._count(dedup_dropped=1)
                return ()
            if seq > state.expected:
                if seq in state.buffer:
                    self._count(dedup_dropped=1)
                else:
                    state.buffer[seq] = item.event
                    self._count(reorder_buffered=1)
                return ()
            out = [item.event]
            state.expected += 1
            while state.expected in state.buffer:
                out.append(state.buffer.pop(state.expected))
                state.expected += 1
            return tuple(out)

    # ------------------------------------------------------------------
    # Round pump (world stopped; coordinator thread only)
    # ------------------------------------------------------------------
    def pump(self, workers) -> bool:
        """Re-post every outstanding copy; True if anything was posted.

        Called from the coordinator's drain-fixpoint loop with every
        worker parked, so no locks race.  Drop dice are re-rolled per
        attempt; the per-message drop budget guarantees each message is
        eventually posted, so the fixpoint terminates with every link's
        ``unacked`` empty and every reorder buffer drained.
        """
        posted = False
        for link, state in list(self._links.items()):
            with state.lock:
                packets = state.holdback
                state.holdback = []
                for seq in sorted(state.unacked):
                    if state.faults.should_drop(seq):
                        self._count(dropped=1)
                        continue
                    self._count(retransmitted=1)
                    packets.append(Packet(link, seq, state.unacked[seq]))
            if packets:
                posted = True
                target = workers[link[1]]
                for packet in packets:
                    target.post(packet)
        return posted

    def quiet(self) -> bool:
        """True when no link owes a delivery (post-pump invariant)."""
        for state in self._links.values():
            with state.lock:
                if state.unacked or state.buffer or state.holdback:
                    return False
        return True

    # ------------------------------------------------------------------
    # Crash-recovery (coordinator thread, world stopped, network empty)
    # ------------------------------------------------------------------
    def take_checkpoints(self, workers) -> None:
        for worker in workers:
            proc = worker.processor
            index = proc.index
            self._checkpoints[index] = checkpoint_processor(proc)
            self._ckpt_sender_next[index] = {
                link: state.next_seq
                for link, state in self._links.items() if link[0] == index}
            self._ckpt_recv_expected[index] = {
                link: state.expected
                for link, state in self._links.items() if link[1] == index}
        # Prune journals: entries the receiver's durable image already
        # contains can never be needed by any future recovery.
        for link, state in self._links.items():
            floor = self._ckpt_recv_expected.get(link[1], {}).get(link)
            if floor is None:
                continue
            with state.lock:
                for seq in [s for s in state.journal if s < floor]:
                    del state.journal[seq]
                    state.faults.forget(seq)

    def crash(self, workers, index: int, gvt) -> None:
        """Crash + recover processor ``index`` (world stopped, net empty).

        The pump has already run to quiescence, so unlike the modelled
        fabric there is no in-flight traffic to reason about: recovery
        is checkpoint restore, journal replay of everything past the
        checkpoint's delivery horizon, and reconciliation of the dead
        incarnation's own post-checkpoint output through the
        lazy-cancellation reuse machinery.
        """
        from ..parallel.engine import ProtocolError

        ckpt = self._checkpoints.get(index)
        if ckpt is None:
            raise ProtocolError(
                f"no durable checkpoint for processor {index}: the crash "
                f"schedule fired before the first completed round")
        worker = workers[index]
        proc = worker.processor
        self._count(crashes=1)
        pre_epochs = {lp_id: runtime.cons_epoch
                      for lp_id, runtime in proc.runtimes.items()}
        pre_next = {link: state.next_seq
                    for link, state in self._links.items()
                    if link[0] == index}
        restore_processor(proc, ckpt)
        worker.pending.clear()  # volatile: rebuilt by journal replay
        proc.gvt_bound = gvt
        for lp_id, runtime in proc.runtimes.items():
            runtime.cons_epoch = max(pre_epochs.get(lp_id, 0),
                                     runtime.cons_epoch) + 1
        # Outgoing reconciliation.
        marks = self._ckpt_sender_next.get(index, {})
        for link, live_next in pre_next.items():
            state = self._link(link)
            base = marks.get(link, 0)
            window = [state.journal[s] for s in range(base, live_next)
                      if s in state.journal]
            anti_eids = {e.eid for e in window if e.sign < 0}
            state.spent_anti |= anti_eids
            for event in window:
                if (event.sign > 0 and not event.is_null
                        and event.eid not in anti_eids):
                    runtime = proc.runtimes.get(event.src)
                    if runtime is not None:
                        runtime.lazy_pending.append(event)
                        # See ReliableFabric: injected entries are
                        # outstanding cancellations — lower the horizon.
                        if proc.cancel_note is not None:
                            proc.cancel_note(event.time)
        # Incoming replay.
        recv_marks = self._ckpt_recv_expected.get(index, {})
        replayed = 0
        for link, state in self._links.items():
            if link[1] != index:
                continue
            horizon = recv_marks.get(link, 0)
            with state.lock:
                state.expected = horizon
                state.buffer.clear()
                for seq in sorted(s for s in state.journal
                                  if s >= horizon):
                    event = state.journal[seq]
                    state.unacked[seq] = event
                    replayed += 1
        self._count(recoveries=1, replayed=replayed)
        # The replayed messages sit in `unacked`; the caller's pump
        # fixpoint re-posts and delivers them in order.
