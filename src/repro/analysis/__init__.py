"""Speedup measurement and table/figure rendering for the evaluation."""

from .report import ascii_chart, format_table, speedup_table, stats_table
from .speedup import (SpeedupCurve, SpeedupPoint, measure_speedups,
                      sequential_baseline)
from .diff import DiffReport, Divergence, diff_results
from .vcd import vcd_string, write_vcd
from .waves import render_waves

__all__ = [
    "SpeedupCurve", "SpeedupPoint", "measure_speedups",
    "sequential_baseline",
    "ascii_chart", "format_table", "speedup_table", "stats_table",
    "write_vcd", "vcd_string",
    "diff_results", "DiffReport", "Divergence",
    "render_waves",
]
