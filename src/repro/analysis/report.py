"""Plain-text rendering of the paper's tables and figures.

Benchmarks print the same rows/series the paper reports: speedup-vs-
processors curves (Figs. 6, 8, 10), the arbitrary-vs-user-consistent
run-time table (Fig. 4), and the circuit size inventory (Sec. 4).  The
renderers are deliberately dependency-free (no plotting) so the harness
runs anywhere; an ASCII chart stands in for each figure.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from .speedup import SpeedupCurve


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Monospace table with per-column alignment."""
    columns = [[str(h)] + [str(row[i]) for row in rows]
               for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(cell).ljust(w)
                                for cell, w in zip(row, widths)))
    return "\n".join(lines)


def speedup_table(curves: Mapping[str, SpeedupCurve],
                  title: str) -> str:
    """One row per processor count, one column per protocol."""
    protocols = list(curves.keys())
    counts = curves[protocols[0]].processors()
    rows = []
    for i, processors in enumerate(counts):
        row: List[object] = [processors]
        for protocol in protocols:
            row.append(f"{curves[protocol].points[i].speedup:.2f}")
        rows.append(row)
    return format_table(["P"] + protocols, rows, title=title)


def ascii_chart(curves: Mapping[str, SpeedupCurve], title: str,
                height: int = 12) -> str:
    """A rough speedup-vs-P chart, one glyph per protocol."""
    glyphs = "o*x+#@"
    protocols = list(curves.keys())
    counts = curves[protocols[0]].processors()
    top = max(max(c.speedups()) for c in curves.values())
    top = max(top, 1.0)
    width = len(counts)
    grid = [[" "] * width for _ in range(height)]
    for gi, protocol in enumerate(protocols):
        for ci, speedup in enumerate(curves[protocol].speedups()):
            row = height - 1 - int(round((speedup / top) * (height - 1)))
            row = min(max(row, 0), height - 1)
            cell = grid[row][ci]
            grid[row][ci] = glyphs[gi] if cell == " " else "&"
    lines = [title]
    for r, row in enumerate(grid):
        level = top * (height - 1 - r) / (height - 1)
        lines.append(f"{level:5.1f} | " + "  ".join(row))
    lines.append("      +-" + "---" * width)
    lines.append("        " + "  ".join(f"{c:d}"[-1] for c in counts)
                 + "   (processors: " + ",".join(map(str, counts)) + ")")
    legend = "  ".join(f"{glyphs[i]}={p}" for i, p in enumerate(protocols))
    lines.append("        " + legend + "  (&=overlap)")
    return "\n".join(lines)


def stats_table(rows: Sequence[Sequence[object]], title: str) -> str:
    return format_table(
        ["config", "time", "events", "rollbacks", "antimsgs", "nulls",
         "recoveries", "switches"],
        rows, title=title)
