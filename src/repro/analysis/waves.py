"""ASCII timing diagrams of committed traces.

A terminal-friendly rendering of waveforms, in the spirit of classic
`_/‾` timing diagrams: scalar signals as level lines with edges, vector
signals as labelled value spans.  Complements the VCD export for quick
looks without a viewer.

    clk   : _/‾\\_/‾\\_/‾\\_/‾\\_
    q     : 0000|0001   |0010

Each column is one tick of the chosen resolution; delta-cycle detail is
collapsed to the final value at each physical time (like the VCD
export).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.vtime import format_time
from ..vhdl.values import StdLogic


def _nice_step(raw: int) -> int:
    """Round a step up to 1/2/5 x 10^k femtoseconds (readable axis)."""
    magnitude = 1
    while magnitude * 10 <= raw:
        magnitude *= 10
    for mult in (1, 2, 5, 10):
        if mult * magnitude >= raw:
            return mult * magnitude
    return raw


def _collapse(trace) -> List[Tuple[int, object]]:
    per_pt: Dict[int, object] = {}
    for vt, value in trace:
        per_pt[vt.pt] = value
    return sorted(per_pt.items())


def _value_at(series: List[Tuple[int, object]], initial, t: int):
    value = initial
    for pt, v in series:
        if pt > t:
            break
        value = v
    return value


def _scalar_glyphs(prev, value) -> str:
    """Two glyphs: edge marker + level."""
    def level(v):
        if isinstance(v, StdLogic):
            if v.char in ("1", "H"):
                return "‾"
            if v.char in ("0", "L"):
                return "_"
            return "x"
        return "‾" if v else "_"

    now = level(value)
    if prev is None:
        return now + now
    before = level(prev)
    if before == now:
        return now + now
    if before == "_" and now == "‾":
        return "/" + now
    if before == "‾" and now == "_":
        return "\\" + now
    return "|" + now


def _vector_text(value) -> str:
    if isinstance(value, tuple):
        return "".join(b.char for b in value)
    return str(value)


def render_waves(result, signals: Optional[Sequence[str]] = None,
                 width: int = 64) -> str:
    """Render traced signals as an ASCII timing diagram.

    ``width`` is the number of time columns; the time axis spans the
    full committed run.
    """
    names = list(signals) if signals is not None \
        else sorted(result.traces.keys())
    for name in names:
        if name not in result.traces:
            raise KeyError(f"no trace for signal {name!r}")
    series = {name: _collapse(result.traces[name]) for name in names}
    initials = getattr(result, "initials", None) or {}
    end = max((pts[-1][0] for pts in series.values() if pts), default=0)
    if end == 0:
        end = 1
    step = _nice_step(max(1, -(-end // max(1, width - 1))))
    ticks = list(range(0, end + step, step))[:width]

    label_width = max((len(n) for n in names), default=0)
    lines: List[str] = []
    for name in names:
        initial = initials.get(name)
        first = series[name][0][1] if series[name] else \
            (initial if initial is not None else result.finals.get(name))
        is_scalar = isinstance(first, StdLogic) or isinstance(first, bool)
        if is_scalar:
            row = []
            prev = None
            for t in ticks:
                value = _value_at(series[name], initial, t)
                row.append(_scalar_glyphs(prev, value)
                           if value is not None else "..")
                prev = value
            lines.append(f"{name.ljust(label_width)} : " + "".join(row))
        else:
            row_chars: List[str] = []
            prev_text = None
            for t in ticks:
                value = _value_at(series[name], initial, t)
                text = _vector_text(value) if value is not None else "?"
                if text != prev_text:
                    cell = "|" + text
                    prev_text = text
                else:
                    cell = ""
                row_chars.append(cell.ljust(2)[:max(2, len(cell))])
            lines.append(f"{name.ljust(label_width)} : "
                         + "".join(row_chars))
    lines.append(f"{''.ljust(label_width)}   0 .. "
                 f"{format_time(ticks[-1] if ticks else 0)} "
                 f"({format_time(step)}/column)")
    return "\n".join(lines)
