"""Trace comparison: the library form of the equivalence invariant.

The whole reproduction rests on "every engine commits the same
waveforms".  ``diff_results`` turns that from a test-suite assertion
into a user-facing tool: compare two :class:`SimulationResult`s and get
a structured report of every divergence — missing signals, extra or
missing value changes, value mismatches, timing differences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.vtime import VirtualTime, format_time


@dataclass(frozen=True)
class Divergence:
    """One difference between two traces."""

    signal: str
    kind: str          # 'missing-signal' | 'extra-change' |
                       # 'missing-change' | 'value' | 'time'
    index: int         # change index within the trace (-1: whole signal)
    left: Optional[Tuple[VirtualTime, object]] = None
    right: Optional[Tuple[VirtualTime, object]] = None

    def describe(self) -> str:
        where = f"{self.signal}[{self.index}]" if self.index >= 0 \
            else self.signal
        if self.kind == "missing-signal":
            side = "right" if self.left is not None else "left"
            return f"{where}: only traced on the {side} side"
        if self.kind == "extra-change":
            t, v = self.left
            return (f"{where}: left has extra change "
                    f"{v!r} @ {format_time(t.pt)}")
        if self.kind == "missing-change":
            t, v = self.right
            return (f"{where}: left misses change "
                    f"{v!r} @ {format_time(t.pt)}")
        if self.kind == "value":
            (_tl, vl), (_tr, vr) = self.left, self.right
            return f"{where}: value {vl!r} != {vr!r}"
        (tl, _vl), (tr, _vr) = self.left, self.right
        return (f"{where}: time {format_time(tl.pt)}@{tl.lt} != "
                f"{format_time(tr.pt)}@{tr.lt}")


@dataclass
class DiffReport:
    """All divergences between two simulation results."""

    divergences: List[Divergence] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.divergences

    def summary(self, limit: int = 20) -> str:
        if self.identical:
            return "traces identical"
        lines = [f"{len(self.divergences)} divergence(s):"]
        for div in self.divergences[:limit]:
            lines.append(f"  {div.describe()}")
        if len(self.divergences) > limit:
            lines.append(f"  ... and {len(self.divergences) - limit} more")
        return "\n".join(lines)


def diff_results(left, right, physical_only: bool = False) -> DiffReport:
    """Compare the committed traces of two simulation results.

    ``physical_only=True`` ignores the logical (delta) component of
    timestamps — useful when comparing runs whose delta counts may
    legitimately differ (e.g. different kernels) but whose physical-time
    behaviour must agree.
    """
    report = DiffReport()
    names = sorted(set(left.traces) | set(right.traces))
    for name in names:
        if name not in left.traces:
            report.divergences.append(Divergence(
                name, "missing-signal", -1,
                right=(VirtualTime(0, 0), None)))
            continue
        if name not in right.traces:
            report.divergences.append(Divergence(
                name, "missing-signal", -1,
                left=(VirtualTime(0, 0), None)))
            continue
        _diff_signal(report, name, left.traces[name],
                     right.traces[name], physical_only)
    return report


def _diff_signal(report: DiffReport, name: str, left, right,
                 physical_only: bool) -> None:
    for index in range(max(len(left), len(right))):
        if index >= len(left):
            report.divergences.append(Divergence(
                name, "missing-change", index, right=right[index]))
            continue
        if index >= len(right):
            report.divergences.append(Divergence(
                name, "extra-change", index, left=left[index]))
            continue
        (tl, vl), (tr, vr) = left[index], right[index]
        if vl != vr:
            report.divergences.append(Divergence(
                name, "value", index, left=left[index],
                right=right[index]))
        elif (tl.pt != tr.pt) or (not physical_only and tl.lt != tr.lt):
            report.divergences.append(Divergence(
                name, "time", index, left=left[index],
                right=right[index]))
