"""Speedup measurement against the sequential baseline.

The paper reports speedups "relative to the 1 processor execution
(improved for sequential simulation)": the baseline is the plain
sequential event-driven simulator with no protocol machinery, not the
parallel engine on one processor.  We model the sequential run time as
``committed events x event cost`` (the sequential simulator does nothing
per event beyond executing it), and the parallel run time as the
machine's makespan, so

    speedup(P) = T_seq / makespan(P).

A ``SpeedupCurve`` holds one protocol's series over processor counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.stats import RunStats
from ..parallel.cost import SHARED_MEMORY, CostModel
from ..parallel.machine import ParallelOutcome, run_parallel
from ..core.sequential import SequentialSimulator


@dataclass
class SpeedupPoint:
    processors: int
    speedup: float
    makespan: float
    outcome: ParallelOutcome


@dataclass
class SpeedupCurve:
    protocol: str
    baseline_time: float
    points: List[SpeedupPoint] = field(default_factory=list)

    def processors(self) -> List[int]:
        return [p.processors for p in self.points]

    def speedups(self) -> List[float]:
        return [p.speedup for p in self.points]

    def at(self, processors: int) -> SpeedupPoint:
        for point in self.points:
            if point.processors == processors:
                return point
        raise KeyError(processors)


def sequential_baseline(build: Callable[[], "object"],
                        until: Optional[int] = None,
                        cost: CostModel = SHARED_MEMORY) -> float:
    """Modelled run time of the plain sequential simulator."""
    design = build()
    model = design.elaborate()
    sim = SequentialSimulator(model)
    stats = sim.run(until=until)
    return stats.events_committed * cost.event


def measure_speedups(build: Callable[[], "object"],
                     protocols: Sequence[str],
                     processor_counts: Sequence[int],
                     until: Optional[int] = None,
                     cost: CostModel = SHARED_MEMORY,
                     **machine_kwargs) -> Dict[str, SpeedupCurve]:
    """Run the full protocol x processor-count sweep for one circuit.

    ``build`` must return a *fresh* Design each call (simulation mutates
    LP state).  Returns one curve per protocol.
    """
    baseline = sequential_baseline(build, until=until, cost=cost)
    curves: Dict[str, SpeedupCurve] = {}
    for protocol in protocols:
        curve = SpeedupCurve(protocol=protocol, baseline_time=baseline)
        for processors in processor_counts:
            design = build()
            model = design.elaborate()
            outcome = run_parallel(model, processors=processors,
                                   protocol=protocol, until=until,
                                   cost=cost, **machine_kwargs)
            curve.points.append(SpeedupPoint(
                processors=processors,
                speedup=baseline / outcome.makespan,
                makespan=outcome.makespan,
                outcome=outcome))
        curves[protocol] = curve
    return curves
