"""Command-line interface: compile, simulate, and study VHDL designs.

Usage (also via ``python -m repro``):

    repro simulate design.vhd --top tb --until 1us --vcd wave.vcd
    repro parallel design.vhd --top tb -p 8 --protocol dynamic
    repro run      design.vhd --top tb -p 4 --backend procs \
                   --protocol optimistic
    repro report   design.vhd --top tb
    repro bench    fsm --processors 1 2 4 8

The ``simulate`` command runs the sequential reference engine;
``parallel`` (alias ``run``) executes a parallel backend — the
modelled multiprocessor by default, or real OS threads
(``--backend threads``) / real multiprocessing workers with batched
IPC and token-ring GVT (``--backend procs``) — under any of the
paper's protocol configurations and prints the synchronization
statistics;
``report`` prints the elaborated LP graph inventory; ``bench`` sweeps a
built-in benchmark circuit.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import measure_speedups, speedup_table
from .analysis.vcd import write_vcd
from .core.vtime import format_time, parse_time
from .parallel.engine import ProtocolError
from .vhdl import simulate, simulate_parallel
from .vhdl.frontend import elaborate

#: Built-in circuit choices, shared by every subcommand that accepts
#: one (check / fuzz, and run / parallel as a file-less alternative) —
#: mirrors :data:`repro.harness.check.CIRCUITS`.
CIRCUIT_CHOICES = ("fsm", "random", "random-full",
                   "fsm-vhdl", "iir-vhdl", "behav")

#: Scenario axes of the fuzzing campaign (mirrors
#: :data:`repro.campaign.axes.ALL_AXES`).
AXIS_CHOICES = ("topology", "faults", "schedules", "lazy", "exec")

#: Process execution modes (mirrors
#: :data:`repro.vhdl.kernel.EXEC_MODES`): tree-walking interpretation
#: or the closure programs of :mod:`repro.vhdl.compile`.
EXEC_CHOICES = ("interp", "compiled")


def _parse_until(text: Optional[str]) -> Optional[int]:
    """'500ns' / '1 us' / '1000' (fs) -> femtoseconds."""
    if text is None:
        return None
    text = text.strip()
    for unit in ("fs", "ps", "ns", "us", "ms", "sec", "s"):
        if text.endswith(unit):
            number = text[: -len(unit)].strip()
            return parse_time(float(number), unit)
    return int(text)


def _load_design(args):
    with open(args.file) as handle:
        source = handle.read()
    traced = True if not args.trace else tuple(args.trace)
    return elaborate(source, top=args.top, traced=traced)


def _parse_circuit_params(items: Optional[List[str]]):
    """``["gates=12", "delays=0,0,1000000"]`` -> builder kwargs.

    Comma-separated values become tuples of ints (the ``delays``
    palette); single values parse as int when possible.
    """
    params = {}
    for item in items or []:
        key, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(
                f"repro: --circuit-param {item!r} is not KEY=VALUE")
        key, value = key.strip(), value.strip()
        if "," in value:
            params[key] = tuple(int(v) for v in value.split(","))
        else:
            try:
                params[key] = int(value)
            except ValueError:
                raise SystemExit(
                    f"repro: --circuit-param {key} needs an int or "
                    f"comma-separated ints, got {value!r}")
    return params


def _resolve_design(args):
    """A Design from either a VHDL file or a built-in circuit.

    ``run``/``parallel`` historically required a VHDL source file while
    ``check`` only knew the built-in circuits; both now accept both
    spellings, so any configuration the conformance harness or the
    fuzzing campaign flags can be re-run directly.
    """
    from .harness.check import build_circuit

    if args.circuit is not None and args.file is not None:
        raise SystemExit("repro: give a VHDL file or --circuit, not both")
    if args.circuit is not None:
        return build_circuit(args.circuit, args.circuit_seed,
                             _parse_circuit_params(args.circuit_param))
    if args.file is None:
        raise SystemExit("repro: need a VHDL file or --circuit NAME")
    if args.top is None:
        raise SystemExit("repro: --top is required with a VHDL file")
    return _load_design(args)


def _add_design_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", help="VHDL source file")
    parser.add_argument("--top", required=True,
                        help="top entity to elaborate")
    parser.add_argument("--until", default=None,
                        help="simulation horizon, e.g. '500ns' or '1us'")
    parser.add_argument("--trace", nargs="*", default=None,
                        help="signals to trace (default: all)")
    parser.add_argument("--vcd", default=None,
                        help="write waveforms to this VCD file")
    parser.add_argument("--waves", action="store_true",
                        help="print an ASCII timing diagram")


def _add_exec_arg(parser: argparse.ArgumentParser,
                  default: Optional[str] = "interp") -> None:
    parser.add_argument("--exec", default=default,
                        choices=list(EXEC_CHOICES),
                        help="process execution mode: tree-walking "
                             "interpretation (reference) or closure "
                             "programs lowered by repro.vhdl.compile "
                             "(bit-identical, lower per-event cost)")


def cmd_simulate(args) -> int:
    design = _load_design(args)
    result = simulate(design, until=_parse_until(args.until),
                      exec_mode=args.exec)
    print(f"{design.lp_count} LPs, "
          f"{result.stats.events_committed} events, "
          f"final time {format_time(result.stats.final_time.pt)}")
    if args.waves:
        from .analysis.waves import render_waves
        print(render_waves(result))
    if args.vcd:
        write_vcd(result, args.vcd)
        print(f"waveforms written to {args.vcd}")
    elif not args.waves:
        for name in sorted(result.traces):
            changes = len(result.traces[name])
            print(f"  {name}: {changes} change(s), "
                  f"final {result.finals[name]!r}")
    return 0


def cmd_parallel(args) -> int:
    from .fabric import parse_fault_plan

    design = _resolve_design(args)
    plan = None
    if args.fault_plan or args.crash:
        plan = parse_fault_plan(args.fault_plan or "")
        if args.crash:
            crashes = []
            for spec in args.crash:
                at, _, proc = spec.partition(":")
                crashes.append((int(at), int(proc)))
            plan = plan.with_crashes(*crashes)
    backend = getattr(args, "backend", "model")
    extra = {}
    if backend != "model":
        extra["timeout_s"] = args.timeout
        if args.watchdog is not None:
            extra["watchdog_s"] = args.watchdog
    elif args.watchdog is not None:
        extra["watchdog"] = int(args.watchdog)
    if backend in ("procs", "dist"):
        extra["quantum"] = args.quantum
    if backend == "procs" and args.start_method is not None:
        extra["start_method"] = args.start_method
    if backend == "dist" and args.hosts:
        extra["hosts"] = args.hosts
    try:
        result = simulate_parallel(design, processors=args.processors,
                                   protocol=args.protocol,
                                   partition=args.partition,
                                   until=_parse_until(args.until),
                                   backend=backend,
                                   exec_mode=args.exec,
                                   fault_plan=plan, **extra)
    except ProtocolError as failure:
        report = getattr(failure, "stall_report", None)
        if report is not None:
            print(report.describe())
        else:
            print(f"protocol error: {failure}")
        partial = getattr(failure, "partial_stats", None)
        if partial is not None:
            print(f"  partial stats : {partial.events_committed} "
                  f"committed, {partial.rollbacks} rollbacks, "
                  f"{partial.liveness_summary()}")
        return 1
    stats = result.stats
    print(f"{design.lp_count} LPs on {args.processors} processors "
          f"({backend} backend, {args.protocol}, "
          f"{args.partition} partitioning)")
    if result.parallel_time is not None:
        print(f"  modelled makespan : {result.parallel_time:.1f} units")
    print(f"  committed events  : {stats.events_committed}")
    print(f"  rollbacks         : {stats.rollbacks} "
          f"(efficiency {stats.efficiency:.3f})")
    print(f"  antimessages      : {stats.antimessages}")
    print(f"  deadlock recovery : {stats.deadlock_recoveries} rounds")
    print(f"  mode switches     : {stats.mode_switches}")
    if backend in ("procs", "dist"):
        print(f"  batched IPC       : {stats.ipc_summary()}")
    if backend == "dist":
        print(f"  network           : {stats.net_summary()}")
    if plan is not None:
        print(f"  fault plan        : {plan.describe()}")
        print(f"  fabric            : {stats.fabric_summary()}")
    if args.vcd:
        write_vcd(result, args.vcd)
        print(f"waveforms written to {args.vcd}")
    return 0


def cmd_serve(args) -> int:
    """Run a distributed-backend worker daemon until told to exit."""
    from .parallel.dist import serve

    serve(host=args.host, port=args.port, once=args.once)
    return 0


def cmd_check(args) -> int:
    """Conformance check: explore schedules, verify invariants + oracle.

    Exit status: 0 = every explored interleaving clean; 1 = at least
    one invariant violation / oracle diff (failing schedules are saved
    as replayable artifacts when ``--artifact-dir`` is set).
    """
    from .harness import (Checker, Schedule, check_backend,
                          check_circuits, replay_schedule)

    circuit_params = _parse_circuit_params(args.circuit_param)

    exec_mode = args.exec or "interp"

    if args.backend != "model":
        backend_kwargs = {}
        if args.backend == "procs" and args.start_method is not None:
            backend_kwargs["start_method"] = args.start_method
        if args.backend == "dist" and getattr(args, "hosts", None):
            backend_kwargs["hosts"] = args.hosts
        failed = False
        for circuit in args.circuit:
            run = check_backend(circuit, backend=args.backend,
                                protocol=args.protocol,
                                processors=args.processors,
                                circuit_seed=args.circuit_seed,
                                circuit_params=circuit_params,
                                exec_mode=exec_mode,
                                **backend_kwargs)
            status = "CLEAN" if run.ok else "FAILED"
            print(f"{circuit} [{run.label}]: {status}")
            for violation in run.violations:
                failed = True
                print(f"  VIOLATION: {violation}")
        return 1 if failed else 0

    if args.replay:
        try:
            schedule = Schedule.load(args.replay)
        except (OSError, ValueError, KeyError) as failure:
            print(f"cannot load schedule artifact {args.replay}: "
                  f"{failure}")
            return 1
        # --exec overrides the artifact's recorded mode (so a corpus
        # recorded under the interpreter re-proves itself compiled).
        run = replay_schedule(schedule, exec_mode=args.exec)
        print(f"replayed {schedule.circuit} "
              f"({schedule.processors}p, {schedule.protocol}): "
              f"{len(run.decisions)} decisions")
        for violation in run.violations:
            print(f"  VIOLATION: {violation}")
        print("result: " + ("CLEAN" if run.ok else "FAILED"))
        return 0 if run.ok else 1

    watchdog = None if args.watchdog is None else int(args.watchdog)

    if args.record:
        checker = Checker(args.circuit[0], circuit_seed=args.circuit_seed,
                          processors=args.processors,
                          protocol=args.protocol,
                          lazy_cancellation=args.lazy_cancellation,
                          watchdog=watchdog,
                          circuit_params=circuit_params,
                          exec_mode=exec_mode)
        schedule, run = checker.record()
        schedule.save(args.record)
        print(f"recorded {schedule.circuit} schedule "
              f"({len(schedule.decisions)} decisions, "
              f"digest {schedule.wave_digest[:12]}...) -> {args.record}")
        for violation in run.violations:
            print(f"  VIOLATION: {violation}")
        return 0 if run.ok else 1

    reports = check_circuits(args.circuit, schedules=args.schedules,
                             seed=args.seed,
                             circuit_seed=args.circuit_seed,
                             processors=args.processors,
                             protocol=args.protocol,
                             artifact_dir=args.artifact_dir,
                             lazy_cancellation=args.lazy_cancellation,
                             watchdog=watchdog,
                             circuit_params=circuit_params,
                             exec_mode=exec_mode)
    failed = False
    for report in reports:
        print(report.summary())
        for run in report.failures:
            failed = True
            for violation in run.violations[:4]:
                print(f"  [{run.label}] {violation}")
        for path in report.artifacts:
            print(f"  artifact: {path}")
    return 1 if failed else 0


def cmd_fuzz(args) -> int:
    """Differential fuzzing campaign over the scenario axes.

    Exit status: 0 = every scenario clean; 1 = at least one failure
    (new signatures are shrunk and persisted when ``--corpus`` is set).
    """
    from .campaign import Campaign, Corpus, ScenarioSpace

    space = ScenarioSpace(seed=args.seed, backends=args.backend,
                          axes=args.axes, circuit=args.circuit,
                          processors=tuple(args.processors))
    corpus = Corpus(args.corpus) if args.corpus else None
    if corpus is not None and len(corpus):
        print(f"corpus {args.corpus}: {len(corpus)} known failure(s)")

    def progress(outcome, summary) -> None:
        if not args.verbose:
            return
        status = "ok" if outcome.ok else "FAIL"
        print(f"  [{summary.scenarios:4d}] {status:4s} "
              f"{outcome.duration_s:6.2f}s "
              f"{outcome.scenario.describe()}")

    campaign = Campaign(space, budget_s=args.budget,
                        max_scenarios=args.max_scenarios,
                        corpus=corpus, until=_parse_until(args.until),
                        on_scenario=progress)
    summary = campaign.run()
    print(summary.describe())
    return 0 if summary.ok else 1


def _parse_run_spec(text: str):
    """``"backend=procs,protocol=optimistic,p=2,exec=compiled"`` ->
    RunSpec kwargs."""
    from .service import RunSpec

    kwargs = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(f"repro: --run item {item!r} is not "
                             f"KEY=VALUE")
        key = key.strip()
        value = value.strip()
        if key in ("p", "processors"):
            kwargs["processors"] = int(value)
        elif key in ("backend", "protocol", "label"):
            kwargs[key] = value
        elif key == "exec":
            kwargs["exec_mode"] = value
        elif key == "until":
            kwargs["until"] = _parse_until(value)
        else:
            raise SystemExit(f"repro: unknown --run key {key!r} "
                             f"(use backend/protocol/p/exec/until/label)")
    return RunSpec(**kwargs)


def _artifact_source(args):
    """Resolve the elab/batch design input to a service DesignSource.

    Returns ``(source, cache)``: VHDL files go through the
    content-addressed elaboration cache; built-in circuits become
    builder callables (structural-hash artifacts, no cache)."""
    from .harness.check import build_circuit
    from .service import VhdlJob
    from .vhdl.cache import ElabCache

    if args.circuit is not None and args.file is not None:
        raise SystemExit("repro: give a VHDL file or --circuit, not both")
    if args.circuit is not None:
        circuit = args.circuit
        seed = args.circuit_seed
        params = _parse_circuit_params(args.circuit_param)
        return (lambda: build_circuit(circuit, seed, params)), None
    if args.file is None:
        raise SystemExit("repro: need a VHDL file or --circuit NAME")
    if args.top is None:
        raise SystemExit("repro: --top is required with a VHDL file")
    with open(args.file) as handle:
        source = handle.read()
    cache = None if args.no_cache else ElabCache(args.cache_dir)
    return VhdlJob(source=source, top=args.top,
                   exec_mode=args.exec or "interp"), cache


def cmd_elab(args) -> int:
    """Elaborate once into a content-addressed artifact (via the cache)."""
    from .service import RunService

    source, cache = _artifact_source(args)
    service = RunService(cache=cache, max_workers=1)
    artifact, how = service.resolve(source)
    sizes = artifact.size_report()
    print(f"artifact {artifact.name}: {artifact.content_hash}")
    print(f"  resolved      : {how}"
          + ("" if cache is None else f" (cache: {cache.root})"))
    print(f"  lp graph      : {sizes['lps']} LPs "
          f"({sizes['signals']} signals, {sizes['processes']} processes, "
          f"{sizes['channels']} channels)")
    print(f"  payload       : {len(artifact.payload)} bytes")
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(artifact.to_bytes())
        print(f"  written to    : {args.output}")
    return 0


def cmd_batch(args) -> int:
    """Elaborate each design once, fan N runs onto a worker pool."""
    from .harness.check import wave_digest
    from .service import BatchJob, RunService, RunSpec

    source, cache = _artifact_source(args)
    specs = [_parse_run_spec(text) for text in (args.run or [])]
    if not specs:
        specs = [RunSpec(backend="seq",
                         exec_mode=args.exec or "interp")]
    specs = [spec for spec in specs for _ in range(args.repeat)]
    service = RunService(cache=cache, max_workers=args.jobs)
    batch = service.run_batch([BatchJob(design=source, runs=specs)])
    digests = set()
    for outcome in batch.outcomes:
        spec = outcome.spec
        label = spec.label or (
            f"{spec.backend}"
            + ("" if spec.backend == "seq"
               else f"/{spec.protocol}/p{spec.processors}"))
        if outcome.ok:
            digest = wave_digest(outcome.result)
            digests.add(digest)
            print(f"  [{outcome.run_index:3d}] {label:28s} ok "
                  f"{outcome.duration_s:6.2f}s  "
                  f"{outcome.result.stats.events_committed:7d} events  "
                  f"digest {digest[:12]}")
        else:
            print(f"  [{outcome.run_index:3d}] {label:28s} "
                  f"FAILED: {outcome.error}")
    summary = batch.summary()
    print(f"batch: {summary['runs']} runs, {summary['failed']} failed, "
          f"{summary['elaborations']} cold elaboration(s), "
          f"{summary['cache_hits']} cache hit(s), "
          f"{summary['wall_time_s']}s")
    print(f"  fleet: {batch.fleet.events_committed} committed, "
          f"{batch.fleet.rollbacks} rollbacks, "
          f"efficiency {batch.fleet.efficiency:.3f}")
    if len(digests) > 1:
        print(f"  WARNING: {len(digests)} distinct wave digests — "
              f"runs of one design should commit identical waves")
        return 1
    return 0 if batch.ok else 1


def cmd_report(args) -> int:
    design = _load_design(args)
    report = design.size_report()
    print(f"design {design.name}:")
    for key in ("signals", "processes", "lps", "channels"):
        print(f"  {key:10s} {report[key]}")
    from .core.model import SyncMode
    conservative = sum(
        1 for lp in design.model.lps
        if design.model.sync_modes[lp.lp_id] is SyncMode.CONSERVATIVE)
    print(f"  conservative-tagged LPs (mixed heuristic): {conservative}")
    return 0


def cmd_bench(args) -> int:
    from .circuits import build_dct, build_fsm, build_iir

    builders = {
        "fsm": lambda: build_fsm(cycles=args.cycles).design,
        "iir": lambda: build_iir().design,
        "dct": lambda: build_dct().design,
    }
    build = builders[args.circuit]
    curves = measure_speedups(build, args.protocols, args.processors,
                              max_steps=200_000_000)
    print(speedup_table(curves, f"{args.circuit} speedup"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel and distributed VHDL simulation "
                    "(Lungeanu & Shi, DATE 2000 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate",
                           help="run the sequential reference engine")
    _add_design_args(p_sim)
    _add_exec_arg(p_sim)
    p_sim.set_defaults(handler=cmd_simulate)

    for alias in ("parallel", "run"):
        p_par = sub.add_parser(
            alias,
            help=("run a parallel backend"
                  if alias == "run"
                  else "run the modelled parallel machine"))
        p_par.add_argument("file", nargs="?", default=None,
                           help="VHDL source file (or use --circuit)")
        p_par.add_argument("--top", default=None,
                           help="top entity to elaborate (VHDL file)")
        p_par.add_argument("--until", default=None,
                           help="simulation horizon, e.g. '500ns'")
        p_par.add_argument("--trace", nargs="*", default=None,
                           help="signals to trace (default: all)")
        p_par.add_argument("--vcd", default=None,
                           help="write waveforms to this VCD file")
        p_par.add_argument("--waves", action="store_true",
                           help="print an ASCII timing diagram")
        p_par.add_argument("--circuit", default=None,
                           choices=list(CIRCUIT_CHOICES),
                           help="run a built-in circuit instead of a "
                                "VHDL file (same choices as check/fuzz)")
        p_par.add_argument("--circuit-seed", type=int, default=0,
                           help="seed for the built-in circuit builder")
        p_par.add_argument("--circuit-param", action="append",
                           default=None, metavar="KEY=VALUE",
                           help="builder override, e.g. gates=12 or "
                                "delays=0,0,1000000 (repeatable)")
        p_par.add_argument("-p", "--processors", type=int, default=4)
        p_par.add_argument("--protocol", default="dynamic",
                           choices=["optimistic", "conservative", "mixed",
                                    "dynamic"])
        p_par.add_argument("--backend", default="model",
                           choices=["model", "threads", "procs", "dist"],
                           help="execution backend: the deterministic "
                                "modelled multiprocessor, OS threads, "
                                "real multiprocessing workers with "
                                "batched IPC + token-ring GVT, or "
                                "distributed TCP workers (same ring "
                                "over asyncio; see 'repro serve')")
        p_par.add_argument("--partition", default="round_robin",
                           choices=["round_robin", "block", "bfs"])
        p_par.add_argument("--quantum", type=int, default=64,
                           help="events per act-quantum between IPC "
                                "flushes (threads/procs/dist backends)")
        p_par.add_argument("--hosts", nargs="+", default=None,
                           metavar="HOST:PORT",
                           help="dist backend: pre-started 'repro "
                                "serve' daemons to use, one per "
                                "worker in index order; workers "
                                "beyond the list are auto-spawned "
                                "on localhost")
        p_par.add_argument("--start-method", default=None,
                           choices=["fork", "spawn", "forkserver"],
                           help="procs-backend worker start method "
                                "(default: fork when available, else "
                                "spawn; under spawn workers rebuild "
                                "their machines from the pickled "
                                "pristine model)")
        p_par.add_argument("--timeout", type=float, default=120.0,
                           help="wall-clock budget in seconds "
                                "(threads/procs backends)")
        p_par.add_argument("--watchdog", type=float, default=None,
                           metavar="BOUND",
                           help="liveness watchdog bound: machine steps "
                                "without GVT progress (model backend) or "
                                "seconds (threads/procs).  On by default "
                                "at a generous bound; 0 disables.  A "
                                "diagnosed stall prints a forensic "
                                "report instead of hanging")
        p_par.add_argument("--fault-plan", default=None, metavar="SPEC",
                           help="inject message-fabric faults, e.g. "
                                "'drop=0.05,dup=0.02,reorder=0.1,seed=7' "
                                "(keys: drop, dup, reorder, jitter, "
                                "spike, seed, max_drops; the reliable-"
                                "delivery layer keeps results "
                                "sequential-identical)")
        p_par.add_argument("--crash", action="append", default=None,
                           metavar="STEP:PROC",
                           help="crash processor PROC after STEP "
                                "executed events (model/threads) or "
                                "GVT commits (procs) and recover it "
                                "from its latest checkpoint "
                                "(repeatable)")
        _add_exec_arg(p_par)
        p_par.set_defaults(handler=cmd_parallel)

    p_srv = sub.add_parser(
        "serve",
        help="host distributed-backend workers on this machine "
             "(dist backend; trusted networks only — frames are "
             "pickles)")
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: loopback; "
                            "bind a LAN address for remote "
                            "coordinators)")
    p_srv.add_argument("--port", type=int, default=7421,
                       help="TCP port; 0 picks an ephemeral port, "
                            "announced as 'REPRO-DIST-WORKER PORT=N' "
                            "on stdout")
    p_srv.add_argument("--once", action="store_true",
                       help="exit after serving one coordinator run "
                            "(used by the auto-spawn path)")
    p_srv.set_defaults(handler=cmd_serve)

    p_chk = sub.add_parser(
        "check",
        help="conformance-check the protocol over explored schedules")
    p_chk.add_argument("--circuit", nargs="+",
                       default=["fsm", "random"],
                       choices=list(CIRCUIT_CHOICES),
                       help="built-in circuits to explore")
    p_chk.add_argument("--schedules", type=int, default=25,
                       help="distinct interleavings to explore per "
                            "circuit")
    p_chk.add_argument("--seed", type=int, default=0,
                       help="base seed for random schedules")
    p_chk.add_argument("--circuit-seed", type=int, default=0,
                       help="seed for the random-logic circuit builder")
    p_chk.add_argument("-p", "--processors", type=int, default=2)
    p_chk.add_argument("--protocol", default="dynamic",
                       choices=["optimistic", "conservative", "mixed",
                                "dynamic"])
    p_chk.add_argument("--backend", default="model",
                       choices=["model", "threads", "procs", "dist"],
                       help="'model' explores controlled schedules; "
                            "'threads'/'procs'/'dist' run the "
                            "differential oracle against a real "
                            "parallel run (OS-chosen interleaving; "
                            "'dist' spans TCP worker processes)")
    p_chk.add_argument("--hosts", nargs="+", default=None,
                       metavar="HOST:PORT",
                       help="dist backend: pre-started 'repro serve' "
                            "daemons (default: auto-spawn localhost "
                            "workers)")
    p_chk.add_argument("--start-method", default=None,
                       choices=["fork", "spawn", "forkserver"],
                       help="worker start method for --backend procs "
                            "(spawn exercises the artifact rebuild "
                            "path; default: fork when available)")
    p_chk.add_argument("--artifact-dir", default=None,
                       help="write failing schedules here as replayable "
                            "JSON artifacts")
    p_chk.add_argument("--lazy-cancellation", action="store_true",
                       help="explore with lazy cancellation enabled "
                            "(the configuration of the seed-360472 "
                            "deadlock)")
    p_chk.add_argument("--watchdog", type=float, default=None,
                       metavar="STEPS",
                       help="step watchdog bound for explored runs "
                            "(default: on, generous; 0 disables)")
    p_chk.add_argument("--circuit-param", action="append",
                       default=None, metavar="KEY=VALUE",
                       help="circuit-builder override, e.g. gates=12 "
                            "or delays=0,0,1000000 (repeatable; same "
                            "axes the fuzz campaign explores)")
    p_chk.add_argument("--record", default=None, metavar="PATH",
                       help="record the canonical schedule of the first "
                            "--circuit to PATH and exit")
    p_chk.add_argument("--replay", default=None, metavar="PATH",
                       help="replay a schedule artifact and re-verify it")
    # Default None: a replay uses the artifact's recorded mode unless
    # overridden; exploration/record default to the interpreter.
    _add_exec_arg(p_chk, default=None)
    p_chk.set_defaults(handler=cmd_check)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="run a differential fuzzing campaign over scenario axes")
    p_fuzz.add_argument("--budget", type=float, default=60.0,
                        metavar="SECONDS",
                        help="wall-clock campaign budget")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed (same seed = same scenario "
                             "stream)")
    p_fuzz.add_argument("--corpus", default=None, metavar="DIR",
                        help="failure corpus directory: new signatures "
                             "are shrunk and saved here; known ones "
                             "only counted")
    p_fuzz.add_argument("--backend", nargs="+", default=None,
                        choices=["model", "threads", "procs", "dist"],
                        help="restrict the backend axis (default: all "
                             "in-process backends; dist is opt-in — it "
                             "spawns TCP worker daemons per scenario)")
    p_fuzz.add_argument("--axes", nargs="+", default=None,
                        choices=list(AXIS_CHOICES),
                        help="scenario axes to vary (default: all)")
    p_fuzz.add_argument("--circuit", default="random",
                        choices=list(CIRCUIT_CHOICES),
                        help="circuit family to fuzz")
    p_fuzz.add_argument("--max-scenarios", type=int, default=None,
                        help="stop after this many scenarios even "
                             "with budget left")
    p_fuzz.add_argument("-p", "--processors", type=int, nargs="+",
                        default=[2, 3],
                        help="processor counts to sample from")
    p_fuzz.add_argument("--until", default=None,
                        help="simulation horizon per scenario")
    p_fuzz.add_argument("-v", "--verbose", action="store_true",
                        help="print one line per scenario")
    p_fuzz.set_defaults(handler=cmd_fuzz)

    def _add_artifact_source_args(p) -> None:
        p.add_argument("file", nargs="?", default=None,
                       help="VHDL source file (or use --circuit)")
        p.add_argument("--top", default=None,
                       help="top entity to elaborate (VHDL file)")
        p.add_argument("--circuit", default=None,
                       choices=list(CIRCUIT_CHOICES),
                       help="use a built-in circuit instead of a "
                            "VHDL file")
        p.add_argument("--circuit-seed", type=int, default=0,
                       help="seed for the built-in circuit builder")
        p.add_argument("--circuit-param", action="append",
                       default=None, metavar="KEY=VALUE",
                       help="circuit-builder override (repeatable)")
        p.add_argument("--cache-dir", default=None,
                       help="elaboration cache directory (default: "
                            "~/.cache/repro/elab or $REPRO_CACHE_DIR)")
        p.add_argument("--no-cache", action="store_true",
                       help="skip the elaboration cache entirely")

    p_elab = sub.add_parser(
        "elab",
        help="elaborate once into a content-addressed artifact")
    _add_artifact_source_args(p_elab)
    _add_exec_arg(p_elab)
    p_elab.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="also write the framed artifact blob here")
    p_elab.set_defaults(handler=cmd_elab)

    p_batch = sub.add_parser(
        "batch",
        help="elaborate once, fan N runs onto a worker pool")
    _add_artifact_source_args(p_batch)
    _add_exec_arg(p_batch)
    p_batch.add_argument("--run", action="append", default=None,
                         metavar="SPEC",
                         help="one run configuration, e.g. "
                              "'backend=procs,protocol=optimistic,p=2' "
                              "(keys: backend/protocol/p/exec/until/"
                              "label; repeatable; default: one "
                              "sequential run)")
    p_batch.add_argument("--repeat", type=int, default=1,
                         help="repeat every --run spec this many times")
    p_batch.add_argument("--jobs", type=int, default=4,
                         help="worker-pool width for the fan-out")
    p_batch.set_defaults(handler=cmd_batch)

    p_rep = sub.add_parser("report", help="print the LP graph inventory")
    p_rep.add_argument("file")
    p_rep.add_argument("--top", required=True)
    p_rep.add_argument("--trace", nargs="*", default=None)
    p_rep.set_defaults(handler=cmd_report)

    p_bench = sub.add_parser("bench",
                             help="sweep a built-in benchmark circuit")
    p_bench.add_argument("circuit", choices=["fsm", "iir", "dct"])
    p_bench.add_argument("--processors", type=int, nargs="+",
                         default=[1, 2, 4, 8])
    p_bench.add_argument("--protocols", nargs="+",
                         default=["optimistic", "conservative",
                                  "dynamic"])
    p_bench.add_argument("--cycles", type=int, default=8)
    p_bench.set_defaults(handler=cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
