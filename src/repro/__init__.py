"""repro: parallel and distributed VHDL simulation via PDES.

A from-scratch reproduction of *Parallel and Distributed VHDL Simulation*
(Lungeanu & Shi, DATE 2000): a distributed VHDL kernel mapping signals and
processes onto logical processes, a `(physical, logical)` virtual-time
tie-breaking scheme for the VHDL delta cycle, and a lookahead-free
self-adaptive optimistic/conservative PDES protocol, evaluated on a
modelled multiprocessor.

Public entry points:

* :mod:`repro.vhdl` -- build designs and simulate them,
* :mod:`repro.core` -- the protocol-independent PDES substrate,
* :mod:`repro.parallel` -- the modelled parallel machine and protocols,
* :mod:`repro.circuits` -- the paper's benchmark circuits,
* :mod:`repro.analysis` -- speedup measurement and report rendering.
"""

__version__ = "1.0.0"
