"""Protocol-independent PDES core: virtual time, events, LPs, engines."""

from .event import Event, EventId, EventKind
from .lp import Channel, FunctionLP, LogicalProcess, SinkLP
from .model import Model, SyncMode
from .sequential import SequentialSimulator
from .stats import RunStats
from .vtime import (FS, INFINITY, MS, NS, PHASE_ASSIGN, PHASE_DRIVING,
                    PHASE_EFFECTIVE, PHASES_PER_CYCLE, PS, SEC, US,
                    VirtualTime, ZERO, format_time, parse_time)

__all__ = [
    "Event", "EventId", "EventKind",
    "Channel", "FunctionLP", "LogicalProcess", "SinkLP",
    "Model", "SyncMode",
    "SequentialSimulator", "RunStats",
    "VirtualTime", "ZERO", "INFINITY",
    "FS", "PS", "NS", "US", "MS", "SEC",
    "PHASE_ASSIGN", "PHASE_DRIVING", "PHASE_EFFECTIVE", "PHASES_PER_CYCLE",
    "format_time", "parse_time",
]
