"""Timestamped events exchanged between logical processes.

An event carries a destination LP, a virtual-time stamp, a *kind* used by
the receiving LP to dispatch, and an opaque payload.  For Time Warp the
event also records its sender, the sender's virtual time when it was sent
(``send_time``), a per-sender sequence number (so a positive message and
its antimessage can be matched), and a sign (+1 normal, -1 antimessage).

Events order primarily by receive timestamp.  Ties at equal ``(pt, lt)``
are — per the paper's *arbitrary* simultaneous-event model — semantically
free to process in any order; we nevertheless break them deterministically
(by kind priority, then sender id, then sequence number) so that test runs
are reproducible.  A dedicated test shuffles equal-time ties to check that
the results really are order-independent.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Optional, Tuple

from .vtime import VirtualTime


class EventKind(IntEnum):
    """Dispatch tags for events.

    The integer values double as deterministic tie-break priorities among
    events with equal virtual time at one LP (lower value first).  The
    VHDL cycle never depends on this order — that is the whole point of
    the ``(pt, lt)`` tie-breaking — but determinism keeps traces stable.
    """

    #: Null message: carries only a timestamp promise (conservative sync).
    NULL = 0
    #: Process -> signal: a signal assignment (payload: Assignment).
    SIGNAL_ASSIGN = 1
    #: Signal-internal: driver transactions mature at this time.
    SIGNAL_DRIVE = 2
    #: Signal-internal: apply the resolution function and broadcast.
    SIGNAL_RESOLVE = 3
    #: Signal -> process: new effective value (payload: (signal_id, value)).
    SIGNAL_UPDATE = 4
    #: Process-internal: resume process execution.
    PROCESS_RUN = 5
    #: Process-internal: a wait-statement timeout expired.
    PROCESS_TIMEOUT = 6
    #: Generic application event for plain PDES models (tests, examples).
    USER = 7


@dataclass(frozen=True)
class EventId:
    """Globally unique event identity: (sender LP id, sender sequence no.).

    An antimessage carries the same ``EventId`` as the positive message it
    cancels; the pair annihilates wherever the two meet.
    """

    src: int
    seq: int

    def __lt__(self, other: "EventId") -> bool:
        return (self.src, self.seq) < (other.src, other.seq)


_seq_counter = itertools.count()


@dataclass(frozen=True)
class Event:
    """An immutable timestamped message between LPs."""

    time: VirtualTime
    kind: EventKind
    dst: int
    src: int
    payload: Any = None
    sign: int = 1
    eid: Optional[EventId] = None
    send_time: VirtualTime = field(default=VirtualTime(0, 0))
    #: Conservative-promise tag, stamped by the parallel fabric at send
    #: time: the sender's conservative epoch if it was in conservative
    #: mode when the message left, -1 otherwise (speculative sends carry
    #: no promise).  Receivers only trust ``send_time`` as a channel
    #: promise when this matches the sender's current epoch — a promise
    #: from a *previous* conservative phase, or one minted while the
    #: sender was optimistic, may be violated by a later rollback.
    epoch: int = -1

    @property
    def is_antimessage(self) -> bool:
        return self.sign < 0

    @property
    def is_null(self) -> bool:
        return self.kind is EventKind.NULL

    def sort_key(self) -> Tuple:
        """Total order: timestamp, then deterministic tie-breaking."""
        eid = self.eid or EventId(self.src, -1)
        return (self.time, int(self.kind), eid.src, eid.seq, self.sign)

    def antimessage(self) -> "Event":
        """The negative twin of this event (Time Warp cancellation).

        Antimessages never carry a channel promise (``epoch = -1``): they
        exist precisely because the sender rolled back.
        """
        if self.sign < 0:
            raise ValueError("cannot negate an antimessage")
        return Event(time=self.time, kind=self.kind, dst=self.dst,
                     src=self.src, payload=self.payload, sign=-1,
                     eid=self.eid, send_time=self.send_time)

    def stamped(self, epoch: int) -> "Event":
        """A copy carrying a conservative-promise epoch tag."""
        import dataclasses
        return dataclasses.replace(self, epoch=epoch)

    def matches(self, other: "Event") -> bool:
        """True if self and other are a +/- pair for the same message."""
        return (self.eid is not None and self.eid == other.eid
                and self.sign == -other.sign)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = "-" if self.is_antimessage else ""
        return (f"{tag}{self.kind.name}@{self.time} "
                f"{self.src}->{self.dst} {self.payload!r}")


def fresh_event_id(src: int) -> EventId:
    """Mint a process-wide unique event id for sender ``src``."""
    return EventId(src, next(_seq_counter))
