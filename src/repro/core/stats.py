"""Run statistics collected by every engine.

The paper's evaluation compares protocols by run time and, qualitatively,
by their overheads (rollbacks, blocking, null messages, memory).  Every
engine fills a :class:`RunStats` so benchmarks and tests can report the
same quantities uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .vtime import VirtualTime, ZERO


@dataclass
class RunStats:
    """Counters accumulated over one simulation run."""

    #: Committed (i.e. never rolled back) event executions.
    events_committed: int = 0
    #: Total event executions including ones later rolled back.
    events_executed: int = 0
    #: Number of rollbacks performed (optimistic/adaptive engines).
    rollbacks: int = 0
    #: Events squashed by rollbacks (executed - committed, tracked live).
    events_rolled_back: int = 0
    #: Antimessages sent.
    antimessages: int = 0
    #: Positive/negative pairs annihilated in input queues.
    annihilations: int = 0
    #: Null messages sent (conservative with lookahead).
    null_messages: int = 0
    #: Times a conservative LP had input pending but nothing safe.
    blocked_polls: int = 0
    #: Global deadlock-recovery rounds (lookahead-free conservative).
    deadlock_recoveries: int = 0
    #: GVT computations performed.
    gvt_rounds: int = 0
    #: State snapshots taken.
    snapshots: int = 0
    #: Snapshots reclaimed by fossil collection.
    fossils_collected: int = 0
    #: LP mode switches performed by the dynamic adaptation.
    mode_switches: int = 0
    #: Messages a lazy-cancellation re-execution regenerated identically
    #: (reused in place: neither resent nor cancelled).
    lazy_reused: int = 0
    #: Events re-executed during coast-forward (interval checkpointing:
    #: a rollback lands on the nearest earlier snapshot and silently
    #: replays forward to the target state).
    coast_forward_events: int = 0
    #: Peak simultaneous speculative (uncommitted) event log entries —
    #: the memory the paper says optimism "demands huge amounts" of.
    peak_speculative: int = 0
    #: Final GVT / furthest committed virtual time.
    final_time: VirtualTime = ZERO
    #: Executed events per LP id (load observation for partitioning).
    events_per_lp: Dict[int, int] = field(default_factory=dict)

    def count_execution(self, lp_id: int) -> None:
        self.events_executed += 1
        self.events_per_lp[lp_id] = self.events_per_lp.get(lp_id, 0) + 1

    @property
    def efficiency(self) -> float:
        """Fraction of executed events that were ultimately useful."""
        if self.events_executed == 0:
            return 1.0
        return self.events_committed / self.events_executed

    def merge(self, other: "RunStats") -> None:
        """Fold another processor's counters into this one."""
        self.events_committed += other.events_committed
        self.events_executed += other.events_executed
        self.rollbacks += other.rollbacks
        self.events_rolled_back += other.events_rolled_back
        self.antimessages += other.antimessages
        self.annihilations += other.annihilations
        self.null_messages += other.null_messages
        self.blocked_polls += other.blocked_polls
        self.deadlock_recoveries += other.deadlock_recoveries
        self.gvt_rounds += other.gvt_rounds
        self.snapshots += other.snapshots
        self.fossils_collected += other.fossils_collected
        self.mode_switches += other.mode_switches
        self.lazy_reused += other.lazy_reused
        self.coast_forward_events += other.coast_forward_events
        self.peak_speculative = max(self.peak_speculative,
                                    other.peak_speculative)
        self.final_time = max(self.final_time, other.final_time)
        for lp_id, count in other.events_per_lp.items():
            self.events_per_lp[lp_id] = (
                self.events_per_lp.get(lp_id, 0) + count)

    def summary(self) -> str:
        return (f"committed={self.events_committed} "
                f"executed={self.events_executed} "
                f"rollbacks={self.rollbacks} "
                f"antimsgs={self.antimessages} "
                f"nulls={self.null_messages} "
                f"deadlock_recoveries={self.deadlock_recoveries} "
                f"mode_switches={self.mode_switches} "
                f"efficiency={self.efficiency:.3f}")
