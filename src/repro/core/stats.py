"""Run statistics collected by every engine.

The paper's evaluation compares protocols by run time and, qualitatively,
by their overheads (rollbacks, blocking, null messages, memory).  Every
engine fills a :class:`RunStats` so benchmarks and tests can report the
same quantities uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .vtime import VirtualTime, ZERO


@dataclass
class RunStats:
    """Counters accumulated over one simulation run."""

    #: Committed (i.e. never rolled back) event executions.
    events_committed: int = 0
    #: Total event executions including ones later rolled back.
    events_executed: int = 0
    #: Number of rollbacks performed (optimistic/adaptive engines).
    rollbacks: int = 0
    #: Events squashed by rollbacks (executed - committed, tracked live).
    events_rolled_back: int = 0
    #: Antimessages sent.
    antimessages: int = 0
    #: Positive/negative pairs annihilated in input queues.
    annihilations: int = 0
    #: Null messages sent (conservative with lookahead).
    null_messages: int = 0
    #: Times a conservative LP had input pending but nothing safe.
    blocked_polls: int = 0
    #: Global deadlock-recovery rounds (lookahead-free conservative).
    deadlock_recoveries: int = 0
    #: GVT computations performed.
    gvt_rounds: int = 0
    #: State snapshots taken.
    snapshots: int = 0
    #: Snapshots reclaimed by fossil collection.
    fossils_collected: int = 0
    #: LP mode switches performed by the dynamic adaptation.
    mode_switches: int = 0
    #: Messages a lazy-cancellation re-execution regenerated identically
    #: (reused in place: neither resent nor cancelled).
    lazy_reused: int = 0
    #: Events re-executed during coast-forward (interval checkpointing:
    #: a rollback lands on the nearest earlier snapshot and silently
    #: replays forward to the target state).
    coast_forward_events: int = 0
    #: Peak simultaneous speculative (uncommitted) event log entries —
    #: the memory the paper says optimism "demands huge amounts" of.
    peak_speculative: int = 0
    #: Final GVT / furthest committed virtual time.
    final_time: VirtualTime = ZERO
    #: Executed events per LP id (load observation for partitioning).
    events_per_lp: Dict[int, int] = field(default_factory=dict)

    # -- delivery-fabric counters (repro.fabric) -----------------------
    #: Remote messages handed to the fabric (unique sends, not copies).
    fabric_sent: int = 0
    #: Transmission attempts lost by the fault plan.
    dropped: int = 0
    #: Transmissions the fault plan duplicated.
    duplicated: int = 0
    #: Copies that took an overtaking (non-FIFO) detour.
    reordered: int = 0
    #: Timeout-driven retransmissions performed by the reliable layer.
    retransmitted: int = 0
    #: Copies discarded by receiver-side duplicate suppression.
    dedup_dropped: int = 0
    #: Copies parked in receiver reorder buffers awaiting a gap fill.
    reorder_buffered: int = 0
    #: Acknowledgements processed by senders.
    acks: int = 0
    #: Redundant post-recovery cancellations suppressed at the sender.
    suppressed_resends: int = 0
    #: Processor crashes injected.
    crashes: int = 0
    #: Successful crash-recoveries (checkpoint restore + replay).
    recoveries: int = 0
    #: Events replayed from peers' output journals during recovery.
    replayed: int = 0

    # -- multiprocess-backend counters (repro.parallel.procs) ----------
    #: Inter-process envelopes sent (batches + acks; serialization
    #: boundary crossings, the quantity batching amortizes).
    ipc_batches: int = 0
    #: Events shipped inside those batches (ipc_events / ipc_batches is
    #: the achieved amortization factor).
    ipc_events: int = 0
    #: Token-ring circulations completed (each is one Mattern GVT wave;
    #: only a subset commits a new GVT, counted in ``gvt_rounds``).
    token_waves: int = 0

    # -- network counters (repro.parallel.dist) ------------------------
    #: Bytes written to TCP sockets (frames, coordinator + workers).
    net_bytes_tx: int = 0
    #: Bytes read from TCP sockets.
    net_bytes_rx: int = 0
    #: Successful coordinator↔worker reconnections (each one exercised
    #: the custody/replay resync path).
    net_reconnects: int = 0
    #: Coordinator ping/pong round trips measured.
    net_rtt_samples: int = 0
    #: Sum of measured round-trip times, seconds (sum / samples is the
    #: mean RTT of the run).
    net_rtt_sum: float = 0.0
    #: Slowest observed round trip, seconds (max-folded by ``merge``).
    net_rtt_max: float = 0.0

    # -- liveness counters (repro.resilience) --------------------------
    #: Virtual-time surface samples taken (one per observation point:
    #: GVT round on model/threads, token wave on procs).
    vt_spread_samples: int = 0
    #: Sum over samples of the surface width (max - min local clock, in
    #: femtoseconds) — width_sum / samples is the mean Korniss
    #: surface roughness of the run.
    vt_spread_width_sum: int = 0
    #: Widest surface observed (max-folded by ``merge``).
    vt_spread_width_max: int = 0
    #: Watchdog progress probes performed.
    watchdog_probes: int = 0
    #: Stalls diagnosed by the watchdog (0 on any healthy run).
    watchdog_stalls: int = 0

    def count_execution(self, lp_id: int) -> None:
        self.events_executed += 1
        self.events_per_lp[lp_id] = self.events_per_lp.get(lp_id, 0) + 1

    @property
    def efficiency(self) -> float:
        """Fraction of executed events that were ultimately useful."""
        if self.events_executed == 0:
            return 1.0
        return self.events_committed / self.events_executed

    def merge(self, other: "RunStats") -> None:
        """Fold another processor's counters into this one."""
        self.events_committed += other.events_committed
        self.events_executed += other.events_executed
        self.rollbacks += other.rollbacks
        self.events_rolled_back += other.events_rolled_back
        self.antimessages += other.antimessages
        self.annihilations += other.annihilations
        self.null_messages += other.null_messages
        self.blocked_polls += other.blocked_polls
        self.deadlock_recoveries += other.deadlock_recoveries
        self.gvt_rounds += other.gvt_rounds
        self.snapshots += other.snapshots
        self.fossils_collected += other.fossils_collected
        self.mode_switches += other.mode_switches
        self.lazy_reused += other.lazy_reused
        self.coast_forward_events += other.coast_forward_events
        self.peak_speculative = max(self.peak_speculative,
                                    other.peak_speculative)
        self.final_time = max(self.final_time, other.final_time)
        for lp_id, count in other.events_per_lp.items():
            self.events_per_lp[lp_id] = (
                self.events_per_lp.get(lp_id, 0) + count)
        self.fabric_sent += other.fabric_sent
        self.dropped += other.dropped
        self.duplicated += other.duplicated
        self.reordered += other.reordered
        self.retransmitted += other.retransmitted
        self.dedup_dropped += other.dedup_dropped
        self.reorder_buffered += other.reorder_buffered
        self.acks += other.acks
        self.suppressed_resends += other.suppressed_resends
        self.crashes += other.crashes
        self.recoveries += other.recoveries
        self.replayed += other.replayed
        self.ipc_batches += other.ipc_batches
        self.ipc_events += other.ipc_events
        self.token_waves += other.token_waves
        self.net_bytes_tx += other.net_bytes_tx
        self.net_bytes_rx += other.net_bytes_rx
        self.net_reconnects += other.net_reconnects
        self.net_rtt_samples += other.net_rtt_samples
        self.net_rtt_sum += other.net_rtt_sum
        self.net_rtt_max = max(self.net_rtt_max, other.net_rtt_max)
        self.vt_spread_samples += other.vt_spread_samples
        self.vt_spread_width_sum += other.vt_spread_width_sum
        self.vt_spread_width_max = max(self.vt_spread_width_max,
                                       other.vt_spread_width_max)
        self.watchdog_probes += other.watchdog_probes
        self.watchdog_stalls += other.watchdog_stalls

    def ipc_summary(self) -> str:
        """One-line digest of the multiprocess-backend IPC counters."""
        per = (self.ipc_events / self.ipc_batches
               if self.ipc_batches else 0.0)
        return (f"envelopes={self.ipc_batches} events={self.ipc_events} "
                f"(avg {per:.1f}/envelope) waves={self.token_waves} "
                f"commits={self.gvt_rounds}")

    def liveness_summary(self) -> str:
        """One-line digest of the liveness/spread instrumentation."""
        mean = (self.vt_spread_width_sum / self.vt_spread_samples
                if self.vt_spread_samples else 0.0)
        return (f"spread_samples={self.vt_spread_samples} "
                f"width_mean={mean:.1f}fs "
                f"width_max={self.vt_spread_width_max}fs "
                f"probes={self.watchdog_probes} "
                f"stalls={self.watchdog_stalls}")

    def fabric_summary(self) -> str:
        """One-line digest of the delivery-fabric counters."""
        return (f"sent={self.fabric_sent} dropped={self.dropped} "
                f"dup={self.duplicated} reordered={self.reordered} "
                f"retransmitted={self.retransmitted} "
                f"dedup={self.dedup_dropped} acks={self.acks} "
                f"crashes={self.crashes} recoveries={self.recoveries} "
                f"replayed={self.replayed}")

    def net_summary(self) -> str:
        """One-line digest of the distributed-backend network counters."""
        mean_ms = (1e3 * self.net_rtt_sum / self.net_rtt_samples
                   if self.net_rtt_samples else 0.0)
        return (f"tx={self.net_bytes_tx}B rx={self.net_bytes_rx}B "
                f"reconnects={self.net_reconnects} "
                f"rtt_mean={mean_ms:.2f}ms "
                f"rtt_max={1e3 * self.net_rtt_max:.2f}ms")

    def summary(self) -> str:
        return (f"committed={self.events_committed} "
                f"executed={self.events_executed} "
                f"rollbacks={self.rollbacks} "
                f"antimsgs={self.antimessages} "
                f"nulls={self.null_messages} "
                f"deadlock_recoveries={self.deadlock_recoveries} "
                f"mode_switches={self.mode_switches} "
                f"efficiency={self.efficiency:.3f}")
