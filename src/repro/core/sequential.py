"""The sequential event-driven simulator.

This is the uniprocessor baseline the paper measures speedups against
("improved for sequential simulation"): a single global event heap, no
synchronization protocol, no channel bookkeeping.  It doubles as the
reference implementation for the equivalence tests — every parallel
protocol must produce exactly the traces this engine produces.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from .event import Event, EventKind
from .model import Model
from .stats import RunStats
from .vtime import VirtualTime


class SequentialSimulator:
    """Single-heap discrete-event simulator over a :class:`Model`.

    ``shuffle_ties`` (a ``random.Random``) randomizes the processing
    order of events with equal virtual time.  The paper's tie-breaking
    scheme guarantees that any such order yields the same results; the
    property-based tests exercise exactly that claim.
    """

    def __init__(self, model: Model, shuffle_ties=None,
                 key_fn=None) -> None:
        model.validate()
        self.model = model
        self._heap: List[Tuple[tuple, Event]] = []
        self.stats = RunStats()
        self._primed = False
        self._shuffle = shuffle_ties
        #: Custom ordering key — used by the tie-breaking ablation to
        #: simulate a kernel WITHOUT the (pt, lt) scheme (ordering by
        #: physical time only).  Overrides ``shuffle_ties``.
        self._key_fn = key_fn

    # ------------------------------------------------------------------
    def inject(self, event: Event) -> None:
        """Insert an externally produced event (stimulus)."""
        if self._key_fn is not None:
            key = self._key_fn(event)
        elif self._shuffle is not None:
            key = (event.time, self._shuffle.random())
        else:
            key = event.sort_key()
        heapq.heappush(self._heap, (key, event))

    def _prime(self) -> None:
        for lp in self.model.lps:
            for event in lp.init_events():
                self.inject(event)
        self._primed = True

    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> RunStats:
        """Run until the heap drains, ``until`` fs is passed, or
        ``max_events`` have been executed.

        Events *at* physical time ``until`` are still processed (matching
        VHDL's inclusive end-of-simulation convention for ``run <t>``);
        the first event strictly beyond it stops the run.
        """
        if not self._primed:
            self._prime()
        # Hot loop: delta cycles produce large cohorts of events at the
        # same physical time, so the sweep hoists the stop checks and
        # method lookups out of the cohort and batches the statistics
        # updates per sweep.  Pop order is *exactly* the one-at-a-time
        # order (the heap is re-peeked after every dispatch, so events
        # injected mid-sweep take part in the ordering immediately).
        heap = self._heap
        pop = heapq.heappop
        model_lp = self.model.lp
        inject = self.inject
        null_kind = EventKind.NULL
        stats = self.stats
        executed = 0
        committed = 0
        final_time = stats.final_time
        per_lp: dict = {}
        try:
            while heap:
                pt = heap[0][1].time.pt
                if until is not None and pt > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                # Sweep every queued event at this physical time.
                while heap:
                    event = heap[0][1]
                    if event.time.pt != pt:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    pop(heap)
                    executed += 1
                    if event.kind is null_kind:
                        continue
                    lp = model_lp(event.dst)
                    lp.now = event.time
                    lp.simulate(event)
                    committed += 1
                    dst = event.dst
                    per_lp[dst] = per_lp.get(dst, 0) + 1
                    if event.time > final_time:
                        final_time = event.time
                    for out in lp.drain_outbox():
                        inject(out)
        finally:
            # Fold the sweep-local counters into the shared stats (also
            # on error, so partial stats stay as exact as before).
            stats.events_committed += committed
            stats.events_executed += committed
            totals = stats.events_per_lp
            for lp_id, count in per_lp.items():
                totals[lp_id] = totals.get(lp_id, 0) + count
            if final_time > stats.final_time:
                stats.final_time = final_time
        return self.stats

    def _dispatch(self, event: Event) -> None:
        if event.kind is EventKind.NULL:
            return
        lp = self.model.lp(event.dst)
        lp.now = event.time
        lp.simulate(event)
        self.stats.count_execution(event.dst)
        self.stats.events_committed += 1
        self.stats.final_time = max(self.stats.final_time, event.time)
        for out in lp.drain_outbox():
            self.inject(out)

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    def next_time(self) -> Optional[VirtualTime]:
        """Timestamp of the earliest pending event, if any."""
        if not self._heap:
            return None
        return self._heap[0][1].time
