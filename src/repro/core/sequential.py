"""The sequential event-driven simulator.

This is the uniprocessor baseline the paper measures speedups against
("improved for sequential simulation"): a single global event heap, no
synchronization protocol, no channel bookkeeping.  It doubles as the
reference implementation for the equivalence tests — every parallel
protocol must produce exactly the traces this engine produces.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from .event import Event, EventKind
from .model import Model
from .stats import RunStats
from .vtime import VirtualTime


class SequentialSimulator:
    """Single-heap discrete-event simulator over a :class:`Model`.

    ``shuffle_ties`` (a ``random.Random``) randomizes the processing
    order of events with equal virtual time.  The paper's tie-breaking
    scheme guarantees that any such order yields the same results; the
    property-based tests exercise exactly that claim.
    """

    def __init__(self, model: Model, shuffle_ties=None,
                 key_fn=None) -> None:
        model.validate()
        self.model = model
        self._heap: List[Tuple[tuple, Event]] = []
        self.stats = RunStats()
        self._primed = False
        self._shuffle = shuffle_ties
        #: Custom ordering key — used by the tie-breaking ablation to
        #: simulate a kernel WITHOUT the (pt, lt) scheme (ordering by
        #: physical time only).  Overrides ``shuffle_ties``.
        self._key_fn = key_fn

    # ------------------------------------------------------------------
    def inject(self, event: Event) -> None:
        """Insert an externally produced event (stimulus)."""
        if self._key_fn is not None:
            key = self._key_fn(event)
        elif self._shuffle is not None:
            key = (event.time, self._shuffle.random())
        else:
            key = event.sort_key()
        heapq.heappush(self._heap, (key, event))

    def _prime(self) -> None:
        for lp in self.model.lps:
            for event in lp.init_events():
                self.inject(event)
        self._primed = True

    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> RunStats:
        """Run until the heap drains, ``until`` fs is passed, or
        ``max_events`` have been executed.

        Events *at* physical time ``until`` are still processed (matching
        VHDL's inclusive end-of-simulation convention for ``run <t>``);
        the first event strictly beyond it stops the run.
        """
        if not self._primed:
            self._prime()
        executed = 0
        while self._heap:
            key, event = self._heap[0]
            if until is not None and event.time.pt > until:
                break
            if max_events is not None and executed >= max_events:
                break
            heapq.heappop(self._heap)
            self._dispatch(event)
            executed += 1
        return self.stats

    def _dispatch(self, event: Event) -> None:
        if event.kind is EventKind.NULL:
            return
        lp = self.model.lp(event.dst)
        lp.now = event.time
        lp.simulate(event)
        self.stats.count_execution(event.dst)
        self.stats.events_committed += 1
        self.stats.final_time = max(self.stats.final_time, event.time)
        for out in lp.drain_outbox():
            self.inject(out)

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    def next_time(self) -> Optional[VirtualTime]:
        """Timestamp of the earliest pending event, if any."""
        if not self._heap:
            return None
        return self._heap[0][1].time
