"""The PDES model: a static graph of LPs exchanging timestamped events.

``Model`` is the protocol-independent description that every engine
(sequential, conservative, optimistic, adaptive; modelled-parallel or
threaded) consumes.  It holds the LPs, the declared channels (needed by
conservative synchronization), and per-LP synchronization preferences
(used by the mixed/adaptive protocol).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .lp import Channel, LogicalProcess
from .vtime import VirtualTime


class SyncMode(Enum):
    """Per-LP synchronization behaviour under the mixed protocol."""

    #: Always process events eagerly; roll back on stragglers (Time Warp).
    OPTIMISTIC = "optimistic"
    #: Only process provably safe events; block otherwise.
    CONSERVATIVE = "conservative"
    #: Start optimistic and self-adapt between the two modes at runtime.
    DYNAMIC = "dynamic"


class Model:
    """A registry of LPs plus the static communication topology."""

    def __init__(self) -> None:
        self.lps: List[LogicalProcess] = []
        self.channels: Dict[Tuple[int, int], Channel] = {}
        self._succ: Dict[int, Set[int]] = {}
        self._pred: Dict[int, Set[int]] = {}
        self.sync_modes: Dict[int, SyncMode] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_lp(self, lp: LogicalProcess,
               mode: SyncMode = SyncMode.OPTIMISTIC) -> int:
        """Register an LP; returns its dense id."""
        if lp.lp_id != -1:
            raise ValueError(f"LP {lp.name} already registered")
        lp.lp_id = len(self.lps)
        self.lps.append(lp)
        self._succ[lp.lp_id] = set()
        self._pred[lp.lp_id] = set()
        self.sync_modes[lp.lp_id] = mode
        return lp.lp_id

    def connect(self, src: LogicalProcess, dst: LogicalProcess,
                lookahead: Optional[VirtualTime] = None) -> Channel:
        """Declare the directed channel ``src -> dst``.

        Re-connecting an existing pair just refreshes the lookahead.
        Self-channels are implicit (an LP may always schedule for itself)
        and need not be declared.
        """
        key = (src.lp_id, dst.lp_id)
        channel = Channel(src.lp_id, dst.lp_id, lookahead)
        self.channels[key] = channel
        self._succ[src.lp_id].add(dst.lp_id)
        self._pred[dst.lp_id].add(src.lp_id)
        return channel

    def set_mode(self, lp: LogicalProcess, mode: SyncMode) -> None:
        self.sync_modes[lp.lp_id] = mode

    def set_all_modes(self, mode: SyncMode) -> None:
        for lp_id in self.sync_modes:
            self.sync_modes[lp_id] = mode

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def successors(self, lp_id: int) -> Set[int]:
        return self._succ[lp_id]

    def predecessors(self, lp_id: int) -> Set[int]:
        return self._pred[lp_id]

    def lp(self, lp_id: int) -> LogicalProcess:
        return self.lps[lp_id]

    def __len__(self) -> int:
        return len(self.lps)

    def validate(self) -> None:
        """Sanity-check the graph (dangling channels, duplicate names)."""
        n = len(self.lps)
        for (src, dst) in self.channels:
            if not (0 <= src < n and 0 <= dst < n):
                raise ValueError(f"channel {src}->{dst} references "
                                 f"unregistered LPs (model has {n})")
        seen: Set[str] = set()
        for lp in self.lps:
            if lp.name in seen:
                raise ValueError(f"duplicate LP name {lp.name!r}")
            seen.add(lp.name)

    def edges(self) -> Iterable[Tuple[int, int]]:
        return self.channels.keys()
