"""VHDL virtual time: pairs of physical time and cycle/phase logical time.

The paper's central device (Sec. 3.3) is to extend the VHDL physical
simulation time with a Lamport-clock-style *logical* component that encodes
the phase of the distributed VHDL simulation cycle.  Virtual time is the pair

    ``vt = (pt, lt)``

ordered lexicographically: ``vt1 < vt2`` iff ``vt1.pt < vt2.pt``, or
``vt1.pt == vt2.pt and vt1.lt < vt2.lt``.

The logical component advances in steps of three per delta cycle; the phase
of a virtual time is ``lt % 3``:

* phase 0 (``PHASE_ASSIGN``)    — signal LPs accept assignment events coming
  from process LPs; process LPs resume execution (*Run*).
* phase 1 (``PHASE_DRIVING``)   — driver transactions mature into new
  driving values.
* phase 2 (``PHASE_EFFECTIVE``) — resolution functions compute effective
  values which are broadcast; process LPs fold the updates into their local
  copies (*Update*).

A full delta cycle is therefore ``lt -> lt + 3`` at constant ``pt``;
advancing physical time resets the intra-cycle phase (the logical clock keeps
growing monotonically, which is all that the causal order requires).

Physical time is kept in integer femtoseconds, mirroring the IEEE 1076
``Time`` resolution, so there is never floating-point drift in timestamps.
"""

from __future__ import annotations

from typing import NamedTuple

# Physical time units, in femtoseconds (the IEEE 1076 base resolution).
FS = 1
PS = 1_000 * FS
NS = 1_000 * PS
US = 1_000 * NS
MS = 1_000 * US
SEC = 1_000 * MS

#: Number of phases in one delta cycle of the distributed VHDL cycle.
PHASES_PER_CYCLE = 3

#: Phase indices within a delta cycle (``lt % PHASES_PER_CYCLE``).
PHASE_ASSIGN = 0
PHASE_DRIVING = 1
PHASE_EFFECTIVE = 2

_PHASE_NAMES = {
    PHASE_ASSIGN: "assign/run",
    PHASE_DRIVING: "driving",
    PHASE_EFFECTIVE: "effective/update",
}


class VirtualTime(NamedTuple):
    """A point in VHDL virtual time: ``(physical fs, logical phase count)``.

    ``NamedTuple`` gives us immutability and fast native lexicographic
    comparison, which is exactly the order relation the paper defines.
    """

    pt: int
    lt: int

    @property
    def phase(self) -> int:
        """Phase of this time within its delta cycle (0, 1 or 2)."""
        return self.lt % PHASES_PER_CYCLE

    @property
    def phase_name(self) -> str:
        """Human-readable phase name (for traces and error messages)."""
        return _PHASE_NAMES[self.phase]

    @property
    def delta(self) -> int:
        """Delta-cycle index within the current physical time step.

        This is only meaningful relative to the logical time at which the
        current physical step began, but ``lt // 3`` is a convenient
        monotone delta counter for traces.
        """
        return self.lt // PHASES_PER_CYCLE

    def next_phase(self) -> "VirtualTime":
        """The immediately following phase at the same physical time."""
        return VirtualTime(self.pt, self.lt + 1)

    def plus_phases(self, n: int) -> "VirtualTime":
        """Advance ``n`` phases at constant physical time."""
        if n < 0:
            raise ValueError("cannot move backwards in logical time")
        return VirtualTime(self.pt, self.lt + n)

    def next_delta(self) -> "VirtualTime":
        """The same phase, one full delta cycle later."""
        return VirtualTime(self.pt, self.lt + PHASES_PER_CYCLE)

    def advance(self, dt: int, phase: int = PHASE_ASSIGN) -> "VirtualTime":
        """A future physical time ``pt + dt``, entering at ``phase``.

        The logical clock must keep increasing even across physical-time
        advances (it is a Lamport clock); we therefore move to the first
        ``lt`` greater than the current one whose phase is ``phase``.
        """
        if dt <= 0:
            raise ValueError("advance() needs a strictly positive delay; "
                             "use next_delta()/plus_phases() for delta steps")
        lt = self.lt + 1
        remainder = (phase - lt) % PHASES_PER_CYCLE
        return VirtualTime(self.pt + dt, lt + remainder)

    def with_phase(self, phase: int) -> "VirtualTime":
        """The first time >= self whose phase is ``phase``.

        Stays at the current ``lt`` when the phase already matches.
        """
        remainder = (phase - self.lt) % PHASES_PER_CYCLE
        return VirtualTime(self.pt, self.lt + remainder)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.pt}fs@{self.lt}"


#: The origin of virtual time.
ZERO = VirtualTime(0, 0)

#: A virtual time strictly greater than any reachable simulation time.
#: ``float('inf')`` compares greater than every int, so the pair works with
#: the same lexicographic comparison as finite times.
INFINITY = VirtualTime(float("inf"), 0)  # type: ignore[arg-type]

#: A virtual time strictly smaller than any reachable simulation time.
MINUS_INFINITY = VirtualTime(float("-inf"), 0)  # type: ignore[arg-type]


def vt_min(*times: VirtualTime) -> VirtualTime:
    """Minimum of several virtual times (INFINITY if none given)."""
    return min(times, default=INFINITY)


def parse_time(value: float, unit: str = "ns") -> int:
    """Convert ``value`` in ``unit`` to integer femtoseconds.

    >>> parse_time(2, 'ns')
    2000000
    """
    scale = {"fs": FS, "ps": PS, "ns": NS, "us": US, "ms": MS,
             "sec": SEC, "s": SEC}.get(unit.lower())
    if scale is None:
        raise ValueError(f"unknown time unit {unit!r}")
    result = value * scale
    as_int = int(round(result))
    if abs(result - as_int) > 1e-9:
        raise ValueError(
            f"{value} {unit} is not an integral number of femtoseconds")
    return as_int


def format_time(fs: int) -> str:
    """Render femtoseconds in the largest unit that keeps it integral."""
    for unit, scale in (("sec", SEC), ("ms", MS), ("us", US), ("ns", NS),
                        ("ps", PS)):
        if fs and fs % scale == 0:
            return f"{fs // scale} {unit}"
    return f"{fs} fs"
