"""Logical processes (LPs): the unit of distribution in the PDES model.

The physical system is partitioned into entities that communicate only by
exchanging timestamped events; each entity is modelled by a *logical
process* with a state and a ``simulate()`` function (paper, Sec. 2).  A
simulation step calls ``simulate()`` with the next input event; the LP may
modify its state and send output events.

This module defines the abstract LP and the bookkeeping every
synchronization protocol needs:

* an outbox that ``simulate()`` fills via :meth:`LogicalProcess.send` /
  :meth:`LogicalProcess.schedule`;
* checkpointing hooks (:meth:`snapshot` / :meth:`restore`) used by Time
  Warp — the default implementation deep-copies the attributes listed in
  ``state_attrs``;
* a declaration of whether the LP *can* checkpoint at all.  The paper
  notes that heavy-state processes cannot save their state and must run
  conservatively; LPs report this through :attr:`checkpointable`.

LPs never touch the synchronization machinery: conservative blocking,
rollback and adaptation all live in the engines, so the same LP graph runs
unmodified under every protocol.
"""

from __future__ import annotations

import copy
from typing import Any, Iterable, List, Optional, Sequence

from .event import Event, EventId, EventKind
from .vtime import VirtualTime, ZERO


class LogicalProcess:
    """Base class for all LPs.

    Subclasses implement :meth:`simulate` and list the attribute names
    that constitute their mutable state in ``state_attrs`` (used by the
    default checkpointing).  Everything else on the instance is treated
    as immutable configuration.
    """

    #: Attribute names copied by the default snapshot/restore.
    state_attrs: Sequence[str] = ()

    #: Conformance hook (repro.harness): a Tracer recording protocol
    #: actions, or None (the default — un-traced sends pay only this
    #: attribute check).  Class attribute so plain LPs carry no extra
    #: per-instance state.
    tracer = None

    #: Whether Time Warp may checkpoint and roll this LP back.  LPs whose
    #: state cannot be captured (e.g. ones wrapping a live Python
    #: generator) set this False and the engines pin them conservative.
    checkpointable: bool = True

    #: Structural lookahead: the minimum number of logical phases between
    #: an event *arriving* on a channel and any output it causes.  The
    #: VHDL kernel guarantees 1 (every hop of the distributed VHDL cycle
    #: advances the phase clock); generic LPs promise nothing (0).  The
    #: conservative machinery uses this for its distance-based release
    #: bounds — entirely application-independent, since the value is a
    #: property of the LP class, not of the model being simulated.
    react_lookahead_phases: int = 0

    def __init__(self, name: str) -> None:
        self.name = name
        #: Engine-assigned dense id; set by the kernel at registration.
        self.lp_id: int = -1
        #: Current virtual time while inside ``simulate()``.
        self.now: VirtualTime = ZERO
        self._outbox: List[Event] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def simulate(self, event: Event) -> None:
        """Process one input event; may call send()/schedule()."""
        raise NotImplementedError

    def init_events(self) -> Iterable[Event]:
        """Events this LP injects at time zero (before the first step).

        The default uses the outbox mechanism so subclasses can simply
        call :meth:`schedule`/:meth:`send` from :meth:`on_init`.
        """
        self.now = ZERO
        self._outbox = []
        self.on_init()
        out, self._outbox = self._outbox, []
        return out

    def on_init(self) -> None:
        """Hook for initial scheduling; default does nothing."""

    # ------------------------------------------------------------------
    # Event emission (usable from simulate()/on_init())
    # ------------------------------------------------------------------
    def send(self, dst: int, time: VirtualTime, kind: EventKind,
             payload: Any = None) -> Event:
        """Emit an event to LP ``dst`` at virtual time ``time``.

        The local causality constraint requires ``time >= self.now``;
        violating it would make correct synchronization impossible, so it
        is an error, not a warning.
        """
        if time < self.now:
            raise ValueError(
                f"LP {self.name} at {self.now} tried to send into the past "
                f"({time})")
        event = Event(time=time, kind=kind, dst=dst, src=self.lp_id,
                      payload=payload, eid=self._fresh_eid(),
                      send_time=self.now)
        if self.tracer is not None:
            self.tracer.record("send", lp=self.lp_id, time=time,
                               dst=dst, kind=int(kind),
                               eid=(event.eid.src, event.eid.seq))
        self._outbox.append(event)
        return event

    def schedule(self, time: VirtualTime, kind: EventKind,
                 payload: Any = None) -> Event:
        """Emit an event to *this* LP (an internal/self event)."""
        return self.send(self.lp_id, time, kind, payload)

    def _fresh_eid(self) -> EventId:
        # The sequence counter is deliberately NOT part of the snapshot:
        # after a rollback the re-executed sends must mint new ids so that
        # they can never be confused with the cancelled originals.
        self._seq += 1
        return EventId(self.lp_id, self._seq)

    def drain_outbox(self) -> List[Event]:
        """Engine hook: collect and clear events emitted by simulate()."""
        out, self._outbox = self._outbox, []
        return out

    # ------------------------------------------------------------------
    # Checkpointing (Time Warp)
    # ------------------------------------------------------------------
    def snapshot(self) -> Any:
        """Capture the LP state; default deep-copies ``state_attrs``."""
        return {attr: copy.deepcopy(getattr(self, attr))
                for attr in self.state_attrs}

    def restore(self, snap: Any) -> None:
        """Restore a state captured by :meth:`snapshot`."""
        for attr, value in snap.items():
            setattr(self, attr, copy.deepcopy(value))

    # ------------------------------------------------------------------
    # Durable checkpointing (crash recovery)
    # ------------------------------------------------------------------
    def durable_state(self) -> Any:
        """Self-contained image for restoring into a *fresh* process.

        :meth:`snapshot` may be process-relative — it restores into the
        same live object, so it can lean on state that survives a
        rollback (``SignalLP`` stores only its history *length*, and
        ``_seq`` is deliberately live so re-executions mint fresh event
        ids).  A durable checkpoint shipped to another process (dist
        kill-recovery) has no live object to lean on: this image must
        stand alone.  The eid counter rides along as a *floor* — see
        :meth:`restore_durable`.
        """
        return (self.snapshot(), self._seq)

    def restore_durable(self, state: Any) -> None:
        """Adopt a :meth:`durable_state` image (possibly cross-process).

        ``_seq`` only ever ratchets up: eids the dead incarnation
        minted are world-visible, and re-minting one would annihilate
        the wrong message when its antimessage is eventually sent.
        """
        snap, seq = state
        self.restore(snap)
        self._seq = max(self._seq, seq)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} #{self.lp_id}>"


class FunctionLP(LogicalProcess):
    """A convenience LP wrapping a plain function (for tests/examples).

    The function receives ``(lp, event)`` and uses the LP's emission API.
    State, if any, lives in ``lp.memory`` (a dict), which is checkpointed.
    """

    state_attrs = ("memory",)

    def __init__(self, name: str, fn, on_init=None) -> None:
        super().__init__(name)
        self._fn = fn
        self._on_init = on_init
        self.memory: dict = {}

    def on_init(self) -> None:
        if self._on_init is not None:
            self._on_init(self)

    def simulate(self, event: Event) -> None:
        self._fn(self, event)


class SinkLP(LogicalProcess):
    """An LP that records every event it receives (test instrumentation)."""

    state_attrs = ("received",)

    def __init__(self, name: str = "sink") -> None:
        super().__init__(name)
        self.received: List[Event] = []

    def simulate(self, event: Event) -> None:
        self.received.append(event)


class Channel:
    """A declared directed link between two LPs.

    Conservative synchronization needs the static communication topology:
    channel clocks and null messages are per-channel.  ``lookahead`` is
    the (optional) minimum increment from an input timestamp at ``src`` to
    any output on this channel; ``None`` means unknown (the lookahead-free
    case the paper is designed around).
    """

    __slots__ = ("src", "dst", "lookahead")

    def __init__(self, src: int, dst: int,
                 lookahead: Optional[VirtualTime] = None) -> None:
        self.src = src
        self.dst = dst
        self.lookahead = lookahead

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Channel({self.src}->{self.dst}, la={self.lookahead})"
