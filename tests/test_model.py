"""Model graph: registration, channels, validation, sync modes."""

import pytest

from repro.core.lp import SinkLP
from repro.core.model import Model, SyncMode
from repro.core.vtime import VirtualTime


def two_lp_model():
    model = Model()
    a, b = SinkLP("a"), SinkLP("b")
    model.add_lp(a)
    model.add_lp(b)
    return model, a, b


class TestConstruction:
    def test_dense_ids(self):
        model, a, b = two_lp_model()
        assert (a.lp_id, b.lp_id) == (0, 1)
        assert len(model) == 2
        assert model.lp(0) is a

    def test_connect_records_topology(self):
        model, a, b = two_lp_model()
        model.connect(a, b)
        assert model.successors(a.lp_id) == {b.lp_id}
        assert model.predecessors(b.lp_id) == {a.lp_id}
        assert model.predecessors(a.lp_id) == set()
        assert list(model.edges()) == [(0, 1)]

    def test_reconnect_updates_lookahead(self):
        model, a, b = two_lp_model()
        model.connect(a, b)
        model.connect(a, b, lookahead=VirtualTime(5, 0))
        assert model.channels[(0, 1)].lookahead == VirtualTime(5, 0)
        assert len(model.channels) == 1

    def test_default_mode_and_override(self):
        model = Model()
        lp = SinkLP("x")
        model.add_lp(lp, SyncMode.CONSERVATIVE)
        assert model.sync_modes[lp.lp_id] is SyncMode.CONSERVATIVE
        model.set_mode(lp, SyncMode.DYNAMIC)
        assert model.sync_modes[lp.lp_id] is SyncMode.DYNAMIC
        model.set_all_modes(SyncMode.OPTIMISTIC)
        assert model.sync_modes[lp.lp_id] is SyncMode.OPTIMISTIC


class TestValidation:
    def test_duplicate_names_rejected(self):
        model = Model()
        model.add_lp(SinkLP("dup"))
        model.add_lp(SinkLP("dup"))
        with pytest.raises(ValueError):
            model.validate()

    def test_valid_model_passes(self):
        model, a, b = two_lp_model()
        model.connect(a, b)
        model.validate()
