"""Shared pytest wiring for the suite.

The ``slow`` marker (full backend matrices and benchmark-size
circuits) and the tier-1 skip logic live here — one place instead of
duplicated ``markers`` + ``addopts`` entries in pyproject.toml, so a
new test file marking cases ``slow`` automatically stays out of the
tier-1 run without any configuration edits.

Behaviour matches the historical ``addopts = "-m 'not slow'"``:

* a plain ``pytest`` run *deselects* every ``slow``-marked test (the
  tier-1 configuration — the summary line still reports them as
  deselected, exactly as before);
* any explicit ``-m`` expression on the command line wins outright
  (``-m slow`` runs only the slow matrix, ``-m ''`` runs everything).
"""

import pytest

SLOW_MARKER = ("slow: full backend matrices and benchmark-size "
               "circuits (deselected unless -m is given explicitly; "
               "tier-1 CI skips them)")


def pytest_configure(config):
    config.addinivalue_line("markers", SLOW_MARKER)


def pytest_collection_modifyitems(config, items):
    if config.getoption("-m"):
        return  # an explicit marker expression takes full control
    selected = []
    deselected = []
    for item in items:
        if "slow" in item.keywords:
            deselected.append(item)
        else:
            selected.append(item)
    if deselected:
        config.hook.pytest_deselected(items=deselected)
        items[:] = selected
