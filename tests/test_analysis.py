"""Analysis helpers: speedup measurement and report rendering."""

import pytest

from repro.analysis import (SpeedupCurve, SpeedupPoint, ascii_chart,
                            format_table, measure_speedups,
                            sequential_baseline, speedup_table)
from repro.circuits import build_fsm


def build():
    return build_fsm(cells=3, cycles=4).design


class TestSpeedupMeasurement:
    def test_baseline_counts_committed_events(self):
        baseline = sequential_baseline(build)
        assert baseline > 0
        # The baseline is events x unit cost: integral in model units.
        assert baseline == int(baseline)

    def test_measure_speedups_structure(self):
        curves = measure_speedups(build, ["optimistic", "conservative"],
                                  [1, 2], max_steps=2_000_000)
        assert set(curves) == {"optimistic", "conservative"}
        for curve in curves.values():
            assert curve.processors() == [1, 2]
            assert all(s > 0 for s in curve.speedups())
            point = curve.at(2)
            assert point.processors == 2
            assert point.speedup == pytest.approx(
                curve.baseline_time / point.makespan)

    def test_at_unknown_processor_count(self):
        curve = SpeedupCurve("x", 100.0)
        with pytest.raises(KeyError):
            curve.at(3)


class TestRendering:
    def fake_curves(self):
        curves = {}
        for name, values in (("a", [1.0, 1.9]), ("b", [0.9, 1.5])):
            curve = SpeedupCurve(name, 100.0)
            for p, s in zip([1, 2], values):
                curve.points.append(
                    SpeedupPoint(processors=p, speedup=s,
                                 makespan=100.0 / s, outcome=None))
            curves[name] = curve
        return curves

    def test_format_table_alignment(self):
        table = format_table(["x", "yy"], [["1", "2"], ["333", "4"]],
                             title="t")
        lines = table.splitlines()
        assert lines[0] == "t"
        assert "x" in lines[1] and "yy" in lines[1]
        # All rows have equal rendered width.
        assert len(set(len(line) for line in lines[2:])) <= 2

    def test_speedup_table_contains_all_protocols(self):
        table = speedup_table(self.fake_curves(), "title")
        assert "a" in table and "b" in table
        assert "1.90" in table

    def test_ascii_chart_renders(self):
        chart = ascii_chart(self.fake_curves(), "chart")
        assert "chart" in chart
        assert "o=a" in chart
        assert "*=b" in chart
        # glyphs appear somewhere in the grid
        assert "o" in chart and "*" in chart
