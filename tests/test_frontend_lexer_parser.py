"""VHDL frontend: lexer and parser."""

import pytest

from repro.core.vtime import NS, PS, US
from repro.vhdl.frontend import LexError, ParseError, parse, tokenize
from repro.vhdl.frontend import ast


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


class TestLexer:
    def test_identifiers_case_insensitive(self):
        assert kinds("Foo fOO") == [("id", "foo"), ("id", "foo")]

    def test_keywords(self):
        assert kinds("entity IS begin") == [
            ("kw", "entity"), ("kw", "is"), ("kw", "begin")]

    def test_integers_with_underscores(self):
        assert kinds("1_000") == [("int", 1000)]

    def test_time_literals(self):
        assert kinds("5 ns") == [("time", 5 * NS)]
        assert kinds("10ps") == [("time", 10 * PS)]
        assert kinds("1 us") == [("time", US)]
        assert kinds("2.5 ns") == [("time", 2500 * PS)]

    def test_char_literal_vs_attribute_tick(self):
        assert kinds("'1'") == [("char", "1")]
        assert kinds("clk'event") == [
            ("id", "clk"), ("delim", "'"), ("id", "event")]
        assert kinds("x := '0';")[2] == ("char", "0")

    def test_string_literals(self):
        assert kinds('"0101"') == [("string", "0101")]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"01')

    def test_compound_delimiters(self):
        assert [v for _k, v in kinds("<= => := /= ** <>")] == [
            "<=", "=>", ":=", "/=", "**", "<>"]

    def test_comments_skipped(self):
        assert kinds("a -- comment\n b") == [("id", "a"), ("id", "b")]

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a ? b")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]


ENTITY = """
entity gate is
  generic (n : integer := 2);
  port (a, b : in std_logic; y : out std_logic);
end gate;
"""


class TestParserUnits:
    def test_entity(self):
        df = parse(ENTITY)
        ent = df.entity("gate")
        assert [p.name for p in ent.ports] == ["a", "b", "y"]
        assert [p.direction for p in ent.ports] == ["in", "in", "out"]
        assert ent.generics[0].name == "n"

    def test_library_use_skipped(self):
        df = parse("library ieee;\nuse ieee.std_logic_1164.all;\n"
                   + ENTITY)
        assert df.entity("gate")

    def test_architecture_with_signal_decl(self):
        df = parse(ENTITY + """
architecture rtl of gate is
  signal t : std_logic := '0';
begin
  y <= a and b;
end rtl;
""")
        arch = df.architecture_of("gate")
        assert isinstance(arch.declarations[0], ast.SignalDecl)
        assert isinstance(arch.statements[0], ast.ConcurrentAssign)

    def test_last_architecture_wins(self):
        df = parse(ENTITY + """
architecture one of gate is begin y <= a; end one;
architecture two of gate is begin y <= b; end two;
""")
        assert df.architecture_of("gate").name == "two"

    def test_missing_entity_raises(self):
        with pytest.raises(KeyError):
            parse(ENTITY).entity("nothere")

    def test_instantiation(self):
        df = parse(ENTITY + """
entity top is end top;
architecture s of top is
  component gate
    port (a, b : in std_logic; y : out std_logic);
  end component;
  signal x, z, w : std_logic;
begin
  u1 : gate port map (a => x, b => z, y => w);
  u2 : gate port map (x, z, w);
end s;
""")
        arch = df.architecture_of("top")
        u1 = arch.statements[0]
        assert isinstance(u1, ast.Instantiation)
        assert u1.port_map[0][0] == "a"
        u2 = arch.statements[1]
        assert u2.port_map[0][0] == "0"  # positional


def parse_process(body, sensitivity="(clk)", decls=""):
    src = ENTITY + f"""
architecture rtl of gate is
  signal clk, s : std_logic;
  signal v : std_logic_vector(3 downto 0);
begin
  p : process {sensitivity}
  {decls}
  begin
  {body}
  end process;
end rtl;
"""
    return parse(src).architecture_of("gate").statements[0]


class TestParserStatements:
    def test_signal_assign_with_after(self):
        p = parse_process("s <= '1' after 2 ns;")
        stmt = p.body[0]
        assert isinstance(stmt, ast.SignalAssign)
        assert stmt.waveform[0][1].femtoseconds == 2 * NS

    def test_multi_element_waveform(self):
        p = parse_process("s <= '1' after 1 ns, '0' after 3 ns;")
        assert len(p.body[0].waveform) == 2

    def test_transport_and_reject(self):
        p = parse_process("s <= transport '1' after 2 ns;")
        assert p.body[0].transport
        p = parse_process("s <= reject 1 ns inertial '1' after 2 ns;")
        assert p.body[0].reject is not None

    def test_if_elsif_else(self):
        p = parse_process("""
        if a = '1' then s <= '0';
        elsif b = '1' then s <= '1';
        else s <= 'X';
        end if;
        """)
        stmt = p.body[0]
        assert isinstance(stmt, ast.IfStmt)
        assert len(stmt.arms) == 2
        assert len(stmt.orelse) == 1

    def test_case_with_others(self):
        p = parse_process("""
        case v is
          when "0000" => s <= '0';
          when "0001" | "0010" => s <= '1';
          when others => s <= 'X';
        end case;
        """)
        stmt = p.body[0]
        assert isinstance(stmt, ast.CaseStmt)
        assert len(stmt.arms) == 3
        assert stmt.arms[2][0] == ()  # others
        assert len(stmt.arms[1][0]) == 2

    def test_for_loop(self):
        p = parse_process("""
        for i in 0 to 3 loop
          v(i) <= '0';
        end loop;
        """)
        stmt = p.body[0]
        assert isinstance(stmt, ast.ForStmt)
        assert not stmt.downto

    def test_while_loop_and_exit(self):
        p = parse_process("""
        while a = '0' loop
          exit when b = '1';
          next;
        end loop;
        """)
        stmt = p.body[0]
        assert isinstance(stmt, ast.WhileStmt)
        assert isinstance(stmt.body[0], ast.ExitStmt)
        assert isinstance(stmt.body[1], ast.NextStmt)

    def test_wait_variants(self):
        p = parse_process("""
        wait on clk;
        wait until clk = '1';
        wait for 10 ns;
        wait;
        """, sensitivity="")
        waits = p.body
        assert waits[0].on == ("clk",)
        assert waits[1].until is not None
        assert waits[2].for_time.femtoseconds == 10 * NS
        assert waits[3] == ast.WaitStmt()

    def test_variable_declaration_and_assignment(self):
        p = parse_process("x := x + 1;",
                          decls="variable x : integer := 0;")
        assert isinstance(p.declarations[0], ast.VariableDecl)
        assert isinstance(p.body[0], ast.VarAssign)

    def test_assert_and_report(self):
        p = parse_process("""
        assert a = '1' report "bad" severity warning;
        report "note";
        """)
        assert isinstance(p.body[0], ast.AssertStmt)
        assert isinstance(p.body[1], ast.ReportStmt)

    def test_slice_expression(self):
        p = parse_process("s <= v(3 downto 1) (0);")
        target_expr = p.body[0].waveform[0][0]
        assert isinstance(target_expr, ast.Indexed)
        assert isinstance(target_expr.base, ast.Sliced)

    def test_aggregate_others(self):
        p = parse_process("v <= (others => '0');")
        expr = p.body[0].waveform[0][0]
        assert isinstance(expr, ast.Aggregate)
        assert expr.others is not None

    def test_conditional_concurrent_assign(self):
        df = parse(ENTITY + """
architecture rtl of gate is
begin
  y <= a when b = '1' else b;
end rtl;
""")
        stmt = df.architecture_of("gate").statements[0]
        assert isinstance(stmt, ast.ConcurrentAssign)
        assert len(stmt.arms) == 2
        assert stmt.arms[0][1] is not None
        assert stmt.arms[1][1] is None

    def test_parse_error_reports_line(self):
        with pytest.raises(ParseError) as err:
            parse("entity x is port (a : in std_logic)\nend x;")
        assert "line" in str(err.value)


class TestExpressions:
    def expr(self, text):
        p = parse_process(f"s <= {text};")
        return p.body[0].waveform[0][0]

    def test_precedence_and_over_relational(self):
        e = self.expr("a = '1' and b = '0'")
        assert isinstance(e, ast.Binary) and e.op == "and"
        assert e.left.op == "="

    def test_arith_precedence(self):
        e = self.expr("1 + 2 * 3")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_unary_not(self):
        e = self.expr("not a")
        assert isinstance(e, ast.Unary) and e.op == "not"

    def test_concat(self):
        e = self.expr("a & b")
        assert e.op == "&"

    def test_attribute(self):
        e = self.expr("clk'event")
        assert isinstance(e, ast.Attribute)
        assert e.attr == "event"

    def test_function_call_two_args(self):
        e = self.expr("to_unsigned(7, 4)")
        assert isinstance(e, ast.Call)
        assert e.func == "to_unsigned"
        assert len(e.args) == 2
