"""Liveness watchdogs and stall forensics (repro.resilience).

Two families:

* unit tests for the watchdog primitives and the StallReport builder;
* induced-stall tests — sabotage each backend so it genuinely cannot
  make progress and require that the run *diagnoses* the stall (a
  ``ProtocolError`` carrying a populated :class:`StallReport` and
  partial statistics) within the watchdog bound, rather than hanging
  or committing wrong results.
"""

import pytest

from repro.circuits import build_fsm, build_random
from repro.parallel import run_parallel
from repro.parallel.engine import Processor, ProtocolError
from repro.parallel.machine import ParallelMachine
from repro.parallel.procs import run_procs
from repro.parallel.threads import run_threaded
from repro.resilience import (DEFAULT_MODEL_STEPS, DEFAULT_WALL_S, FakeClock,
                              StallReport, StepWatchdog, WallClockWatchdog,
                              build_report, resolve_watchdog, surface)


def _model(cells=3, cycles=3):
    return build_fsm(cells=cells, cycles=cycles).design.elaborate()


class TestStepWatchdog:
    def test_trips_after_bound_without_progress(self):
        dog = StepWatchdog(10)
        assert not dog.tick("a", position=0)   # marker change: anchor
        assert not dog.tick("a", position=9)
        assert dog.tick("a", position=10)
        assert dog.idle == 10

    def test_progress_resets_the_anchor(self):
        dog = StepWatchdog(10)
        dog.tick("a", position=0)
        assert not dog.tick("b", position=50)  # marker changed
        assert not dog.tick("b", position=59)
        assert dog.tick("b", position=60)

    def test_probe_count_is_the_default_position(self):
        dog = StepWatchdog(3)
        assert not dog.tick("a")
        assert not dog.tick("a")
        assert not dog.tick("a")
        assert dog.tick("a")
        assert dog.probes == 4

    def test_zero_bound_disables(self):
        dog = StepWatchdog(0)
        assert not dog.enabled
        for _ in range(100):
            assert not dog.tick("a", position=10**9)


class TestWallClockWatchdog:
    # All driven by FakeClock: no sleeping, bit-exact thresholds.

    def test_trips_after_wall_time_without_progress(self):
        clock = FakeClock()
        dog = WallClockWatchdog(5.0, clock=clock)
        assert not dog.tick("a")
        clock.advance(4.999)
        assert not dog.tick("a")   # strictly inside the bound
        clock.advance(0.001)
        assert dog.tick("a")       # exactly at the bound
        assert dog.idle_s == pytest.approx(5.0)

    def test_progress_resets_the_clock(self):
        clock = FakeClock()
        dog = WallClockWatchdog(5.0, clock=clock)
        dog.tick("a")
        clock.advance(4.0)
        assert not dog.tick("b")   # marker changed: clock restarts
        clock.advance(4.0)
        assert not dog.tick("b")   # only 4s since the reset
        clock.advance(1.0)
        assert dog.tick("b")

    def test_zero_bound_disables(self):
        clock = FakeClock()
        dog = WallClockWatchdog(0, clock=clock)
        assert not dog.enabled
        clock.advance(1e9)
        assert not dog.tick("a")

    def test_real_clock_is_the_default(self):
        dog = WallClockWatchdog(1e9)
        assert not dog.tick("a")
        assert 0.0 <= dog.idle_s < 60.0


class TestFakeClock:
    def test_advance_is_cumulative(self):
        clock = FakeClock(start=10.0)
        assert clock() == 10.0
        assert clock.advance(2.5) == 12.5
        assert clock() == 12.5

    def test_rejects_going_backwards(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)


class TestResolveWatchdog:
    def test_none_means_default_on(self):
        assert resolve_watchdog(None, DEFAULT_MODEL_STEPS) \
            == DEFAULT_MODEL_STEPS
        assert resolve_watchdog(None, DEFAULT_WALL_S) == DEFAULT_WALL_S

    def test_falsy_disables(self):
        assert resolve_watchdog(0, 100) == 0
        assert resolve_watchdog(0.0, 100) == 0
        assert resolve_watchdog(False, 100) == 0

    def test_positive_is_the_bound(self):
        assert resolve_watchdog(42, 100) == 42
        assert resolve_watchdog(1.5, 30.0) == 1.5


class TestStallReport:
    def test_surface(self):
        lo, hi, width = surface([(5, 1), (3, 0), (9, 2)])
        assert lo == (3, 0)
        assert hi == (9, 2)
        assert width == 6
        assert surface([]) == (None, None, 0)

    def test_build_report_reads_live_processors(self):
        machine = ParallelMachine(_model(), 2, protocol="optimistic")
        report = build_report("model", "test reason", machine.procs,
                              gvt=(0, 0), bound=7,
                              in_flight={"x": 1}, origin=None)
        assert report.backend == "model"
        assert report.reason == "test reason"
        assert report.bound == 7
        assert len(report.lp_clocks) == len(machine.model.lps)
        assert report.vt_min is not None
        assert report.in_flight == {"x": 1}

    def test_describe_renders_every_section(self):
        report = StallReport(
            backend="threads", reason="no progress", gvt=(100, 2),
            bound=30.0, lp_clocks={0: (100, 2), 1: (250, 4)},
            vt_min=(100, 2), vt_max=(250, 4), vt_width=150,
            parked_negatives=[{"proc": 0, "dst": 1, "eid": (3, 7),
                               "time": (120, 3), "origin_epoch": 2}],
            withheld_lazy={0: 2}, in_flight={"worker_pending": 5},
            origin=1)
        text = report.describe()
        assert "backend=threads" in text
        assert "no progress" in text
        assert "100fs@2" in text
        assert "width=150fs" in text
        assert "withheld lazy : 2" in text
        assert "eid=(3, 7)" in text
        assert "origin_epoch=2" in text
        assert "worker_pending" in text
        assert "worker 1" in text

    def test_describe_caps_parked_negative_listing(self):
        parked = [{"proc": 0, "dst": 1, "eid": (1, i),
                   "time": (10, 0), "origin_epoch": 0}
                  for i in range(12)]
        report = StallReport(backend="model", reason="r",
                             parked_negatives=parked)
        text = report.describe()
        assert "parked negs   : 12" in text
        assert "... and 4 more" in text


class TestModelStalls:
    def test_watchdog_trips_on_a_spinning_machine(self):
        # act() claims progress but does nothing: GVT and the commit
        # count freeze while steps accumulate — exactly the livelock
        # shape the step watchdog exists for.
        machine = ParallelMachine(_model(), 2, protocol="optimistic",
                                  watchdog=64)
        for proc in machine.procs:
            proc.act = lambda: True
        with pytest.raises(ProtocolError) as caught:
            machine.run()
        report = caught.value.stall_report
        assert report.backend == "model"
        assert "no GVT advance" in report.reason
        assert report.bound == 64
        assert report.lp_clocks
        stats = caught.value.partial_stats
        assert stats.watchdog_stalls == 1
        assert stats.watchdog_probes > 0

    def test_genuine_deadlock_is_diagnosed_with_forensics(self):
        # Disable the machine's stall-recovery mechanisms: the
        # seed-360472 configuration then runs into a genuine full stall
        # (withheld lazy cancellations pinning GVT with their
        # originators never re-executing) and must diagnose it — with
        # the withheld entries in the report — instead of hanging.
        machine = ParallelMachine(
            build_random(360472).design.elaborate(), 4,
            protocol="dynamic", lazy_cancellation=True)
        machine._flush_lazy_at_gvt = lambda: False
        machine._force_minimum = lambda: False
        with pytest.raises(ProtocolError) as caught:
            machine.run(max_steps=5_000_000)
        report = caught.value.stall_report
        assert report.backend == "model"
        assert "deadlock recovery failed" in report.reason
        assert report.gvt is not None
        assert sum(report.withheld_lazy.values()) > 0
        assert caught.value.partial_stats.events_committed > 0

    def test_max_steps_overrun_carries_a_report(self):
        machine = ParallelMachine(_model(), 2, protocol="optimistic")
        with pytest.raises(ProtocolError) as caught:
            machine.run(max_steps=3)
        assert caught.value.stall_report.backend == "model"
        assert "3 steps" in caught.value.stall_report.reason

    def test_healthy_run_records_liveness_stats(self):
        outcome = run_parallel(_model(), 2, protocol="optimistic")
        assert outcome.stats.watchdog_stalls == 0
        assert outcome.stats.watchdog_probes > 0
        assert outcome.stats.vt_spread_samples > 0
        text = outcome.stats.liveness_summary()
        assert "stalls=0" in text

    def test_watchdog_off_still_completes(self):
        outcome = run_parallel(_model(), 2, protocol="optimistic",
                               watchdog=0)
        assert outcome.stats.watchdog_stalls == 0
        assert outcome.stats.watchdog_probes == 0
        # Off means the whole liveness layer: no spread sampling either.
        assert outcome.stats.vt_spread_samples == 0


class TestThreadsStalls:
    def test_stalled_workers_are_diagnosed(self, monkeypatch):
        # No worker ever executes: queues stay full, GVT freezes, and
        # the wall-clock watchdog must end the run with forensics well
        # inside the run deadline.
        monkeypatch.setattr(Processor, "act", lambda self: False)
        with pytest.raises(ProtocolError) as caught:
            run_threaded(_model(), 2, protocol="optimistic",
                         watchdog_s=0.4, timeout_s=30.0)
        report = caught.value.stall_report
        assert report.backend == "threads"
        assert "no GVT advance" in report.reason
        assert report.bound == pytest.approx(0.4)
        assert report.lp_clocks
        stats = caught.value.partial_stats
        assert stats.watchdog_stalls == 1

    def test_stall_trips_deterministically_under_a_fake_clock(
            self, monkeypatch):
        # Same sabotage, but the engine's watchdog runs on a FakeClock
        # that jumps a full second per probe: the stall window elapses
        # in fake time, so the diagnosis does not depend on how long
        # the host actually takes to spin through global rounds.
        import repro.parallel.threads as threads_mod

        def fake_watchdog(bound_s):
            clock = FakeClock()
            dog = WallClockWatchdog(bound_s, clock=clock)
            real_tick = dog.tick
            dog.tick = lambda marker: (clock.advance(1.0),
                                       real_tick(marker))[1]
            return dog

        monkeypatch.setattr(threads_mod, "WallClockWatchdog",
                            fake_watchdog)
        monkeypatch.setattr(Processor, "act", lambda self: False)
        with pytest.raises(ProtocolError) as caught:
            run_threaded(_model(), 2, protocol="optimistic",
                         watchdog_s=3.0, timeout_s=30.0)
        report = caught.value.stall_report
        assert report.backend == "threads"
        assert "no GVT advance" in report.reason
        assert report.bound == pytest.approx(3.0)

    def test_healthy_run_records_liveness_stats(self):
        outcome = run_threaded(_model(), 2, protocol="optimistic",
                               timeout_s=60.0)
        assert outcome.stats.watchdog_stalls == 0
        assert outcome.stats.watchdog_probes > 0
        assert outcome.stats.vt_spread_samples > 0


class TestProcsStalls:
    def test_stalled_workers_are_diagnosed(self, monkeypatch):
        # The patch is inherited through fork, so every worker spins
        # without executing; each worker's watchdog trips and the
        # parent surfaces the first report.
        monkeypatch.setattr(Processor, "act", lambda self: False)
        with pytest.raises(ProtocolError) as caught:
            run_procs(_model(), 2, protocol="optimistic",
                      watchdog_s=0.5, timeout_s=30.0)
        report = getattr(caught.value, "stall_report", None)
        assert report is not None
        assert report.backend == "procs"
        assert report.origin in (0, 1)
        assert "no GVT advance" in report.reason
        assert report.lp_clocks
        assert caught.value.partial_stats is not None

    def test_healthy_run_records_liveness_stats(self):
        outcome = run_procs(_model(), 2, protocol="optimistic",
                            timeout_s=60.0)
        assert outcome.stats.watchdog_stalls == 0
        assert outcome.stats.watchdog_probes > 0
        assert outcome.stats.vt_spread_samples > 0
