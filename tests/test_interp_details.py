"""Interpreter corner cases: loops with waits, slices, shifts, scoping.

Every case runs under BOTH execution modes (the ``run`` fixture is
parametrized over ``interp`` and ``compiled``), so each semantic
assertion here also binds the closure programs of
:mod:`repro.vhdl.compile` — including the error cases, which must
raise the same :class:`VhdlRuntimeError` at the same point.
"""

import pytest

from repro.core import NS
from repro.vhdl import (EXEC_MODES, SL_0, SL_1, simulate, vector_to_int,
                        vector_to_str)
from repro.vhdl.frontend import VhdlRuntimeError, elaborate


@pytest.fixture(params=EXEC_MODES)
def run(request):
    def _run(body, decls="", signals="", extra=""):
        src = f"""
entity t is end t;
architecture a of t is
  signal done : std_logic := '0';
  signal outv : std_logic_vector(7 downto 0) := "00000000";
{signals}
begin
{extra}
  main : process
{decls}
  begin
{body}
    done <= '1';
    wait;
  end process;
end a;
"""
        return simulate(elaborate(src, top="t"),
                        exec_mode=request.param)
    return _run


class TestLoopsWithWaits:
    def test_wait_inside_while_loop(self, run):
        res = run("""
    while to_integer(outv) < 3 loop
      outv <= outv + 1;
      wait for 1 ns;
    end loop;
""")
        assert vector_to_int(res.finals["outv"]) == 3
        assert res.finals["done"] is SL_1
        # three iterations -> done at 3 ns
        assert res.stats.final_time.pt >= 3 * NS

    def test_wait_inside_nested_for_loops(self, run):
        res = run("""
    for i in 0 to 1 loop
      for j in 0 to 1 loop
        outv <= to_unsigned(i * 2 + j, 8);
        wait for 1 ns;
      end loop;
    end loop;
""")
        assert vector_to_int(res.finals["outv"]) == 3

    def test_exit_from_inner_loop_only(self, run):
        # Accumulate in a VARIABLE: a signal assignment would keep
        # reading the pre-run value (correct VHDL semantics — signals
        # update only at the next delta, which tests below rely on).
        res = run("""
    for i in 0 to 2 loop
      for j in 0 to 9 loop
        exit when j = 1;
        n := n + 1;
      end loop;
    end loop;
    outv <= to_unsigned(n, 8);
""", decls="    variable n : integer := 0;")
        # inner loop runs one productive iteration per outer pass
        assert vector_to_int(res.finals["outv"]) == 3

    def test_next_skips_iteration(self, run):
        res = run("""
    for i in 0 to 5 loop
      next when (i mod 2) = 1;
      n := n + 1;
    end loop;
    outv <= to_unsigned(n, 8);
""", decls="    variable n : integer := 0;")
        assert vector_to_int(res.finals["outv"]) == 3

    def test_signal_assignment_reads_stale_value_without_wait(self, run):
        # The VHDL trap the two tests above avoid, pinned explicitly:
        # without a wait, the local copy never refreshes, so repeated
        # `outv <= outv + 1` keeps computing 0 + 1.
        res = run("""
    for i in 0 to 5 loop
      outv <= outv + 1;
    end loop;
""")
        assert vector_to_int(res.finals["outv"]) == 1

    def test_loop_variable_shadowing_restored(self, run):
        res = run("""
    i := 42;
    for i in 0 to 3 loop
      null;
    end loop;
    outv <= to_unsigned(i, 8);
""", decls="    variable i : integer := 0;")
        assert vector_to_int(res.finals["outv"]) == 42

    def test_downto_loop(self, run):
        res = run("""
    for i in 3 downto 1 loop
      outv <= outv + i;
      wait for 1 ns;
    end loop;
""")
        assert vector_to_int(res.finals["outv"]) == 6


class TestVectorOperations:
    def test_slice_read_and_write(self, run):
        res = run("""
    outv(3 downto 0) <= "1010";
    wait for 1 ns;
    outv(7 downto 4) <= outv(3 downto 0);
""")
        assert vector_to_str(res.finals["outv"]) == "10101010"

    def test_variable_slice_assignment(self, run):
        res = run("""
    v(3 downto 2) := "11";
    outv <= v;
""", decls='    variable v : std_logic_vector(7 downto 0) := '
           '"00000000";')
        assert vector_to_str(res.finals["outv"]) == "00001100"

    def test_shift_operators(self, run):
        res = run("""
    outv <= "00000001" sll 3;
    wait for 1 ns;
    outv <= outv srl 1;
""")
        assert vector_to_int(res.finals["outv"]) == 4

    def test_concat_builds_width(self, run):
        res = run("""
    outv <= "0000" & "11" & '0' & '1';
""")
        assert vector_to_str(res.finals["outv"]) == "00001101"

    def test_resize(self, run):
        res = run("""
    outv <= resize("101", 8);
""")
        assert vector_to_int(res.finals["outv"]) == 5

    def test_length_attribute(self, run):
        res = run("""
    outv <= to_unsigned(outv'length, 8);
""")
        assert vector_to_int(res.finals["outv"]) == 8


class TestArithmetic:
    def test_mod_and_rem_signs(self, run):
        res = run("""
    outv <= to_unsigned(((0 - 7) mod 3) + 10, 8);
""")
        # VHDL mod follows the divisor's sign: (-7) mod 3 = 2 -> 12
        assert vector_to_int(res.finals["outv"]) == 12

    def test_rem_truncates_toward_zero(self, run):
        res = run("""
    outv <= to_unsigned((0 - 7) rem 3 + 10, 8);
""")
        # (-7) rem 3 = -1 -> 9
        assert vector_to_int(res.finals["outv"]) == 9

    def test_power(self, run):
        res = run("outv <= to_unsigned(2 ** 6, 8);")
        assert vector_to_int(res.finals["outv"]) == 64

    def test_abs(self, run):
        res = run("outv <= to_unsigned(abs (0 - 9), 8);")
        assert vector_to_int(res.finals["outv"]) == 9


class TestErrors:
    def test_index_out_of_range(self, run):
        with pytest.raises(VhdlRuntimeError):
            run("outv(9) <= '1';")

    def test_unknown_name(self, run):
        with pytest.raises(VhdlRuntimeError):
            run("outv <= to_unsigned(nonexistent, 8);")

    def test_width_mismatch(self, run):
        with pytest.raises(VhdlRuntimeError):
            run('outv <= "101";')
