"""Property: explored interleavings never change committed waves.

The paper's Sec. 3.3 claim, as a hypothesis property over random
circuits: events left simultaneous by the ``(pt, lt)`` tie-breaking are
independent, so *any* processing order commits the sequential engine's
waves — on both parallel backends.

* **Modelled machine** — interleavings are explored *exactly* via the
  harness's controlled scheduler (every tie resolved by a seeded RNG
  draw), and every run is additionally swept by the protocol invariant
  checkers over its recorded trace.
* **Threaded machine** — no controlled scheduler exists for real
  threads; interleavings are perturbed through seeded delivery jitter
  (the reliable fabric permutes arrival order across links) on top of
  the OS's own nondeterminism.
"""

from hypothesis import given, strategies as st

from repro.fabric import FaultPlan
from repro.harness import RandomScheduler, Tracer, check_all, wave_digest
from repro.parallel.threads import run_threaded
from repro.vhdl import simulate, simulate_parallel
from tests.strategies import (prop_settings, seeds, small_seeds,
                              small_random_design as fresh)

SETTINGS = prop_settings(max_examples=8)


class TestModelledInterleavings:
    @SETTINGS
    @given(circuit_seed=seeds,
           schedule_seed=seeds,
           processors=st.integers(2, 4))
    def test_any_interleaving_commits_oracle_waves(
            self, circuit_seed, schedule_seed, processors):
        oracle = simulate(fresh(circuit_seed))
        tracer = Tracer()
        result = simulate_parallel(
            fresh(circuit_seed), processors, protocol="dynamic",
            tracer=tracer, scheduler=RandomScheduler(schedule_seed),
            max_steps=2_000_000)
        assert result.traces == oracle.traces
        assert result.finals == oracle.finals
        assert wave_digest(result) == wave_digest(oracle)
        assert check_all(tracer, result.stats) == []

    @SETTINGS
    @given(circuit_seed=seeds,
           seed_a=seeds, seed_b=seeds)
    def test_two_interleavings_agree_with_each_other(
            self, circuit_seed, seed_a, seed_b):
        a = simulate_parallel(fresh(circuit_seed), 3,
                              protocol="optimistic",
                              scheduler=RandomScheduler(seed_a),
                              max_steps=2_000_000)
        b = simulate_parallel(fresh(circuit_seed), 3,
                              protocol="optimistic",
                              scheduler=RandomScheduler(seed_b),
                              max_steps=2_000_000)
        assert a.traces == b.traces
        assert a.finals == b.finals


class TestThreadedInterleavings:
    @SETTINGS
    @given(circuit_seed=small_seeds,
           jitter_seed=small_seeds)
    def test_jittered_threads_commit_oracle_waves(self, circuit_seed,
                                                  jitter_seed):
        oracle = simulate(fresh(circuit_seed))
        design = fresh(circuit_seed)
        model = design.elaborate()
        plan = FaultPlan(seed=jitter_seed, jitter=2.0)
        run_threaded(model, processors=3, protocol="optimistic",
                     fault_plan=plan, timeout_s=120.0)
        traces = {s.name: s.trace() for s in design.signals
                  if s.traced}
        assert traces == oracle.traces
