"""IEEE 1164 nine-value logic: tables, resolution, vectors."""

import copy

import pytest
from hypothesis import given, strategies as st

from repro.vhdl.values import (SL_0, SL_1, SL_DASH, SL_H, SL_L, SL_U, SL_W,
                               SL_X, SL_Z, StdLogic, resolve, sl, slv,
                               vector_has_meta, vector_to_int, vector_to_str)

ALL = [SL_U, SL_X, SL_0, SL_1, SL_Z, SL_W, SL_L, SL_H, SL_DASH]
values = st.sampled_from(ALL)


class TestScalars:
    def test_interning(self):
        assert sl('1') is SL_1
        assert sl('z') is SL_Z  # case-insensitive
        assert StdLogic(3) is SL_1
        assert copy.deepcopy(SL_X) is SL_X

    def test_coercions(self):
        assert sl(True) is SL_1
        assert sl(0) is SL_0
        assert sl(SL_W) is SL_W

    def test_bad_coercions(self):
        with pytest.raises(ValueError):
            sl('q')
        with pytest.raises(ValueError):
            sl(2)
        with pytest.raises(TypeError):
            sl(None)
        with pytest.raises(ValueError):
            StdLogic(9)

    def test_char_round_trip(self):
        for v in ALL:
            assert sl(v.char) is v

    def test_eq_against_char(self):
        assert SL_1 == '1'
        assert SL_L == 'l'
        assert SL_1 != '0'

    def test_to_bool(self):
        assert SL_1.to_bool() is True
        assert SL_0.to_bool() is False
        assert SL_H.to_bool() is True   # weak high strengthens
        assert SL_L.to_bool() is False
        with pytest.raises(ValueError):
            SL_X.to_bool()
        with pytest.raises(ValueError):
            SL_Z.to_bool()


class TestLogicTables:
    def test_firm_truth_tables(self):
        assert (SL_0 & SL_1) is SL_0
        assert (SL_1 & SL_1) is SL_1
        assert (SL_0 | SL_1) is SL_1
        assert (SL_0 | SL_0) is SL_0
        assert (SL_1 ^ SL_1) is SL_0
        assert (SL_1 ^ SL_0) is SL_1
        assert (~SL_1) is SL_0
        assert (~SL_0) is SL_1

    def test_weak_values_behave_as_levels(self):
        assert (SL_H & SL_1) is SL_1
        assert (SL_L | SL_0) is SL_0
        assert (~SL_H) is SL_0
        assert (~SL_L) is SL_1

    def test_x_propagation(self):
        assert (SL_X & SL_1) is SL_X
        assert (SL_X & SL_0) is SL_0   # 0 dominates and
        assert (SL_X | SL_1) is SL_1   # 1 dominates or
        assert (SL_X ^ SL_1) is SL_X
        assert (~SL_Z) is SL_X

    def test_u_propagation(self):
        assert (SL_U & SL_1) is SL_U
        assert (SL_U & SL_0) is SL_0
        assert (SL_U | SL_0) is SL_U
        assert (~SL_U) is SL_U

    @given(values, values)
    def test_and_or_commutative(self, a, b):
        assert (a & b) is (b & a)
        assert (a | b) is (b | a)
        assert (a ^ b) is (b ^ a)

    @given(values)
    def test_de_morgan_on_firm_values(self, a):
        for b in (SL_0, SL_1):
            assert ~(a & b) == (~a | ~b) or not (a & b).is_01


class TestResolution:
    def test_z_is_identity_except_dont_care(self):
        # 'Z' resolves to the other driver for every value except '-',
        # which the IEEE 1164 table maps to 'X' against anything firm.
        for v in ALL:
            if v is SL_DASH:
                assert resolve([v, SL_Z]) is SL_X
            else:
                assert resolve([v, SL_Z]) is v

    def test_conflict_gives_x(self):
        assert resolve([SL_0, SL_1]) is SL_X

    def test_u_dominates(self):
        assert resolve([SL_U, SL_1]) is SL_U
        assert resolve([SL_0, SL_U, SL_Z]) is SL_U

    def test_weak_loses_to_strong(self):
        assert resolve([SL_H, SL_0]) is SL_0
        assert resolve([SL_L, SL_1]) is SL_1
        assert resolve([SL_H, SL_L]) is SL_W

    def test_empty_floats(self):
        assert resolve([]) is SL_Z

    def test_single_driver_passes_through(self):
        for v in ALL:
            assert resolve([v]) is v

    @given(st.lists(values, min_size=1, max_size=6))
    def test_order_independent(self, drivers):
        base = resolve(drivers)
        assert resolve(list(reversed(drivers))) is base

    @given(st.lists(values, min_size=2, max_size=6))
    def test_associative(self, drivers):
        left = resolve([resolve(drivers[:2])] + drivers[2:])
        assert left is resolve(drivers)


class TestVectors:
    def test_slv_from_string(self):
        vec = slv("10Z")
        assert vec == (SL_1, SL_0, SL_Z)

    def test_slv_from_int(self):
        assert vector_to_str(slv(5, width=4)) == "0101"
        assert vector_to_str(slv(0, width=3)) == "000"

    def test_slv_negative_wraps(self):
        assert vector_to_int(slv(-1, width=4)) == 15

    def test_slv_needs_width_for_ints(self):
        with pytest.raises(ValueError):
            slv(3)

    def test_vector_to_int_signed(self):
        assert vector_to_int(slv("111"), signed=True) == -1
        assert vector_to_int(slv("0110"), signed=True) == 6
        assert vector_to_int(slv("1000"), signed=True) == -8

    def test_vector_to_int_rejects_meta(self):
        with pytest.raises(ValueError):
            vector_to_int(slv("1X0"))

    def test_vector_has_meta(self):
        assert vector_has_meta(slv("1Z0"))
        assert not vector_has_meta(slv("10"))
        assert not vector_has_meta((SL_H, SL_L))  # weak but firm levels

    @given(st.integers(0, 2**16 - 1))
    def test_int_round_trip(self, n):
        assert vector_to_int(slv(n, width=16)) == n
