"""Property-based equivalence: the headline correctness claims.

Two properties carry the paper's whole argument:

1. *Arbitrary order is sound*: with the ``(pt, lt)`` tie-breaking, the
   processing order of events with equal virtual time never changes the
   simulation results (Sec. 3.3).
2. *Protocol equivalence*: every synchronization protocol, at every
   processor count, under every partitioning, commits exactly the traces
   of the sequential reference simulator.

Both are checked over randomly generated synchronous circuits.
"""

import random

import pytest
from hypothesis import given, strategies as st

from repro.circuits import build_random
from repro.vhdl import simulate, simulate_parallel
from tests.strategies import partitions, prop_settings, seeds

SETTINGS = prop_settings(max_examples=12)


def reference_for(seed):
    return simulate(build_random(seed).design)


class TestArbitraryOrderSoundness:
    @SETTINGS
    @given(seed=seeds, shuffle=seeds)
    def test_tie_order_never_changes_results(self, seed, shuffle):
        baseline = simulate(build_random(seed).design)
        shuffled = simulate(build_random(seed).design,
                            shuffle_ties=random.Random(shuffle))
        assert shuffled.traces == baseline.traces
        assert shuffled.finals == baseline.finals


class TestProtocolEquivalence:
    @SETTINGS
    @given(seed=seeds,
           processors=st.integers(1, 6))
    def test_optimistic(self, seed, processors):
        ref = reference_for(seed)
        res = simulate_parallel(build_random(seed).design,
                                processors=processors,
                                protocol="optimistic",
                                max_steps=2_000_000)
        assert res.traces == ref.traces
        assert res.finals == ref.finals
        # Everything speculative was eventually committed.
        assert res.stats.events_committed == \
            res.stats.events_executed - res.stats.events_rolled_back

    @SETTINGS
    @given(seed=seeds,
           processors=st.integers(1, 6))
    def test_conservative(self, seed, processors):
        ref = reference_for(seed)
        res = simulate_parallel(build_random(seed).design,
                                processors=processors,
                                protocol="conservative",
                                max_steps=2_000_000)
        assert res.traces == ref.traces
        assert res.stats.rollbacks == 0  # conservative never rolls back

    @SETTINGS
    @given(seed=seeds,
           processors=st.integers(2, 6))
    def test_mixed(self, seed, processors):
        ref = reference_for(seed)
        res = simulate_parallel(build_random(seed).design,
                                processors=processors, protocol="mixed",
                                max_steps=2_000_000)
        assert res.traces == ref.traces

    @SETTINGS
    @given(seed=seeds,
           processors=st.integers(2, 6))
    def test_dynamic(self, seed, processors):
        ref = reference_for(seed)
        res = simulate_parallel(build_random(seed).design,
                                processors=processors, protocol="dynamic",
                                max_steps=2_000_000)
        assert res.traces == ref.traces

    @SETTINGS
    @given(seed=seeds,
           partition=partitions)
    def test_partitioning(self, seed, partition):
        ref = reference_for(seed)
        res = simulate_parallel(build_random(seed).design, processors=4,
                                protocol="optimistic", partition=partition,
                                max_steps=2_000_000)
        assert res.traces == ref.traces

    @SETTINGS
    @given(seed=seeds)
    def test_user_consistent_optimistic(self, seed):
        ref = reference_for(seed)
        res = simulate_parallel(build_random(seed).design, processors=3,
                                protocol="optimistic",
                                user_consistent=True,
                                max_steps=2_000_000)
        assert res.traces == ref.traces

    @SETTINGS
    @given(seed=seeds)
    def test_conservative_with_lookahead(self, seed):
        ref = reference_for(seed)
        res = simulate_parallel(build_random(seed).design, processors=3,
                                protocol="conservative", lookahead="vhdl",
                                max_steps=2_000_000)
        assert res.traces == ref.traces


class TestGvtInvariants:
    @SETTINGS
    @given(seed=seeds)
    def test_committed_counts_conserved(self, seed):
        ref = reference_for(seed)
        res = simulate_parallel(build_random(seed).design, processors=4,
                                protocol="dynamic", max_steps=2_000_000)
        # Committed events must match the sequential count exactly: the
        # same model produces the same committed work under any protocol.
        assert res.stats.events_committed == ref.stats.events_committed
