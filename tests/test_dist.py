"""Distributed backend: the token ring over asyncio/TCP.

Differential policy mirrors ``tests/test_procs.py``: every dist run is
compared against a fresh sequential run of the same circuit and the
committed waves must be **byte-identical** — same traces, same commit
count.  On top of the OS interleaving, the transport itself misbehaves
for real here (TCP connections are severed and worker processes are
killed mid-run by deterministic injection), so each passing run is
evidence for the whole recovery stack: counted envelopes, token
custody, checkpoint upload, sent-tail splice and receive-mark restore.

Worker daemons are auto-spawned on localhost (one subprocess each plus
a TCP dial), so a dist run costs noticeably more wall clock than a
procs run.  Tier-1 keeps to the small fsm circuit; the wider protocol
and victim matrices are marked ``slow``.
"""

import os

import pytest

from repro.circuits import (build_fsm, build_iir_from_vhdl,
                            build_random)
from repro.fabric import wire
from repro.fabric.plan import FaultPlan
from repro.fabric.wire import (HEADER_SIZE, WireError, decode_frame,
                               decode_header, encode_frame)
from repro.parallel.dist import DistMachine, run_dist
from repro.parallel.engine import ProtocolError
from repro.vhdl import simulate

RUN_BUDGET_S = float(os.environ.get("REPRO_TEST_TIMEOUT_S", "120"))


def run_with_budget(model, processors, protocol, **kwargs):
    """Run the dist backend under the module's deadline budget."""
    try:
        return run_dist(model, processors=processors, protocol=protocol,
                        timeout_s=RUN_BUDGET_S, **kwargs)
    except ProtocolError as failure:
        partial = getattr(failure, "partial_stats", None)
        detail = ""
        if partial is not None:
            detail = (f" (partial progress: "
                      f"{partial.events_committed} committed, "
                      f"{partial.events_executed} executed, "
                      f"{partial.rollbacks} rollbacks)")
        pytest.fail(f"dist run failed within {RUN_BUDGET_S:.0f}s "
                    f"budget: {failure}{detail}")


def assert_matches_sequential(build, protocol, processors=2, **kwargs):
    """One differential check: dist waves == sequential waves."""
    ref = simulate(getattr(built := build(), "design", built))
    design = getattr(built := build(), "design", built)
    outcome = run_with_budget(design.elaborate(), processors,
                              protocol, **kwargs)
    traces = {s.name: s.trace() for s in design.signals if s.traced}
    assert traces == ref.traces
    assert outcome.stats.events_committed == ref.stats.events_committed
    return outcome


# ---------------------------------------------------------------------------
# Wire codec (no network).
# ---------------------------------------------------------------------------
class TestWireCodec:
    def test_roundtrip(self):
        obj = ("relay", 3, ("c", 0, 17, ("batch", 1, [])))
        decoded, rest = decode_frame(encode_frame(obj))
        assert decoded == obj
        assert rest == b""

    def test_concatenated_frames_split_in_order(self):
        data = encode_frame("first") + encode_frame("second")
        one, rest = decode_frame(data)
        two, tail = decode_frame(rest)
        assert (one, two, tail) == ("first", "second", b"")

    def test_short_header_rejected(self):
        with pytest.raises(WireError, match="short frame header"):
            decode_header(b"RPRO")

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame("x"))
        frame[:4] = b"HTTP"
        with pytest.raises(WireError, match="magic"):
            decode_frame(bytes(frame))

    def test_version_mismatch_rejected(self):
        frame = bytearray(encode_frame("x"))
        frame[4] = wire.VERSION + 1
        with pytest.raises(WireError, match="version mismatch"):
            decode_frame(bytes(frame))

    def test_truncated_payload_rejected(self):
        frame = encode_frame("a long enough payload")
        with pytest.raises(WireError, match="truncated frame"):
            decode_frame(frame[:-3])

    def test_corrupt_length_fails_fast(self):
        """A corrupt length field must fail before any allocation."""
        frame = bytearray(encode_frame("x"))
        frame[HEADER_SIZE - 4:HEADER_SIZE] = \
            (wire.MAX_FRAME + 1).to_bytes(4, "big")
        with pytest.raises(WireError, match="ceiling"):
            decode_frame(bytes(frame))

    def test_oversize_payload_rejected_on_encode(self, monkeypatch):
        monkeypatch.setattr(wire, "MAX_FRAME", 8)
        with pytest.raises(WireError, match="exceeds"):
            encode_frame("much too large for an 8-byte ceiling")


# ---------------------------------------------------------------------------
# Construction-time validation (no network).
# ---------------------------------------------------------------------------
class TestValidation:
    @pytest.fixture(scope="class")
    def model(self):
        return build_random(1).design.elaborate()

    def test_rejects_dynamic_protocol(self, model):
        with pytest.raises(ValueError, match="static protocols only"):
            DistMachine(model, 2, protocol="dynamic")

    def test_rejects_bad_quantum(self, model):
        with pytest.raises(ValueError, match="quantum"):
            DistMachine(model, 2, quantum=0)

    def test_rejects_recovery_off(self, model):
        with pytest.raises(ValueError, match="recovery"):
            DistMachine(model, 2, recovery=False)

    def test_rejects_more_hosts_than_workers(self, model):
        with pytest.raises(ValueError, match="hosts"):
            DistMachine(model, 2,
                        hosts=["a:1", "b:2", "c:3"])

    def test_rejects_kills_on_external_hosts(self, model):
        with pytest.raises(ValueError, match="kill injection"):
            DistMachine(model, 2, kills=[(3, 0)],
                        hosts=["somehost:7421", "otherhost:7421"])

    def test_rejects_unpicklable_partition(self, model):
        with pytest.raises(ValueError, match="partition"):
            DistMachine(model, 2,
                        partition=lambda m, p: [0] * len(m.lps))

    def test_rejects_nonpositive_timeout(self, model):
        with pytest.raises(ValueError, match="timeout_s"):
            DistMachine(model, 2).run(timeout_s=0.0)


# ---------------------------------------------------------------------------
# Tier-1: differential conformance over real TCP workers.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("protocol", ["optimistic", "conservative",
                                      "mixed"])
def test_dist_fsm_matches_sequential(protocol):
    outcome = assert_matches_sequential(
        lambda: build_fsm(cells=4, cycles=4), protocol)
    assert outcome.waves >= 1
    assert outcome.gvt_rounds >= 1
    assert outcome.wall_time_s > 0.0
    # The transport is TCP even on localhost: bytes must have moved.
    assert outcome.stats.net_bytes_tx > 0
    assert outcome.stats.net_bytes_rx > 0


def test_dist_fault_plan_drop_dup_reorder():
    """Lossy, duplicating, reordering fabric over TCP; still exact."""
    outcome = assert_matches_sequential(
        lambda: build_fsm(cells=4, cycles=4), "optimistic",
        fault_plan=FaultPlan(drop=0.08, duplicate=0.05, reorder=0.08,
                             seed=7))
    stats = outcome.stats
    assert stats.dropped > 0
    assert stats.retransmitted > 0
    assert stats.acks > 0


def test_dist_forced_disconnect_reconnect():
    """The coordinator severs a live worker connection mid-run; token
    custody and the retransmission pump must heal it exactly."""
    outcome = assert_matches_sequential(
        lambda: build_fsm(cells=4, cycles=4), "optimistic",
        disconnects=[(3, 1)])
    assert outcome.stats.net_reconnects >= 1


def test_dist_worker_kill_recovery():
    """A worker *process* dies mid-run; a fresh daemon restores from
    the last uploaded checkpoint + sent-tail and the committed waves
    still match the sequential oracle."""
    outcome = assert_matches_sequential(
        lambda: build_fsm(cells=4, cycles=4), "optimistic",
        kills=[(2, 1)])
    assert outcome.stats.recoveries >= 1
    assert outcome.stats.net_reconnects >= 1


def test_dist_deadline_raises_protocol_error():
    """A hopeless deadline surfaces as ProtocolError with partial
    stats, not a hang (the error path of the coordinator loop)."""
    model = build_fsm(cells=4, cycles=4).design.elaborate()
    with pytest.raises(ProtocolError, match="deadline"):
        run_dist(model, 2, protocol="optimistic", timeout_s=0.05)


# ---------------------------------------------------------------------------
# Slow matrix: wider circuits, crash faults, every protocol.
# ---------------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("protocol", ["optimistic", "conservative",
                                      "mixed"])
def test_dist_iir_vhdl_matches_sequential(protocol):
    """The paper's IIR filter, compiled from VHDL text, across TCP.

    This is the behavioral iir-vhdl circuit (the one `repro check
    --circuit iir-vhdl --backend dist` gates on).  The *gate-level*
    ``build_iir`` under the optimistic protocol is a known pathology
    on dist: relay latency widens the virtual-time surface and
    unthrottled optimism turns it into a rollback storm (ROADMAP
    item 4 — adaptive throttling — is the designated fix).
    """
    assert_matches_sequential(lambda: build_iir_from_vhdl(),
                              protocol, processors=3)


@pytest.mark.slow
@pytest.mark.parametrize("protocol", ["optimistic", "conservative",
                                      "mixed"])
def test_dist_kill_matrix(protocol):
    """Kill each victim in turn under every protocol."""
    for victim in (0, 1):
        outcome = assert_matches_sequential(
            lambda: build_fsm(cells=4, cycles=4), protocol,
            kills=[(2, victim)])
        assert outcome.stats.recoveries >= 1


@pytest.mark.slow
def test_dist_drop_crash_disconnect_combo():
    """Everything at once: lossy fabric, an in-process crash, a severed
    connection and a killed worker in a single run."""
    outcome = assert_matches_sequential(
        lambda: build_fsm(cells=5, cycles=5), "optimistic",
        fault_plan=FaultPlan(drop=0.05, reorder=0.05,
                             seed=3).with_crashes((2, 0)),
        disconnects=[(4, 0)], kills=[(3, 1)])
    assert outcome.stats.crashes >= 1
    assert outcome.stats.recoveries >= 2
    assert outcome.stats.net_reconnects >= 2
